"""Lock-discipline rule: ``#: guarded-by:`` annotations, enforced.

PR 2's shared caches grew their thread-safety bugs the usual way: the
lock was added with the class, then a later accessor read the guarded
dict outside it.  The cure production codebases use (Java's
``@GuardedBy``, abseil's ``GUARDED_BY``) is to make the *association*
between attribute and lock explicit and machine-checked.  The
convention here:

* declare, on (or directly above) the attribute's ``__init__``
  assignment::

      self._entries = {}  #: guarded-by: _lock

  Several locks may be listed (``#: guarded-by: _lock, _cond``) and a
  lock may live behind another attribute (``#: guarded-by:
  _service._cond``).
* every *lexical* ``self.<attr>`` touch of a guarded attribute inside
  the declaring class must then sit inside ``with self.<lock>:`` (any
  one of the listed locks), except in ``__init__``/``__del__``.
* a helper that is only ever called with the lock held declares that
  contract instead of acquiring::

      def _entry(self, key):  #: holds: _lock

The check is intraprocedural and lexical on purpose: it cannot prove
the ``#: holds:`` contract, but it forces the contract to be *written*,
which is what was missing every time this bug recurred.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .framework import Finding, ModuleContext, Rule, dotted_path, register

_GUARDED_RE = re.compile(r"#:\s*guarded-by:\s*([A-Za-z0-9_.,\s]+?)\s*$")
_HOLDS_RE = re.compile(r"#:\s*holds:\s*([A-Za-z0-9_.,\s]+?)\s*$")

#: a lock spec: dotted attribute path relative to ``self``
LockPath = Tuple[str, ...]


def _parse_lock_list(text: str) -> FrozenSet[LockPath]:
    locks: Set[LockPath] = set()
    for item in text.split(","):
        item = item.strip()
        if item:
            locks.add(tuple(item.split(".")))
    return frozenset(locks)


def _annotation_on(module: ModuleContext, line: int, pattern) -> Optional[str]:
    """Match ``pattern`` on ``line`` or the standalone comment above it."""
    for candidate in (line, line - 1):
        if not (1 <= candidate <= len(module.lines)):
            continue
        text = module.lines[candidate - 1]
        if candidate != line and not text.strip().startswith("#"):
            continue
        match = pattern.search(text)
        if match is not None:
            return match.group(1)
    return None


@register
class GuardedByRule(Rule):
    """``#: guarded-by:`` attributes may only be touched under their lock.

    An attribute annotated ``#: guarded-by: _lock`` at its ``__init__``
    assignment is mutable shared state; this rule flags every
    ``self.<attr>`` access in the declaring class that is not lexically
    inside ``with self._lock:`` (or a listed alternative), not in
    ``__init__``/``__del__``, and not in a method annotated
    ``#: holds: _lock``.  PR 2 shipped exactly this hole — accessors
    added after the lock, reading the cache dict unguarded.
    """

    code = "RPL010"
    name = "guarded-by-lock-discipline"

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for cls in module.nodes(ast.ClassDef):
            guarded = self._guarded_attrs(module, cls)
            if guarded:
                self._check_class(module, cls, guarded, findings)
        return findings

    # -- declaration scan ----------------------------------------------
    def _guarded_attrs(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Dict[str, FrozenSet[LockPath]]:
        """``{attr: {lock paths}}`` from the class's annotated assignments."""
        guarded: Dict[str, FrozenSet[LockPath]] = {}
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            if module.enclosing_class(node) is not cls:
                continue
            spec = _annotation_on(module, node.lineno, _GUARDED_RE)
            if spec is None:
                continue
            locks = _parse_lock_list(spec)
            for target in targets:
                path = dotted_path(target)
                if path is not None and len(path) == 2 and path[0] == "self":
                    guarded[path[1]] = guarded.get(path[1], frozenset()) | locks
        return guarded

    # -- access check --------------------------------------------------
    def _check_class(self, module, cls, guarded, findings) -> None:
        for node in ast.walk(cls):
            if not isinstance(node, ast.Attribute):
                continue
            path = dotted_path(node)
            if path is None or len(path) != 2 or path[0] != "self":
                continue
            attr = path[1]
            if attr not in guarded:
                continue
            if module.enclosing_class(node) is not cls:
                continue  # a nested class's own namespace
            func = module.enclosing_function(node)
            if func is None or func.name in ("__init__", "__del__"):
                continue
            locks = guarded[attr]
            if self._holds_declared(module, func, locks):
                continue
            if self._under_lock(module, node, locks):
                continue
            lock_text = " or ".join(
                "self." + ".".join(lock) for lock in sorted(locks)
            )
            findings.append(module.finding(
                self.code, node,
                f"`self.{attr}` is `#: guarded-by: "
                f"{', '.join('.'.join(lock) for lock in sorted(locks))}` "
                f"but is accessed outside `with {lock_text}:` "
                f"(method `{func.name}`); acquire the lock or annotate the "
                "method `#: holds: ...` with a one-line safety argument",
            ))

    def _holds_declared(self, module, func, locks) -> bool:
        spec = _annotation_on(module, func.lineno, _HOLDS_RE)
        if spec is None:
            return False
        return bool(_parse_lock_list(spec) & locks)

    def _under_lock(self, module, node, locks) -> bool:
        want = {("self",) + lock for lock in locks}
        for ancestor in module.ancestors(node):
            if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
                continue
            for item in ancestor.items:
                held = dotted_path(item.context_expr)
                if held in want:
                    return True
        return False
