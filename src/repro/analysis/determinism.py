"""Determinism rules: unordered iteration and unseeded entropy.

The parallel ≡ serial differential suites exist because the engine's
contract is *exact equality* of violation sets and counts across
executors, worker counts, and plan shapes.  The bug class those suites
keep re-catching is order dependence: PR 4's ``matches[:200]`` truncated
a set-fed accumulation, so the kept matches depended on hash-seed
iteration order and the capped executors disagreed run-to-run.  These
rules catch the shape statically:

* :class:`UnorderedIterationRule` (RPL001) — an unordered collection
  (set literal / comprehension, ``set()``/``frozenset()``, set algebra)
  flowing into an order-*sensitive* sink: a slice or index of
  ``list(...)``/``tuple(...)``, ``next(iter(...))``, a returned
  ``list(...)`` payload, or a loop-append accumulation that is returned
  or sliced.  A dominating ``sorted(...)`` clears the taint.
* :class:`UnseededEntropyRule` (RPL002) — module-global ``random.*``
  or wall-clock ``time.time()`` in engine paths.  Determinism there
  comes from injectable seeds (``random.Random(seed)``) and injectable
  clocks (``time.perf_counter`` telemetry is fine — it never feeds
  results); ambient entropy cannot be replayed.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from .framework import Finding, ModuleContext, Rule, call_name, register

#: engine paths where result ordering is contractual
ENGINE_SCOPE: Tuple[str, ...] = (
    "/core/", "/matching/", "/parallel/", "/graph/",
    "/session.py", "/service.py",
)

_SET_ALGEBRA_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


class _FunctionTaint:
    """Per-function name states for the unordered-iteration rule.

    Deliberately intraprocedural and heuristic: a name is *unordered* if
    some binding in the function makes it so and no binding routes it
    through ``sorted(...)``; *listed* means ``list()``/``tuple()`` of an
    unordered value (ordered container, arbitrary order).
    """

    def __init__(self, func: ast.AST) -> None:
        self.unordered: Set[str] = set()
        self.listed: Set[str] = set()
        sorted_bound: Set[str] = set()
        assigns = [
            node for node in ast.walk(func) if isinstance(node, ast.Assign)
        ]
        # two passes so `u = a | b` after `a = set()` still taints `u`
        for _ in range(2):
            for node in sorted(assigns, key=lambda n: n.lineno):
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if self.is_unordered(node.value):
                    self.unordered.add(target.id)
                elif self.is_listed_unordered(node.value):
                    self.listed.add(target.id)
                elif (
                    isinstance(node.value, ast.Call)
                    and call_name(node.value) == "sorted"
                ):
                    sorted_bound.add(target.id)
        self.unordered -= sorted_bound
        self.listed -= sorted_bound

    def is_unordered(self, node: ast.expr) -> bool:
        """Does this expression evaluate to an unordered collection?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.unordered
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_unordered(node.left) or self.is_unordered(node.right)
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("set", "frozenset"):
                return True
            if (
                name in _SET_ALGEBRA_METHODS
                and isinstance(node.func, ast.Attribute)
                and self.is_unordered(node.func.value)
            ):
                return True
        return False

    def is_listed_unordered(self, node: ast.expr) -> bool:
        """``list(U)`` / ``tuple(U)`` of an unordered ``U`` (or such a name)."""
        if isinstance(node, ast.Name):
            return node.id in self.listed
        return (
            isinstance(node, ast.Call)
            and call_name(node) in ("list", "tuple")
            and len(node.args) == 1
            and self.is_unordered(node.args[0])
        )


@register
class UnorderedIterationRule(Rule):
    """Unordered set iteration order must not reach result payloads.

    Slicing, indexing, ``next(iter(...))``, returning, or accumulating
    an unordered collection makes the outcome depend on hash-seed
    iteration order — the parallel ≡ serial exactness contract breaks
    exactly the way PR 4's ``matches[:200]`` cap did.  Route through
    ``sorted(...)`` (any deterministic key) before ordering matters.
    """

    code = "RPL001"
    name = "unordered-iteration-order"
    scope = ENGINE_SCOPE

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for func in module.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            if module.enclosing_function(func) is not None:
                continue  # nested defs are covered by the outer walk
            taint = _FunctionTaint(func)
            self._check_sinks(module, func, taint, findings)
        return findings

    def _check_sinks(self, module, func, taint, findings) -> None:
        returned_names = {
            node.value.id
            for node in ast.walk(func)
            if isinstance(node, ast.Return)
            and isinstance(node.value, ast.Name)
        }
        sliced_names = {
            node.value.id
            for node in ast.walk(func)
            if isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
        }
        for node in ast.walk(func):
            if isinstance(node, ast.Subscript):
                if taint.is_listed_unordered(node.value):
                    findings.append(module.finding(
                        self.code, node,
                        "slicing/indexing list()/tuple() of an unordered "
                        "collection depends on hash-seed iteration order; "
                        "sort first (`sorted(...)`)",
                    ))
            elif isinstance(node, ast.Call):
                if (
                    call_name(node) == "next"
                    and node.args
                    and isinstance(node.args[0], ast.Call)
                    and call_name(node.args[0]) == "iter"
                    and node.args[0].args
                    and taint.is_unordered(node.args[0].args[0])
                ):
                    findings.append(module.finding(
                        self.code, node,
                        "next(iter(...)) of an unordered collection picks "
                        "a hash-order-dependent element; sort or use min()",
                    ))
            elif isinstance(node, ast.Return) and node.value is not None:
                if taint.is_listed_unordered(node.value):
                    findings.append(module.finding(
                        self.code, node,
                        "returning list()/tuple() of an unordered collection "
                        "leaks hash-seed iteration order into the payload; "
                        "return sorted(...) instead",
                    ))
            elif isinstance(node, ast.For):
                self._check_accumulation(
                    module, node, taint, returned_names, sliced_names,
                    findings,
                )

    def _check_accumulation(
        self, module, loop, taint, returned_names, sliced_names, findings
    ) -> None:
        """``for x in U: acc.append(...)`` where ``acc`` is returned/sliced."""
        if not taint.is_unordered(loop.iter):
            return
        for node in ast.walk(loop):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
            ):
                continue
            accumulator = node.func.value.id
            if accumulator in returned_names or accumulator in sliced_names:
                findings.append(module.finding(
                    self.code, loop,
                    f"iterating an unordered collection while accumulating "
                    f"into `{accumulator}` (which is returned/sliced) makes "
                    "the payload order hash-seed dependent; iterate "
                    "sorted(...) instead",
                ))
                return


@register
class UnseededEntropyRule(Rule):
    """Engine paths must take entropy and time as injectable parameters.

    Every stochastic component in this repo threads a ``seed`` into
    ``random.Random(seed)`` and every latency metric uses the monotonic
    ``time.perf_counter``.  Module-global ``random.*`` draws from
    process-wide state no replay can reproduce, and ``time.time()``
    (wall clock) jumps under NTP — neither belongs in a code path whose
    outputs the differential suites compare bit-for-bit.
    """

    code = "RPL002"
    name = "unseeded-entropy"
    scope = ENGINE_SCOPE

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in module.nodes(ast.Call):
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
            ):
                continue
            base, attr = func.value.id, func.attr
            if base == "random":
                if attr == "Random" and (node.args or node.keywords):
                    continue  # explicitly seeded: the injectable idiom
                findings.append(module.finding(
                    self.code, node,
                    f"module-global `random.{attr}(...)` draws unseeded "
                    "process-wide entropy; thread a seed through "
                    "`random.Random(seed)` instead",
                ))
            elif base == "time" and attr == "time":
                findings.append(module.finding(
                    self.code, node,
                    "`time.time()` is wall-clock (non-monotonic, not "
                    "injectable); use `time.perf_counter()` for intervals "
                    "or accept a clock parameter",
                ))
        return findings
