"""Shipping-discipline rule: one serialisation point, one measurement.

The paper's workload-assignment argument prices every unit in *shipped
bytes*; the repo's accounting (``ShippingStats``) must therefore agree with
what actually crosses the process boundary.  PR 7 deleted a
``payload_size`` field that re-measured ``len(pickle.dumps(payload))``
on a path that then shipped through a *different* serialisation — the
two numbers drifted and the balancer optimised a fiction.  The repair
made ``pack_shard`` the single choke point: everything shipped goes
through it, and the bytes it returns are the bytes accounted.

:class:`PickleOutsidePackRule` (RPL030) bans ``pickle.dumps`` /
``ForkingPickler.dumps`` everywhere else, re-banning the
double-measurement shape forever.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .framework import Finding, ModuleContext, Rule, dotted_path, register

#: the single allowed serialisation choke point
PACK_FUNCTION = "pack_shard"

#: attribute bases that mean "a pickler" when ``.dumps`` is called on them
_PICKLER_BASES = frozenset({"pickle", "ForkingPickler", "cPickle"})


@register
class PickleOutsidePackRule(Rule):
    """``pickle.dumps`` lives in ``pack_shard`` and nowhere else.

    Any second serialisation site is a second byte-count: the shipping
    accounting (``ShippingStats.shard_bytes``) then disagrees with the
    bytes actually shipped, exactly the ``payload_size`` drift PR 7
    removed.  Serialise through ``pack_shard`` (and measure its return)
    instead.
    """

    code = "RPL030"
    name = "pickle-outside-pack-shard"

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in module.nodes(ast.Call):
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "dumps"):
                continue
            base = dotted_path(func.value)
            if base is None or base[-1] not in _PICKLER_BASES:
                continue
            enclosing = module.enclosing_function(node)
            if enclosing is not None and enclosing.name == PACK_FUNCTION:
                continue
            findings.append(module.finding(
                self.code, node,
                f"`{'.'.join(base)}.dumps` outside `{PACK_FUNCTION}`: a "
                "second serialisation point means a second byte-count and "
                "shipping-accounting drift; serialise via "
                f"`{PACK_FUNCTION}` and measure its return value",
            ))
        return findings
