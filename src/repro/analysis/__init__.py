"""repro.analysis — repo-invariant static analysis for the engine.

An AST-based lint pass whose rules encode this codebase's *own*
invariants — the bug classes PRs 1–8's differential suites kept
re-catching dynamically: order-dependent iteration (RPL001/002),
lock-discipline holes (RPL010), shm lifecycle splits (RPL020–022),
shipping-accounting drift (RPL030), non-exhaustive work-unit
dispatch (RPL040/041), and silently swallowed exceptions in the
fault-tolerant execution plane (RPL050).  Run it with::

    PYTHONPATH=src python -m repro.analysis

See ``--explain RPLxxx`` for any rule's full rationale, and the README
"Static analysis" section for the suppression / baseline workflow.
"""

from .framework import (
    SUPPRESSION_CODE,
    AnalysisReport,
    Finding,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    RULES,
    register,
    run_analysis,
)

# importing the rule modules registers their rules in RULES
from . import determinism  # noqa: F401  (registration side effect)
from . import locking  # noqa: F401
from . import shm  # noqa: F401
from . import shipping  # noqa: F401
from . import dispatch  # noqa: F401
from . import faults  # noqa: F401

__all__ = [
    "SUPPRESSION_CODE",
    "AnalysisReport",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "RULES",
    "register",
    "run_analysis",
]
