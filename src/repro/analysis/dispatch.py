"""Dispatch-exhaustiveness rules: every ``WorkUnit.kind`` has a story.

``WorkUnit.kind`` grew from one literal (``"detect"``) to three
(``"mine"``, ``"count"``) across PRs 5–6, and each addition had to
remember *two* dispatch sites: ``execute_unit`` (what running the unit
does) and ``consolidate_slot_results`` (how a slot's partial results
fold into the run outcome).  Forgetting the second site is silent —
results are dropped, not raised — which is why this is a cross-file
*project* rule rather than a module lint:

* :class:`ExecuteDispatchRule` (RPL040) — a constructed kind literal
  (``WorkUnit(kind=...)``, ``replace(unit, kind=...)``, or the
  dataclass default) with no ``unit.kind == "..."`` branch in
  ``execute_unit``;
* :class:`ConsolidateDispatchRule` (RPL041) — the same for
  ``consolidate_slot_results``.

Both rules stay silent when the project has no dispatcher of that name
(fixture trees must supply one to exercise them).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .framework import (
    Finding,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    call_name,
    register,
)

#: call / class names whose ``kind=`` keyword constructs a work-unit kind
_CONSTRUCTORS = frozenset({"WorkUnit", "replace"})
_UNIT_CLASS = "WorkUnit"

#: one construction site: (kind literal, module, AST node)
Construction = Tuple[str, ModuleContext, ast.AST]


def collect_constructions(project: ProjectContext) -> List[Construction]:
    """Every ``kind`` literal a work unit can be constructed with."""
    out: List[Construction] = []
    for module in project.modules:
        for node in module.nodes(ast.Call):
            if call_name(node) not in _CONSTRUCTORS:
                continue
            for keyword in node.keywords:
                if keyword.arg != "kind":
                    continue
                value = keyword.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    out.append((value.value, module, node))
        for cls in module.nodes(ast.ClassDef):
            if cls.name != _UNIT_CLASS:
                continue
            for stmt in cls.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "kind"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    out.append((stmt.value.value, module, stmt))
    return out


def handled_kinds(
    project: ProjectContext, dispatcher: str
) -> Optional[Set[str]]:
    """Kind literals positively compared against ``.kind`` in ``dispatcher``.

    Counts ``unit.kind == "lit"`` and ``unit.kind in ("a", "b")``;
    ``!=``/``not in`` guards are exclusions, not handling.  Returns
    ``None`` when no function named ``dispatcher`` exists anywhere.
    """
    found_dispatcher = False
    handled: Set[str] = set()
    for module in project.modules:
        for func in module.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            if func.name != dispatcher:
                continue
            found_dispatcher = True
            for node in ast.walk(func):
                if not isinstance(node, ast.Compare):
                    continue
                left = node.left
                if not (
                    isinstance(left, ast.Attribute) and left.attr == "kind"
                ):
                    continue
                for op, comparator in zip(node.ops, node.comparators):
                    if isinstance(op, ast.Eq) and isinstance(
                        comparator, ast.Constant
                    ):
                        if isinstance(comparator.value, str):
                            handled.add(comparator.value)
                    elif isinstance(op, ast.In) and isinstance(
                        comparator, (ast.Tuple, ast.List, ast.Set)
                    ):
                        for element in comparator.elts:
                            if isinstance(
                                element, ast.Constant
                            ) and isinstance(element.value, str):
                                handled.add(element.value)
    return handled if found_dispatcher else None


class _DispatchRule(ProjectRule):
    """Shared machinery: constructed kinds must appear in ``dispatcher``."""

    dispatcher = ""

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        handled = handled_kinds(project, self.dispatcher)
        if handled is None:
            return []  # no dispatcher in this tree: nothing to be exhaustive
        findings: List[Finding] = []
        reported: Dict[Tuple[str, str], bool] = {}
        for kind, module, node in collect_constructions(project):
            if kind in handled:
                continue
            if reported.setdefault((module.path, kind), False):
                continue
            reported[(module.path, kind)] = True
            findings.append(module.finding(
                self.code, node,
                f"work-unit kind {kind!r} is constructed here but "
                f"`{self.dispatcher}` has no `== {kind!r}` branch; "
                "units of this kind would "
                + self.consequence,
            ))
        return findings


@register
class ExecuteDispatchRule(_DispatchRule):
    """Every constructed ``WorkUnit.kind`` needs an ``execute_unit`` branch.

    ``execute_unit`` raises on unknown kinds, so the failure is loud —
    but only at run time, on the first workload that constructs the new
    kind.  The rule moves that discovery to lint time.
    """

    code = "RPL040"
    name = "execute-dispatch-exhaustive"
    dispatcher = "execute_unit"
    consequence = "raise at run time on first execution"


@register
class ConsolidateDispatchRule(_DispatchRule):
    """Every constructed kind needs a ``consolidate_slot_results`` story.

    Consolidation *skips* entries it does not recognise, so a missing
    branch silently drops every result the new kind produces — the
    workload appears to run and returns nothing.  This is the dangerous
    half of the pair.
    """

    code = "RPL041"
    name = "consolidate-dispatch-exhaustive"
    dispatcher = "consolidate_slot_results"
    consequence = "be silently dropped at consolidation"
