"""The lint framework: one parse per file, rule-registry dispatch.

``repro.analysis`` is a *repo-invariant* static-analysis pass: every rule
encodes an invariant this codebase's own differential test suites keep
re-catching dynamically (order-dependent iteration, shipping-accounting
drift, resource-tracker double-unlink, lock-discipline holes — see the
rule modules for the PR history each rule distils).  The framework keeps
the cost model honest:

* **one parse per file** — a :class:`ModuleContext` parses the source
  once, walks the tree once (building the node-type index and the parent
  map every rule shares), and every rule reads those indices instead of
  re-walking;
* **rule registry** — rules self-register via :func:`register`;
  :data:`RULES` maps ``RPLxxx`` codes to instances, and
  ``--explain RPLxxx`` prints a rule's own documentation;
* **inline suppressions** — ``# repro-lint: disable=RPLxxx -- why`` on
  (or immediately above) the flagged line suppresses that code there.
  The justification text after ``--`` is *required*: a bare disable is
  itself a finding (:data:`SUPPRESSION_CODE`) and suppresses nothing;
* **scoping** — a rule may restrict itself to engine paths (``scope``
  is a tuple of path fragments); repo-layout-relative fragments keep
  fixture trees honest in tests.

Module-local rules subclass :class:`Rule`; rules that need the whole
project at once (dispatch exhaustiveness) subclass :class:`ProjectRule`
and receive every parsed module together.
"""

from __future__ import annotations

import ast
import re
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

#: the framework's own code: a suppression comment without justification
SUPPRESSION_CODE = "RPL000"

#: ``# repro-lint: disable=RPL001,RPL002 -- justification text``
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z0-9, ]+?)\s*(?:--\s*(\S.*))?$"
)

#: file names never worth linting (generated / vendored would go here)
_SKIP_NAMES = frozenset({"__pycache__"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is posix-relative to the scanned root, ``snippet`` is the
    stripped source line — the baseline fingerprints hash the snippet,
    not the line number, so grandfathered findings survive unrelated
    line drift in the same file.
    """

    code: str
    path: str
    line: int
    message: str
    snippet: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class Suppression:
    """One parsed ``repro-lint: disable`` comment."""

    line: int
    codes: frozenset
    justification: str

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


class ModuleContext:
    """One parsed module plus the shared indices every rule reads.

    The tree is parsed once and walked once: ``nodes(ast.Call)`` returns
    the pre-indexed node list, ``parent``/``ancestors`` read the parent
    map, and ``enclosing_class``/``enclosing_function`` resolve lexical
    containment without re-walking.
    """

    def __init__(self, root: Path, path: Path, source: str) -> None:
        self.root = root
        self.abs_path = path
        self.path = path.relative_to(root).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: Dict[ast.AST, ast.AST] = {}
        self._by_type: Dict[type, List[ast.AST]] = defaultdict(list)
        for parent in ast.walk(self.tree):
            self._by_type[type(parent)].append(parent)
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.suppressions: Dict[int, List[Suppression]] = {}
        self.malformed: List[Suppression] = []
        self._scan_suppressions()

    # -- tree access ----------------------------------------------------
    def nodes(self, *types: type) -> List[ast.AST]:
        """Every node of the given AST types (one shared pre-built index)."""
        out: List[ast.AST] = []
        for node_type in types:
            out.extend(self._by_type.get(node_type, ()))
        return out

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing(self, node: ast.AST, *types: type) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, types):
                return ancestor
        return None

    def enclosing_function(self, node: ast.AST):
        return self.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        return self.enclosing(node, ast.ClassDef)

    # -- source access --------------------------------------------------
    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, code: str, where, message: str) -> Finding:
        """Build a finding at an AST node (or explicit line number)."""
        line = where if isinstance(where, int) else where.lineno
        return Finding(
            code=code,
            path=self.path,
            line=line,
            message=message,
            snippet=self.snippet(line),
        )

    # -- suppressions ---------------------------------------------------
    def _scan_suppressions(self) -> None:
        """Parse disable comments; standalone ones bind to the next code line."""
        pending: List[Suppression] = []
        for number, text in enumerate(self.lines, start=1):
            stripped = text.strip()
            match = _SUPPRESS_RE.search(text)
            if match is None:
                if stripped and not stripped.startswith("#") and pending:
                    for suppression in pending:
                        self._register(number, suppression)
                    pending = []
                continue
            codes = frozenset(
                code.strip() for code in match.group(1).split(",")
                if code.strip()
            )
            suppression = Suppression(
                line=number, codes=codes,
                justification=match.group(2) or "",
            )
            if stripped.startswith("#"):
                pending.append(suppression)  # binds to the next code line
            else:
                self._register(number, suppression)
        self.malformed.extend(pending)  # trailing standalone: binds nothing

    def _register(self, line: int, suppression: Suppression) -> None:
        if not suppression.justified:
            self.malformed.append(suppression)
            return
        self.suppressions.setdefault(line, []).append(suppression)

    def suppressed(self, finding: Finding) -> bool:
        for suppression in self.suppressions.get(finding.line, ()):
            if finding.code in suppression.codes:
                return True
        return False


@dataclass
class ProjectContext:
    """Every parsed module of one analysis run (for project-wide rules)."""

    root: Path
    modules: List[ModuleContext] = field(default_factory=list)

    def module(self, path_fragment: str) -> Optional[ModuleContext]:
        for module in self.modules:
            if path_fragment in module.path:
                return module
        return None


class Rule:
    """A module-local rule: sees one :class:`ModuleContext` at a time.

    ``code`` is the stable ``RPLxxx`` identity (suppressions, baselines
    and ``--explain`` key off it); ``scope`` — when set — is a tuple of
    path fragments the rule confines itself to (engine paths for the
    determinism rules); the class docstring is the ``--explain`` text.
    """

    code: str = ""
    name: str = ""
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: ModuleContext) -> bool:
        if self.scope is None:
            return True
        path = "/" + module.path
        return any(fragment in path for fragment in self.scope)

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    @classmethod
    def explain(cls) -> str:
        doc = cls.__doc__ or "(no documentation)"
        return f"{cls.code} · {cls.name}\n\n{doc.strip()}"


class ProjectRule(Rule):
    """A rule that needs every module at once (cross-file invariants)."""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        raise NotImplementedError


#: the rule registry: RPLxxx code → rule instance
RULES: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its code."""
    if not rule_cls.code or not re.fullmatch(r"RPL\d{3}", rule_cls.code):
        raise ValueError(f"rule {rule_cls.__name__} needs an RPLxxx code")
    if rule_cls.code in RULES:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    RULES[rule_cls.code] = rule_cls()
    return rule_cls


def iter_python_files(targets: Sequence[Path]) -> Iterator[Path]:
    for target in targets:
        if target.is_file() and target.suffix == ".py":
            yield target
        elif target.is_dir():
            for path in sorted(target.rglob("*.py")):
                if not _SKIP_NAMES.intersection(path.parts):
                    yield path


@dataclass
class AnalysisReport:
    """The outcome of one :func:`run_analysis` pass."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    def by_code(self) -> Dict[str, List[Finding]]:
        grouped: Dict[str, List[Finding]] = defaultdict(list)
        for finding in self.findings:
            grouped[finding.code].append(finding)
        return dict(grouped)


def run_analysis(
    root: Path,
    targets: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisReport:
    """Run every (selected) rule over the target tree.

    ``root`` anchors relative finding paths (and baseline identity);
    ``targets`` defaults to the root itself.  Files that fail to parse
    are reported as errors, not skipped silently.
    """
    root = root.resolve()
    if targets is None:
        targets = [root]
    active = list(rules) if rules is not None else list(RULES.values())
    report = AnalysisReport()
    project = ProjectContext(root=root)
    for path in iter_python_files([Path(t).resolve() for t in targets]):
        try:
            source = path.read_text(encoding="utf-8")
            module = ModuleContext(root, path, source)
        except (OSError, SyntaxError, ValueError) as exc:
            report.errors.append(f"{path}: {exc}")
            continue
        project.modules.append(module)
    for module in project.modules:
        for suppression in module.malformed:
            report.findings.append(module.finding(
                SUPPRESSION_CODE, suppression.line,
                "repro-lint disable comment without justification text "
                "(write `# repro-lint: disable=RPLxxx -- why`); "
                "an unjustified disable suppresses nothing",
            ))
        for rule in active:
            if isinstance(rule, ProjectRule) or not rule.applies_to(module):
                continue
            for finding in rule.check_module(module):
                _deliver(module, finding, report)
    modules_by_path = {module.path: module for module in project.modules}
    for rule in active:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(project):
            module = modules_by_path.get(finding.path)
            _deliver(module, finding, report)
    report.findings.sort(key=lambda f: (f.path, f.line, f.code))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.code))
    return report


def _deliver(
    module: Optional[ModuleContext], finding: Finding, report: AnalysisReport
) -> None:
    if module is not None and module.suppressed(finding):
        report.suppressed.append(finding)
    else:
        report.findings.append(finding)


# -- shared AST helpers used by several rules ---------------------------

def call_name(node: ast.Call) -> str:
    """The called name: ``foo`` for ``foo(...)``, ``bar`` for ``a.bar(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def dotted_path(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``("self", "_service", "_cond")`` for ``self._service._cond``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


def keyword_value(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_true_constant(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is True
