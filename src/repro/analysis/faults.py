"""Fault-channel rule: no silently swallowed exceptions in engine paths.

PR 10 made the execution plane fault-*tolerant*: worker crashes, stalls
and applier exceptions are detected, counted on a stats channel
(``FaultStats``), and recovered from — or re-raised with their cause
chained.  That contract dies quietly the moment an ``except`` block in a
supervised path swallows an exception whole: the fault neither recovers
nor surfaces, and the differential suites that pin recovered ≡
fault-free have nothing to catch.  The pre-PR-10 code had exactly this
shape in several places (a bare ``except Exception: pass`` around
segment unlinks, pipe sends, thread teardown), each one a spot where a
real fault would have vanished.

:class:`SwallowedExceptRule` (RPL050) flags ``except`` handlers in the
execution-plane paths (``parallel/``, ``service.py``) whose body does
nothing but ``pass``/``break``/``continue`` — the handler neither
re-raises, nor records to a stats/fault channel, nor does *any* work
with the failure.  Handlers that genuinely must drop an exception (a
dead pipe whose EOF the poll loop will surface, an already-unlinked
segment) carry a justified suppression::

    except (BrokenPipeError, OSError):
        break  # repro-lint: disable=RPL050 -- coordinator went away; ...

which is precisely the documentation such a site owes its reader.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from .framework import Finding, ModuleContext, Rule, register

#: the supervised execution-plane paths where a swallowed exception is a
#: lost fault (the session/service engine and everything under parallel/)
FAULT_SCOPE: Tuple[str, ...] = ("/parallel/", "/service.py")

#: statement types that constitute "doing nothing with the failure"
_INERT = (ast.Pass, ast.Break, ast.Continue)


@register
class SwallowedExceptRule(Rule):
    """``except`` handlers in engine paths must not swallow silently.

    A handler whose body is only ``pass``/``break``/``continue`` turns a
    fault into nothing: no re-raise, no ``FaultStats`` count, no log —
    the supervised execution plane's recovery and accounting never see
    it, and the fault-injection differential suites cannot pin it.
    Either handle the exception (record it to a stats/fault channel,
    requeue the work, chain it onto a raised error) or — when dropping
    it is genuinely correct — say *why* with a justified suppression:
    ``# repro-lint: disable=RPL050 -- <why the drop is safe>``.
    """

    code = "RPL050"
    name = "swallowed-exception"
    scope = FAULT_SCOPE

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for handler in module.nodes(ast.ExceptHandler):
            if not all(isinstance(stmt, _INERT) for stmt in handler.body):
                continue
            # Anchor to the inert statement, not the ``except`` line: the
            # pass/break *is* the swallow, and an inline suppression lives
            # naturally on that line.
            findings.append(module.finding(
                self.code, handler.body[0],
                "except block swallows the exception (body is only "
                "pass/break/continue): a fault here neither recovers nor "
                "reaches a stats/fault channel; re-raise, record it, or "
                "justify the drop with a suppression",
            ))
        return findings
