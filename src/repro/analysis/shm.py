"""Shared-memory lifecycle rules: one creator, one attach door, teardown.

PR 7's resource-tracker bug is the canonical lifecycle failure: worker
processes attached to coordinator-owned segments with the *tracking*
constructor, so both sides registered the segment and teardown
double-unlinked.  The fix centralised the lifecycle — only
``ShardPlane`` creates segments, every attach routes through
``_attach_untracked`` (which unregisters the attach from the resource
tracker), and the creating class owns an ``unlink``-bearing teardown.
These rules freeze that architecture:

* :class:`ShmCreateRule` (RPL020) — ``SharedMemory(create=True)``
  outside ``ShardPlane``;
* :class:`ShmAttachRule` (RPL021) — an attach (``SharedMemory(name=...)``)
  outside ``_attach_untracked``;
* :class:`ShmTeardownRule` (RPL022) — a class that creates segments but
  has no method calling ``unlink`` (publish paths must be dominated by
  an unlink-bearing teardown in the same class).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .framework import (
    Finding,
    ModuleContext,
    Rule,
    call_name,
    is_true_constant,
    keyword_value,
    register,
)

#: the one class allowed to create segments
CREATOR_CLASS = "ShardPlane"
#: the one function allowed to attach to existing segments
ATTACH_DOOR = "_attach_untracked"


def _is_shared_memory_call(node: ast.Call) -> bool:
    return call_name(node) == "SharedMemory"


@register
class ShmCreateRule(Rule):
    """``SharedMemory(create=True)`` is ``ShardPlane``'s privilege.

    Segment creation implies ownership: a name to account for, a
    resource-tracker registration, and an ``unlink`` obligation.  The
    shard plane centralises all three; a create call anywhere else
    re-opens the split-ownership lifecycle that produced PR 7's
    double-unlink.
    """

    code = "RPL020"
    name = "shm-create-outside-plane"

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in module.nodes(ast.Call):
            if not _is_shared_memory_call(node):
                continue
            if not is_true_constant(keyword_value(node, "create")):
                continue
            cls = module.enclosing_class(node)
            if cls is not None and cls.name == CREATOR_CLASS:
                continue
            where = (
                f"class `{cls.name}`" if cls is not None else "module scope"
            )
            findings.append(module.finding(
                self.code, node,
                f"SharedMemory(create=True) in {where}: segment creation "
                f"(and the unlink obligation that comes with it) belongs to "
                f"`{CREATOR_CLASS}` only",
            ))
        return findings


@register
class ShmAttachRule(Rule):
    """Attaches must route through ``_attach_untracked``.

    ``SharedMemory(name=...)`` *registers the attach with the resource
    tracker*; when the attaching process is not the owner, interpreter
    exit then unlinks a segment it never created — PR 7's bug.  The
    ``_attach_untracked`` door attaches and immediately unregisters, so
    every other site must go through it.
    """

    code = "RPL021"
    name = "shm-attach-outside-door"

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in module.nodes(ast.Call):
            if not _is_shared_memory_call(node):
                continue
            if is_true_constant(keyword_value(node, "create")):
                continue  # creation is RPL020's concern
            if keyword_value(node, "name") is None and not node.args:
                continue  # neither attach nor create: not a lifecycle event
            func = module.enclosing_function(node)
            if func is not None and func.name == ATTACH_DOOR:
                continue
            findings.append(module.finding(
                self.code, node,
                "attaching with SharedMemory(name=...) registers the "
                "segment with this process's resource tracker (double-"
                f"unlink on exit); route the attach through "
                f"`{ATTACH_DOOR}` instead",
            ))
        return findings


@register
class ShmTeardownRule(Rule):
    """A segment-creating class must own an ``unlink``-bearing teardown.

    Publishing a segment without a same-class teardown path leaks the
    backing file past process exit (``/dev/shm`` fills until reboot).
    The rule accepts any method of the creating class that calls
    ``unlink`` — ``close()``, ``__exit__``, a ``finally`` block — it
    only insists the obligation lives *somewhere in the class that took
    it on*.
    """

    code = "RPL022"
    name = "shm-create-without-teardown"

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for cls in module.nodes(ast.ClassDef):
            creates = [
                node for node in ast.walk(cls)
                if isinstance(node, ast.Call)
                and _is_shared_memory_call(node)
                and is_true_constant(keyword_value(node, "create"))
                and module.enclosing_class(node) is cls
            ]
            if not creates:
                continue
            if self._has_unlink(cls):
                continue
            findings.append(module.finding(
                self.code, cls,
                f"class `{cls.name}` creates SharedMemory segments but no "
                "method of it calls `unlink`; every publish path must be "
                "dominated by an unlink-bearing teardown in the same class",
            ))
        return findings

    @staticmethod
    def _has_unlink(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Call) and call_name(node) == "unlink":
                return True
        return False
