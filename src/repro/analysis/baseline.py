"""Checked-in baselines: grandfathered findings with justifications.

A baseline lets the CI gate start *strict* without demanding that every
historical finding be fixed in the adopting PR: findings fingerprinted in
the baseline file don't fail the run, every new finding does.  Two
disciplines keep the baseline from rotting:

* every entry carries a **one-line justification** (loading rejects
  entries without one — a grandfathered finding someone cannot justify
  is a finding, not a baseline);
* fingerprints hash the finding's ``(path, code, snippet, occurrence)``
  — *not* its line number — so unrelated edits in the same file don't
  churn the baseline, while any edit to the flagged line itself retires
  the entry (the finding either went away or must be re-justified).

``python -m repro.analysis --write-baseline`` regenerates the file,
preserving justifications of surviving entries and stamping new ones
with a placeholder that must be hand-edited before the run passes.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .framework import Finding

#: stamp for freshly-written entries; loading treats it as unjustified
PLACEHOLDER = "TODO: justify this grandfathered finding"


class BaselineError(ValueError):
    """A baseline file that cannot be trusted (malformed / unjustified)."""


def fingerprint(finding: Finding, occurrence: int) -> str:
    """Line-number-free identity of one finding.

    ``occurrence`` disambiguates identical snippets flagged by the same
    code in the same file (the n-th textually-identical finding keeps
    the n-th fingerprint even when other lines move).
    """
    payload = "\n".join(
        (finding.path, finding.code, finding.snippet, str(occurrence))
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprints(findings: Sequence[Finding]) -> List[Tuple[Finding, str]]:
    """Stable per-occurrence fingerprints for a finding list."""
    seen: Counter = Counter()
    out: List[Tuple[Finding, str]] = []
    for finding in findings:
        key = (finding.path, finding.code, finding.snippet)
        out.append((finding, fingerprint(finding, seen[key])))
        seen[key] += 1
    return out


def load(path: Path) -> Dict[str, dict]:
    """The baseline as ``{fingerprint: entry}``; strict about shape."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from exc
    entries = raw.get("findings")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path} lacks a 'findings' list")
    out: Dict[str, dict] = {}
    for entry in entries:
        print_key = entry.get("fingerprint")
        justification = (entry.get("justification") or "").strip()
        if not print_key or not isinstance(print_key, str):
            raise BaselineError(
                f"baseline {path}: entry without a fingerprint: {entry!r}"
            )
        if not justification or justification == PLACEHOLDER:
            raise BaselineError(
                f"baseline {path}: entry {print_key} "
                f"({entry.get('code')} at {entry.get('path')}) has no "
                "justification — every grandfathered finding needs one line "
                "explaining why it is acceptable"
            )
        out[print_key] = entry
    return out


def split(
    findings: Sequence[Finding], baseline: Dict[str, dict]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Partition findings into (new, grandfathered) + stale fingerprints.

    Stale fingerprints — baseline entries no finding matched — are
    surfaced so a fixed finding retires its entry instead of lingering
    as dead weight that could mask a future regression on the same line.
    """
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    matched = set()
    for finding, print_key in fingerprints(findings):
        if print_key in baseline:
            matched.add(print_key)
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - matched)
    return new, grandfathered, stale


def write(
    path: Path,
    findings: Sequence[Finding],
    previous: Dict[str, dict],
) -> int:
    """Write the baseline for ``findings``; returns the entry count.

    Surviving entries keep their hand-written justifications; new ones
    get :data:`PLACEHOLDER` (which :func:`load` rejects, forcing a human
    edit before the baseline is usable).
    """
    entries = []
    for finding, print_key in fingerprints(findings):
        kept = previous.get(print_key, {})
        entries.append({
            "fingerprint": print_key,
            "code": finding.code,
            "path": finding.path,
            "line": finding.line,
            "snippet": finding.snippet,
            "justification": kept.get("justification", PLACEHOLDER),
        })
    payload = {
        "comment": (
            "Grandfathered repro.analysis findings. Every entry needs a "
            "one-line justification; regenerate with "
            "`python -m repro.analysis --write-baseline` (justifications "
            "of surviving entries are preserved)."
        ),
        "findings": entries,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
