"""CLI: ``python -m repro.analysis`` — run the repo-invariant lint pass.

Exit status is the CI contract: 0 when every finding is either fixed,
suppressed inline with a justification, or grandfathered in the
baseline; 1 when any new finding (or a stale baseline entry, or a file
that failed to parse) exists; 2 on usage / baseline-integrity errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import RULES, run_analysis
from . import baseline as baseline_mod

#: repo root: src/repro/analysis/__main__.py -> three levels above src/
REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-invariant static analysis (RPLxxx rules)",
    )
    parser.add_argument(
        "targets", nargs="*", type=Path,
        help="files/directories to analyse (default: the repo's src/repro)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="root that finding paths are relative to (default: repo root)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from current findings "
             "(keeps justifications of surviving entries)",
    )
    parser.add_argument(
        "--explain", metavar="RPLxxx",
        help="print a rule's documentation and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rule codes and exit",
    )
    parser.add_argument(
        "--report", type=Path, default=None,
        help="also write a JSON findings report to this path (CI artifact)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.explain:
        rule = RULES.get(args.explain)
        if rule is None:
            print(f"unknown rule {args.explain!r}; known: "
                  f"{', '.join(sorted(RULES))}", file=sys.stderr)
            return 2
        print(type(rule).explain())
        return 0
    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code].name}")
        return 0

    root = (args.root or REPO_ROOT).resolve()
    targets = args.targets or [root / "src" / "repro"]
    baseline_path = args.baseline or root / DEFAULT_BASELINE

    report = run_analysis(root, targets)

    previous = {}
    if baseline_path.exists() and not args.no_baseline:
        try:
            previous = baseline_mod.load(baseline_path)
        except baseline_mod.BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.write_baseline:
        count = baseline_mod.write(baseline_path, report.findings, previous)
        placeholders = sum(
            1 for _, fp in baseline_mod.fingerprints(report.findings)
            if fp not in previous
        )
        print(f"wrote {count} entries to {baseline_path}")
        if placeholders:
            print(f"note: {placeholders} new entries carry the placeholder "
                  "justification and must be hand-edited before the "
                  "baseline loads")
        return 0

    new, grandfathered, stale = baseline_mod.split(report.findings, previous)

    for finding in new:
        print(finding.render())
    for fingerprint in stale:
        entry = previous[fingerprint]
        print(f"stale baseline entry {fingerprint} "
              f"({entry.get('code')} at {entry.get('path')}): the finding "
              "is gone — retire it with --write-baseline")
    for error in report.errors:
        print(f"error: {error}", file=sys.stderr)

    if args.report is not None:
        payload = {
            "findings": [vars(f) for f in new],
            "grandfathered": [vars(f) for f in grandfathered],
            "suppressed": [vars(f) for f in report.suppressed],
            "stale": stale,
            "errors": report.errors,
        }
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    summary = (
        f"{len(new)} finding(s), {len(grandfathered)} grandfathered, "
        f"{len(report.suppressed)} suppressed, {len(stale)} stale "
        f"baseline entr(ies), {len(report.errors)} error(s)"
    )
    print(summary)
    return 1 if (new or stale or report.errors) else 0


if __name__ == "__main__":
    sys.exit(main())
