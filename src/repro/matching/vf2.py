"""Subgraph isomorphism matching (Section 2 semantics).

A *match* of pattern ``Q[x̄]`` in graph ``G`` is an injective mapping ``h``
from pattern variables to graph nodes such that

* node labels agree (the wildcard ``'_'`` matches any label), and
* every pattern edge ``(u, u')`` with label ``l`` maps to a graph edge
  ``(h(u), h(u'))`` carrying ``l`` (or any label, if ``l`` is wildcard).

This is non-induced subgraph isomorphism: extra graph edges between matched
nodes are permitted, exactly as in the paper's definition (the isomorphism
is onto the subgraph ``G'`` formed by the *images* of the pattern's nodes
and edges).

The matcher is a VF2-flavoured backtracking search: variables are ordered
so that each one (where possible) is adjacent to an already-placed
variable, in which case its candidates come from the placed neighbour's
adjacency rather than the global label index.  Disconnected patterns
fall back to the label index when a fresh component starts, preserving
completeness.

Two interchangeable backends drive the search (see
:mod:`repro.graph.snapshot` for the selection rules):

* ``legacy`` — the original dict-of-dicts walk over a
  :class:`PropertyGraph`;
* ``snapshot`` — index-space search over a :class:`GraphSnapshot`:
  candidates, frontiers, and edge checks all run on interned ints, and
  matches are translated back to original node ids only when yielded.

Both backends enumerate exactly the same match set (the differential
harness in ``tests/test_matcher_differential.py`` locks this in); only
the traversal cost differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..graph.graph import NodeId, PropertyGraph, WILDCARD
from ..graph.snapshot import GraphSnapshot
from ..pattern.pattern import GraphPattern, Variable
from .candidates import compute_candidate_indices, compute_candidates
from .factorised import EVAL_MODES, FactorisedPlan, build_plan

Match = Dict[Variable, NodeId]

#: Sentinel for "this pivot assignment admits no matches" — distinct from
#: ``None`` (no restriction at all) in the factorised query paths.
_NO_MATCH = object()

#: Accepted matcher backends: ``auto`` resolves a PropertyGraph to its
#: cached snapshot; ``legacy``/``snapshot`` force one path.
BACKENDS = ("auto", "legacy", "snapshot")


@dataclass
class MatchStats:
    """Search-effort counters, used by the cluster cost model.

    ``steps`` counts candidate extensions attempted — a deterministic,
    machine-independent proxy for matching work.  The two backends may
    report different ``steps`` for the same query (the indexed one prunes
    earlier); ``matches`` is always identical.
    """

    steps: int = 0
    matches: int = 0


class SubgraphMatcher:
    """Reusable matcher for one pattern over one graph.

    Construct once, then call :meth:`matches` (optionally with pre-assigned
    pivot variables) as many times as needed; candidate computation is done
    once at construction.

    ``graph`` may be a :class:`PropertyGraph` or a :class:`GraphSnapshot`.
    ``backend`` selects the search implementation: ``"auto"`` (default)
    uses the graph's cached snapshot, ``"legacy"`` forces the dict-backed
    path, ``"snapshot"`` forces the indexed path.
    """

    def __init__(
        self,
        pattern: GraphPattern,
        graph: Union[PropertyGraph, GraphSnapshot],
        backend: str = "auto",
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown matcher backend {backend!r}")
        self.pattern = pattern
        self.graph: Optional[PropertyGraph]
        self.snapshot: Optional[GraphSnapshot]
        if isinstance(graph, GraphSnapshot):
            if backend == "legacy":
                raise ValueError(
                    "backend='legacy' requires a PropertyGraph, got a snapshot"
                )
            self.graph = None
            self.snapshot = graph
        elif backend == "legacy":
            self.graph = graph
            self.snapshot = None
        else:
            self.graph = graph
            self.snapshot = graph.snapshot()
        self.backend = "legacy" if self.snapshot is None else "snapshot"

        if self.snapshot is not None:
            self._cand: Dict[Variable, Set] = compute_candidate_indices(
                pattern, self.snapshot
            )
            self._compile_pattern(self.snapshot)
            self._frontier = self._frontier_indexed
            self._consistent = self._consistent_indexed
        else:
            self._cand = compute_candidates(pattern, graph)
            self._frontier = self._frontier_legacy
            self._consistent = self._consistent_legacy
        self._cand_nodes: Optional[Dict[Variable, Set[NodeId]]] = None
        self.order = self._plan_order()
        # Lazily-compiled factorised plan: None = not tried yet, False =
        # tried and the pattern does not factorise on this backend.
        self._fact_plan: Union[FactorisedPlan, None, bool] = None

    def _compile_pattern(self, snap: GraphSnapshot) -> None:
        """Pre-translate pattern edge labels to interned codes."""
        self._pat_out: Dict[Variable, List[Tuple[Variable, int]]] = {}
        self._pat_in: Dict[Variable, List[Tuple[Variable, int]]] = {}
        for var in self.pattern.nodes():
            self._pat_out[var] = [
                (nbr, snap.edge_label_code(elabel))
                for nbr, elabel in self.pattern.out_edges(var)
            ]
            self._pat_in[var] = [
                (nbr, snap.edge_label_code(elabel))
                for nbr, elabel in self.pattern.in_edges(var)
            ]

    @property
    def candidates(self) -> Dict[Variable, Set[NodeId]]:
        """Candidate sets in original-id space (either backend)."""
        if self._cand_nodes is None:
            if self.snapshot is not None:
                ids = self.snapshot.node_ids
                self._cand_nodes = {
                    var: {ids[idx] for idx in members}
                    for var, members in self._cand.items()
                }
            else:
                self._cand_nodes = self._cand
        return self._cand_nodes

    def _plan_order(self) -> List[Variable]:
        """Connectivity-first, rarest-candidates-first search order."""
        pattern = self.pattern
        placed: Set[Variable] = set()
        order: List[Variable] = []
        remaining = list(pattern.nodes())
        while remaining:
            def key(var: Variable) -> Tuple[int, int, str]:
                connected = sum(
                    1 for nbr, _ in pattern.out_edges(var) if nbr in placed
                ) + sum(1 for nbr, _ in pattern.in_edges(var) if nbr in placed)
                return (-connected, len(self._cand[var]), var)

            best = min(remaining, key=key)
            order.append(best)
            placed.add(best)
            remaining.remove(best)
        return order

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def matches(
        self,
        fixed: Optional[Match] = None,
        limit: Optional[int] = None,
        stats: Optional[MatchStats] = None,
    ) -> Iterator[Match]:
        """Enumerate matches lazily.

        ``fixed`` pre-assigns variables to graph nodes (pivoted matching,
        Section 6.1: matches "h(x̄) such that h(x̄) includes v_z̄").
        ``limit`` stops after that many matches — per call: the bound
        applies to the matches *this* iterator yields, regardless of any
        shared ``stats`` carried over from earlier calls, and
        ``limit=0`` yields nothing.  ``stats`` accumulates search-effort
        counters.
        """
        fixed = fixed or {}
        stats = stats if stats is not None else MatchStats()
        for var in fixed:
            if var not in self.pattern:
                raise KeyError(f"unknown pattern variable {var!r}")
        if self.snapshot is not None:
            index_of = self.snapshot.index
            pinned: Dict[Variable, int] = {}
            for var, node in fixed.items():
                idx = index_of.get(node)
                if idx is None or idx not in self._cand[var]:
                    return iter(())  # incompatible pivot: no matches
                pinned[var] = idx
        else:
            pinned = dict(fixed)
            for var, node in pinned.items():
                if node not in self._cand[var]:
                    return iter(())  # incompatible pivot: no matches
        if len(set(pinned.values())) != len(pinned):
            return iter(())  # pivot assignment not injective
        mapping = dict(pinned)
        used = set(pinned.values())
        # Validate edges among fixed variables up front.
        for var in pinned:
            if not self._consistent(var, mapping[var], mapping, skip=var):
                return iter(())
        order = [v for v in self.order if v not in pinned]
        found = self._search(order, 0, mapping, used, stats)
        if limit is not None:
            return islice(found, limit)
        return found

    def first_match(self, fixed: Optional[Match] = None) -> Optional[Match]:
        """The first match found, or ``None``."""
        return next(self.matches(fixed=fixed, limit=1), None)

    def count_matches(
        self,
        fixed: Optional[Match] = None,
        stats: Optional[MatchStats] = None,
        eval_mode: str = "auto",
    ) -> int:
        """Total number of matches (materialises nothing).

        ``eval_mode`` selects the evaluation strategy: ``"auto"``
        answers by factorised variable elimination when the pattern's
        join structure permits (see :mod:`repro.matching.factorised`)
        and enumerates otherwise; ``"factorised"`` forces elimination
        (raising :class:`ValueError` when the pattern does not
        factorise); ``"enumerate"`` forces the VF2 walk.
        """
        plan = self._plan_for(eval_mode)
        if plan is not None:
            restrict = self._pin_indices(fixed)
            if restrict is _NO_MATCH:
                return 0
            return plan.count(restrict, stats=stats)
        return sum(1 for _ in self.matches(fixed=fixed, stats=stats))

    def evidence(
        self,
        graph: Optional[PropertyGraph] = None,
        fixed: Optional[Match] = None,
        eval_mode: str = "auto",
        stats: Optional[MatchStats] = None,
    ):
        """``(count, EvidenceAggregate)`` over the full match set.

        Equivalent to folding every match through
        :meth:`repro.core.discovery.EvidenceAggregate.add`, but under
        ``eval_mode="auto"``/``"factorised"`` computed without
        enumerating when the pattern factorises.  ``graph`` supplies
        node attributes (snapshots index structure only) and defaults
        to the matcher's own ``PropertyGraph``; pass it explicitly when
        the matcher was built directly on a snapshot.
        """
        from ..core.discovery import EvidenceAggregate

        source = graph if graph is not None else self.graph
        if source is None:
            raise ValueError(
                "evidence() needs a PropertyGraph for attribute lookups"
            )
        plan = self._plan_for(eval_mode)
        if plan is not None:
            restrict = self._pin_indices(fixed)
            if restrict is _NO_MATCH:
                return 0, EvidenceAggregate()
            return plan.evidence(source, restrict, stats=stats)
        aggregate = EvidenceAggregate()
        for match in self.matches(fixed=fixed, stats=stats):
            aggregate.add(source, match)
        return aggregate.count, aggregate

    def dependency_tallies(
        self,
        deps,
        graph: Optional[PropertyGraph] = None,
        fixed: Optional[Match] = None,
        eval_mode: str = "auto",
        stats: Optional[MatchStats] = None,
    ) -> List[Tuple[int, int]]:
        """``(supported, satisfied)`` per ``(lhs, rhs)`` candidate.

        The count phase's core query, answered over the *full* match
        set.  Factorised evaluation handles candidates spanning at most
        two variables (everything proposal emits); anything else — or an
        unhashable attribute value — falls back to a single shared
        enumeration over all candidates.
        """
        from ..core.satisfaction import match_satisfies_all

        source = graph if graph is not None else self.graph
        if source is None:
            raise ValueError(
                "dependency_tallies() needs a PropertyGraph for attributes"
            )
        plan = self._plan_for(eval_mode)
        if plan is not None:
            restrict = self._pin_indices(fixed)
            if restrict is _NO_MATCH:
                return [(0, 0) for _ in deps]
            tallies = plan.dependency_tallies(
                source, deps, restrict, stats=stats
            )
            if tallies is not None:
                return tallies
            if eval_mode == "factorised":
                raise ValueError(
                    "dependency candidates exceed the factorised plan's "
                    "supported forms (more than two variables involved, "
                    "or unhashable attribute values)"
                )
        counts = [[0, 0] for _ in deps]
        for match in self.matches(fixed=fixed, stats=stats):
            for position, (lhs, rhs) in enumerate(deps):
                if match_satisfies_all(source, match, lhs):
                    counts[position][0] += 1
                    if match_satisfies_all(source, match, rhs):
                        counts[position][1] += 1
        return [(supported, satisfied) for supported, satisfied in counts]

    # ------------------------------------------------------------------
    # factorised evaluation plumbing
    # ------------------------------------------------------------------
    def factorised_plan(self) -> Optional[FactorisedPlan]:
        """The compiled factorised plan, or ``None`` if not factorisable.

        Compiled lazily on first use and cached on the matcher (the
        engine's block materialiser caches matchers per pattern, so the
        plan survives across work units exactly like the candidate
        sets).  Always ``None`` on the legacy backend — elimination
        runs on the snapshot's CSR index.
        """
        plan = self._fact_plan
        if plan is None:
            plan = build_plan(self.pattern, self.snapshot, self._cand)
            self._fact_plan = plan if plan is not None else False
        return plan or None

    def _plan_for(self, eval_mode: str) -> Optional[FactorisedPlan]:
        if eval_mode not in EVAL_MODES:
            raise ValueError(f"unknown eval mode {eval_mode!r}")
        if eval_mode == "enumerate":
            return None
        plan = self.factorised_plan()
        if plan is None and eval_mode == "factorised":
            raise ValueError(
                "pattern does not factorise (cyclic join structure, too "
                "many variables, or legacy backend); use eval_mode='auto' "
                "or 'enumerate'"
            )
        return plan

    def _pin_indices(self, fixed: Optional[Match]):
        """Translate ``fixed`` to an index-space restriction.

        Mirrors :meth:`matches`' pivot validation exactly: unknown
        variables raise, incompatible or non-injective assignments
        admit no matches (returned as :data:`_NO_MATCH`)."""
        if not fixed:
            return None
        index_of = self.snapshot.index
        restrict: Dict[Variable, int] = {}
        for var, node in fixed.items():
            if var not in self.pattern:
                raise KeyError(f"unknown pattern variable {var!r}")
            idx = index_of.get(node)
            if idx is None or idx not in self._cand[var]:
                return _NO_MATCH
            restrict[var] = idx
        if len(set(restrict.values())) != len(restrict):
            return _NO_MATCH
        return restrict

    # ------------------------------------------------------------------
    # search internals
    # ------------------------------------------------------------------
    def _search(
        self,
        order: List[Variable],
        index: int,
        mapping: Dict[Variable, object],
        used: Set,
        stats: MatchStats,
    ) -> Iterator[Match]:
        if index == len(order):
            stats.matches += 1
            yield self._emit(mapping)
            return
        var = order[index]
        for node in self._frontier(var, mapping):
            if node in used:
                continue
            stats.steps += 1
            if not self._consistent(var, node, mapping):
                continue
            mapping[var] = node
            used.add(node)
            yield from self._search(order, index + 1, mapping, used, stats)
            del mapping[var]
            used.discard(node)

    def _emit(self, mapping: Dict[Variable, object]) -> Match:
        if self.snapshot is not None:
            ids = self.snapshot.node_ids
            return {var: ids[idx] for var, idx in mapping.items()}
        return dict(mapping)

    # -- legacy backend -------------------------------------------------
    def _frontier_legacy(self, var: Variable, mapping: Match) -> Iterator[NodeId]:
        """Candidates for ``var`` given the partial mapping.

        If ``var`` is adjacent to a mapped variable, walk that node's
        adjacency (small); otherwise fall back to the global candidate set.
        """
        pattern = self.pattern
        graph = self.graph
        candidates = self._cand[var]
        # Find the mapped neighbour with the smallest adjacency.
        best: Optional[Tuple[int, Iterator[NodeId]]] = None
        for nbr, elabel in pattern.in_edges(var):
            # pattern edge nbr -> var: candidates are out-neighbours of h(nbr)
            if nbr in mapping:
                image = mapping[nbr]
                nbrs = graph.out_neighbors(image)
                pool = [
                    node
                    for node, labels in nbrs.items()
                    if (elabel == WILDCARD or elabel in labels) and node in candidates
                ]
                if best is None or len(pool) < best[0]:
                    best = (len(pool), iter(pool))
        for nbr, elabel in pattern.out_edges(var):
            # pattern edge var -> nbr: candidates are in-neighbours of h(nbr)
            if nbr in mapping:
                image = mapping[nbr]
                nbrs = graph.in_neighbors(image)
                pool = [
                    node
                    for node, labels in nbrs.items()
                    if (elabel == WILDCARD or elabel in labels) and node in candidates
                ]
                if best is None or len(pool) < best[0]:
                    best = (len(pool), iter(pool))
        if best is not None:
            return best[1]
        return iter(candidates)

    def _consistent_legacy(
        self,
        var: Variable,
        node: NodeId,
        mapping: Match,
        skip: Optional[Variable] = None,
    ) -> bool:
        """All pattern edges between ``var`` and mapped variables must exist."""
        graph = self.graph
        for nbr, elabel in self.pattern.out_edges(var):
            if nbr == var:  # self loop
                if not _edge_ok(graph, node, node, elabel):
                    return False
            elif nbr in mapping and nbr != skip:
                if not _edge_ok(graph, node, mapping[nbr], elabel):
                    return False
        for nbr, elabel in self.pattern.in_edges(var):
            if nbr in mapping and nbr != skip and nbr != var:
                if not _edge_ok(graph, mapping[nbr], node, elabel):
                    return False
        return True

    # -- indexed backend ------------------------------------------------
    def _frontier_indexed(self, var: Variable, mapping: Dict[Variable, int]):
        """Index-space frontier: CSR slices instead of adjacency-dict scans."""
        snap = self.snapshot
        candidates = self._cand[var]
        best: Optional[List[int]] = None
        for nbr, code in self._pat_in[var]:
            # pattern edge nbr -> var: candidates are out-neighbours of h(nbr)
            if nbr in mapping:
                pool = [
                    idx
                    for idx in snap.out_pool(mapping[nbr], code)
                    if idx in candidates
                ]
                if best is None or len(pool) < len(best):
                    best = pool
        for nbr, code in self._pat_out[var]:
            # pattern edge var -> nbr: candidates are in-neighbours of h(nbr)
            if nbr in mapping:
                pool = [
                    idx
                    for idx in snap.in_pool(mapping[nbr], code)
                    if idx in candidates
                ]
                if best is None or len(pool) < len(best):
                    best = pool
        if best is not None:
            return best
        return iter(candidates)

    def _consistent_indexed(
        self,
        var: Variable,
        node: int,
        mapping: Dict[Variable, int],
        skip: Optional[Variable] = None,
    ) -> bool:
        """Consistency via the snapshot's O(1) interned edge sets."""
        edge_ok = self.snapshot.edge_ok
        for nbr, code in self._pat_out[var]:
            if nbr == var:  # self loop
                if not edge_ok(node, node, code):
                    return False
            elif nbr in mapping and nbr != skip:
                if not edge_ok(node, mapping[nbr], code):
                    return False
        for nbr, code in self._pat_in[var]:
            if nbr in mapping and nbr != skip and nbr != var:
                if not edge_ok(mapping[nbr], node, code):
                    return False
        return True


def _edge_ok(graph: PropertyGraph, src: NodeId, dst: NodeId, elabel: str) -> bool:
    if elabel == WILDCARD:
        return graph.has_edge(src, dst)
    return graph.has_edge(src, dst, elabel)


# ----------------------------------------------------------------------
# module-level conveniences
# ----------------------------------------------------------------------
def find_matches(
    pattern: GraphPattern,
    graph: Union[PropertyGraph, GraphSnapshot],
    fixed: Optional[Match] = None,
    limit: Optional[int] = None,
    stats: Optional[MatchStats] = None,
    backend: str = "auto",
) -> Iterator[Match]:
    """Enumerate matches of ``pattern`` in ``graph`` (see the class docs)."""
    return SubgraphMatcher(pattern, graph, backend=backend).matches(
        fixed=fixed, limit=limit, stats=stats
    )


def has_match(
    pattern: GraphPattern,
    graph: Union[PropertyGraph, GraphSnapshot],
    backend: str = "auto",
) -> bool:
    """Whether ``pattern`` matches anywhere in ``graph``."""
    return SubgraphMatcher(pattern, graph, backend=backend).first_match() is not None


def count_matches(
    pattern: GraphPattern,
    graph: Union[PropertyGraph, GraphSnapshot],
    backend: str = "auto",
    eval_mode: str = "auto",
) -> int:
    """Number of matches of ``pattern`` in ``graph``."""
    return SubgraphMatcher(pattern, graph, backend=backend).count_matches(
        eval_mode=eval_mode
    )
