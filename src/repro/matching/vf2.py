"""Subgraph isomorphism matching (Section 2 semantics).

A *match* of pattern ``Q[x̄]`` in graph ``G`` is an injective mapping ``h``
from pattern variables to graph nodes such that

* node labels agree (the wildcard ``'_'`` matches any label), and
* every pattern edge ``(u, u')`` with label ``l`` maps to a graph edge
  ``(h(u), h(u'))`` carrying ``l`` (or any label, if ``l`` is wildcard).

This is non-induced subgraph isomorphism: extra graph edges between matched
nodes are permitted, exactly as in the paper's definition (the isomorphism
is onto the subgraph ``G'`` formed by the *images* of the pattern's nodes
and edges).

The matcher is a VF2-flavoured backtracking search: variables are ordered
so that each one (where possible) is adjacent to an already-placed
variable, in which case its candidates come from the placed neighbour's
adjacency list rather than the global label index.  Disconnected patterns
fall back to the label index when a fresh component starts, preserving
completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..graph.graph import NodeId, PropertyGraph, WILDCARD
from ..pattern.pattern import GraphPattern, Variable
from .candidates import compute_candidates

Match = Dict[Variable, NodeId]


@dataclass
class MatchStats:
    """Search-effort counters, used by the cluster cost model.

    ``steps`` counts candidate extensions attempted — a deterministic,
    machine-independent proxy for matching work.
    """

    steps: int = 0
    matches: int = 0


class SubgraphMatcher:
    """Reusable matcher for one pattern over one graph.

    Construct once, then call :meth:`matches` (optionally with pre-assigned
    pivot variables) as many times as needed; candidate computation is done
    once at construction.
    """

    def __init__(self, pattern: GraphPattern, graph: PropertyGraph) -> None:
        self.pattern = pattern
        self.graph = graph
        self.candidates = compute_candidates(pattern, graph)
        self.order = self._plan_order()

    def _plan_order(self) -> List[Variable]:
        """Connectivity-first, rarest-candidates-first search order."""
        pattern = self.pattern
        placed: Set[Variable] = set()
        order: List[Variable] = []
        remaining = list(pattern.nodes())
        while remaining:
            def key(var: Variable) -> Tuple[int, int, str]:
                connected = sum(
                    1 for nbr, _ in pattern.out_edges(var) if nbr in placed
                ) + sum(1 for nbr, _ in pattern.in_edges(var) if nbr in placed)
                return (-connected, len(self.candidates[var]), var)

            best = min(remaining, key=key)
            order.append(best)
            placed.add(best)
            remaining.remove(best)
        return order

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def matches(
        self,
        fixed: Optional[Match] = None,
        limit: Optional[int] = None,
        stats: Optional[MatchStats] = None,
    ) -> Iterator[Match]:
        """Enumerate matches lazily.

        ``fixed`` pre-assigns variables to graph nodes (pivoted matching,
        Section 6.1: matches "h(x̄) such that h(x̄) includes v_z̄").
        ``limit`` stops after that many matches.  ``stats`` accumulates
        search-effort counters.
        """
        fixed = fixed or {}
        stats = stats if stats is not None else MatchStats()
        for var, node in fixed.items():
            if var not in self.pattern:
                raise KeyError(f"unknown pattern variable {var!r}")
            if node not in self.candidates[var]:
                return  # incompatible pivot: no matches
        if len(set(fixed.values())) != len(fixed):
            return  # pivot assignment not injective
        mapping: Match = dict(fixed)
        used: Set[NodeId] = set(fixed.values())
        # Validate edges among fixed variables up front.
        for var in fixed:
            if not self._consistent(var, mapping[var], mapping, skip=var):
                return
        order = [v for v in self.order if v not in fixed]
        yield from self._search(order, 0, mapping, used, limit, stats)

    def first_match(self, fixed: Optional[Match] = None) -> Optional[Match]:
        """The first match found, or ``None``."""
        return next(self.matches(fixed=fixed, limit=1), None)

    def count_matches(
        self, fixed: Optional[Match] = None, stats: Optional[MatchStats] = None
    ) -> int:
        """Total number of matches (materialises nothing)."""
        return sum(1 for _ in self.matches(fixed=fixed, stats=stats))

    # ------------------------------------------------------------------
    # search internals
    # ------------------------------------------------------------------
    def _search(
        self,
        order: List[Variable],
        index: int,
        mapping: Match,
        used: Set[NodeId],
        limit: Optional[int],
        stats: MatchStats,
    ) -> Iterator[Match]:
        if index == len(order):
            stats.matches += 1
            yield dict(mapping)
            return
        var = order[index]
        for node in self._frontier(var, mapping):
            if node in used:
                continue
            stats.steps += 1
            if not self._consistent(var, node, mapping):
                continue
            mapping[var] = node
            used.add(node)
            yield from self._search(order, index + 1, mapping, used, limit, stats)
            del mapping[var]
            used.discard(node)
            if limit is not None and stats.matches >= limit:
                return

    def _frontier(self, var: Variable, mapping: Match) -> Iterator[NodeId]:
        """Candidates for ``var`` given the partial mapping.

        If ``var`` is adjacent to a mapped variable, walk that node's
        adjacency (small); otherwise fall back to the global candidate set.
        """
        pattern = self.pattern
        graph = self.graph
        candidates = self.candidates[var]
        # Find the mapped neighbour with the smallest adjacency.
        best: Optional[Tuple[int, Iterator[NodeId]]] = None
        for nbr, elabel in pattern.in_edges(var):
            # pattern edge nbr -> var: candidates are out-neighbours of h(nbr)
            if nbr in mapping:
                image = mapping[nbr]
                nbrs = graph.out_neighbors(image)
                pool = [
                    node
                    for node, labels in nbrs.items()
                    if (elabel == WILDCARD or elabel in labels) and node in candidates
                ]
                if best is None or len(pool) < best[0]:
                    best = (len(pool), iter(pool))
        for nbr, elabel in pattern.out_edges(var):
            # pattern edge var -> nbr: candidates are in-neighbours of h(nbr)
            if nbr in mapping:
                image = mapping[nbr]
                nbrs = graph.in_neighbors(image)
                pool = [
                    node
                    for node, labels in nbrs.items()
                    if (elabel == WILDCARD or elabel in labels) and node in candidates
                ]
                if best is None or len(pool) < best[0]:
                    best = (len(pool), iter(pool))
        if best is not None:
            return best[1]
        return iter(candidates)

    def _consistent(
        self,
        var: Variable,
        node: NodeId,
        mapping: Match,
        skip: Optional[Variable] = None,
    ) -> bool:
        """All pattern edges between ``var`` and mapped variables must exist."""
        graph = self.graph
        for nbr, elabel in self.pattern.out_edges(var):
            if nbr == var:  # self loop
                if not _edge_ok(graph, node, node, elabel):
                    return False
            elif nbr in mapping and nbr != skip:
                if not _edge_ok(graph, node, mapping[nbr], elabel):
                    return False
        for nbr, elabel in self.pattern.in_edges(var):
            if nbr in mapping and nbr != skip and nbr != var:
                if not _edge_ok(graph, mapping[nbr], node, elabel):
                    return False
        return True


def _edge_ok(graph: PropertyGraph, src: NodeId, dst: NodeId, elabel: str) -> bool:
    if elabel == WILDCARD:
        return graph.has_edge(src, dst)
    return graph.has_edge(src, dst, elabel)


# ----------------------------------------------------------------------
# module-level conveniences
# ----------------------------------------------------------------------
def find_matches(
    pattern: GraphPattern,
    graph: PropertyGraph,
    fixed: Optional[Match] = None,
    limit: Optional[int] = None,
    stats: Optional[MatchStats] = None,
) -> Iterator[Match]:
    """Enumerate matches of ``pattern`` in ``graph`` (see the class docs)."""
    return SubgraphMatcher(pattern, graph).matches(
        fixed=fixed, limit=limit, stats=stats
    )


def has_match(pattern: GraphPattern, graph: PropertyGraph) -> bool:
    """Whether ``pattern`` matches anywhere in ``graph``."""
    return SubgraphMatcher(pattern, graph).first_match() is not None


def count_matches(pattern: GraphPattern, graph: PropertyGraph) -> int:
    """Number of matches of ``pattern`` in ``graph``."""
    return SubgraphMatcher(pattern, graph).count_matches()
