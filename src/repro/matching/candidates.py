"""Candidate filtering for subgraph isomorphism.

Before the backtracking search runs, each pattern variable gets a candidate
set: graph nodes with a compatible label whose degree profile can cover the
variable's pattern edges.  Tight candidate sets are what make matching
feasible on the benchmark graphs — label filtering alone typically shrinks
the search space by two to three orders of magnitude.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set

from ..graph.graph import NodeId, PropertyGraph, WILDCARD
from ..pattern.pattern import GraphPattern, Variable


def label_candidates(
    pattern: GraphPattern, graph: PropertyGraph
) -> Dict[Variable, Set[NodeId]]:
    """Label-compatible candidates per pattern variable."""
    out: Dict[Variable, Set[NodeId]] = {}
    all_nodes: Set[NodeId] = None  # lazily materialised for wildcards
    for var in pattern.nodes():
        label = pattern.label(var)
        if label == WILDCARD:
            if all_nodes is None:
                all_nodes = set(graph.nodes())
            out[var] = set(all_nodes)
        else:
            out[var] = set(graph.nodes_with_label(label))
    return out


def degree_filter(
    pattern: GraphPattern,
    graph: PropertyGraph,
    candidates: Dict[Variable, Set[NodeId]],
) -> Dict[Variable, Set[NodeId]]:
    """Drop candidates that cannot cover a variable's labelled edges.

    A node survives for variable ``u`` only if, for every outgoing edge
    label ``l`` of ``u`` (counted with multiplicity), it has at least that
    many outgoing edges with a compatible label; symmetrically for incoming
    edges.  Wildcard pattern edges count against total degree.
    """
    filtered: Dict[Variable, Set[NodeId]] = {}
    for var, cand in candidates.items():
        out_need = Counter(elabel for _, elabel in pattern.out_edges(var))
        in_need = Counter(elabel for _, elabel in pattern.in_edges(var))
        keep: Set[NodeId] = set()
        for node in cand:
            if _covers(graph.out_neighbors(node), out_need) and _covers(
                graph.in_neighbors(node), in_need
            ):
                keep.add(node)
        filtered[var] = keep
    return filtered


def _covers(neighbors: Dict[NodeId, Set[str]], need: Counter) -> bool:
    if not need:
        return True
    have: Counter = Counter()
    total = 0
    for labels in neighbors.values():
        for label in labels:
            have[label] += 1
            total += 1
    for label, count in need.items():
        if label == WILDCARD:
            if total < sum(need.values()):
                return False
        elif have.get(label, 0) < count:
            return False
    return True


def compute_candidates(
    pattern: GraphPattern, graph: PropertyGraph
) -> Dict[Variable, Set[NodeId]]:
    """Label + degree filtered candidate sets (the matcher's starting point)."""
    return degree_filter(pattern, graph, label_candidates(pattern, graph))
