"""Candidate filtering for subgraph isomorphism.

Before the backtracking search runs, each pattern variable gets a candidate
set: graph nodes with a compatible label whose degree profile can cover the
variable's pattern edges.  Tight candidate sets are what make matching
feasible on the benchmark graphs — label filtering alone typically shrinks
the search space by two to three orders of magnitude.

Two backends share the same contract (see :mod:`repro.graph.snapshot`):

* the legacy path walks the :class:`PropertyGraph` dict-of-dicts and
  re-counts neighbour labels per candidate;
* the indexed path runs over a :class:`GraphSnapshot` — label-pair-index
  seeding plus precomputed neighbour-label histograms — and never touches
  an adjacency dict.  It returns candidate sets that are subsets of the
  legacy ones; both yield identical match sets downstream.
"""

from __future__ import annotations

from collections import Counter
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..graph.graph import NodeId, PropertyGraph, WILDCARD
from ..graph.snapshot import ABSENT_CODE, GraphSnapshot
from ..pattern.pattern import GraphPattern, Variable


def label_candidates(
    pattern: GraphPattern, graph: PropertyGraph
) -> Dict[Variable, AbstractSet[NodeId]]:
    """Label-compatible candidates per pattern variable.

    Wildcard variables share one frozen all-nodes set (materialised at most
    once); labelled variables get fresh mutable sets.
    """
    out: Dict[Variable, AbstractSet[NodeId]] = {}
    all_nodes: Optional[FrozenSet[NodeId]] = None  # lazily materialised
    for var in pattern.nodes():
        label = pattern.label(var)
        if label == WILDCARD:
            if all_nodes is None:
                all_nodes = frozenset(graph.nodes())
            out[var] = all_nodes
        else:
            out[var] = set(graph.nodes_with_label(label))
    return out


def degree_filter(
    pattern: GraphPattern,
    graph: PropertyGraph,
    candidates: Dict[Variable, AbstractSet[NodeId]],
) -> Dict[Variable, Set[NodeId]]:
    """Drop candidates that cannot cover a variable's labelled edges.

    A node survives for variable ``u`` only if, for every outgoing edge
    label ``l`` of ``u`` (counted with multiplicity), it has at least that
    many outgoing edges with a compatible label; symmetrically for incoming
    edges.  Wildcard pattern edges count against total degree.
    """
    filtered: Dict[Variable, Set[NodeId]] = {}
    for var, cand in candidates.items():
        out_need = Counter(elabel for _, elabel in pattern.out_edges(var))
        in_need = Counter(elabel for _, elabel in pattern.in_edges(var))
        keep: Set[NodeId] = set()
        for node in cand:
            if _covers(graph.out_neighbors(node), out_need) and _covers(
                graph.in_neighbors(node), in_need
            ):
                keep.add(node)
        filtered[var] = keep
    return filtered


def _covers(neighbors: Dict[NodeId, Set[str]], need: Counter) -> bool:
    if not need:
        return True
    have: Counter = Counter()
    total = 0
    for labels in neighbors.values():
        for label in labels:
            have[label] += 1
            total += 1
    for label, count in need.items():
        if label == WILDCARD:
            if total < sum(need.values()):
                return False
        elif have.get(label, 0) < count:
            return False
    return True


# ----------------------------------------------------------------------
# indexed backend (GraphSnapshot, index space)
# ----------------------------------------------------------------------
def compute_candidate_indices(
    pattern: GraphPattern, snap: GraphSnapshot
) -> Dict[Variable, Set[int]]:
    """Candidate node *indices* per variable, via the snapshot's indices.

    Three narrowing stages, each sound (a match image always survives):

    1. label seeding from the interned label index;
    2. pair-index intersection — for every pattern edge whose source
       label, edge label, and target label are all concrete, candidates
       must actually participate in such a graph edge;
    3. histogram degree filtering against the precomputed per-node
       neighbour-label histograms (same semantics as :func:`degree_filter`
       but with no per-candidate adjacency scan).
    """
    cand: Dict[Variable, Set[int]] = {}
    all_idx: Optional[range] = None
    for var in pattern.nodes():
        label = pattern.label(var)
        if label == WILDCARD:
            if all_idx is None:
                all_idx = range(snap.num_nodes)
            cand[var] = set(all_idx)
        else:
            code = snap.node_label_code(label)
            members = snap.nodes_by_label.get(code) if code is not None else None
            cand[var] = set(members) if members else set()

    for src, dst, elabel in pattern.edges():
        src_label = pattern.label(src)
        dst_label = pattern.label(dst)
        if WILDCARD in (src_label, dst_label, elabel):
            continue
        key = (
            snap.node_label_code(src_label),
            snap.edge_label_code(elabel),
            snap.node_label_code(dst_label),
        )
        cand[src] &= snap.pair_src.get(key, frozenset())
        cand[dst] &= snap.pair_dst.get(key, frozenset())

    for var in pattern.nodes():
        pool = cand[var]
        if not pool:
            continue
        out_need = _need_codes(snap, pattern.out_edges(var))
        in_need = _need_codes(snap, pattern.in_edges(var))
        if out_need is None or in_need is None:
            # A pattern edge label the graph has never seen: unmatchable.
            pool.clear()
            continue
        if not out_need[0] and not out_need[1] and not in_need[0] and not in_need[1]:
            continue
        cand[var] = {
            idx
            for idx in pool
            if _hist_covers(snap.out_hist[idx], snap.out_deg[idx], out_need)
            and _hist_covers(snap.in_hist[idx], snap.in_deg[idx], in_need)
        }
    return cand


def _need_codes(
    snap: GraphSnapshot, edges: List[Tuple[Variable, str]]
) -> Optional[Tuple[List[Tuple[int, int]], int]]:
    """``(concrete (code, count) needs, total including wildcards)``.

    ``None`` when some needed edge label is absent from the graph — no
    node can cover it.
    """
    concrete: Counter = Counter()
    total = 0
    for _, elabel in edges:
        total += 1
        if elabel == WILDCARD:
            continue
        code = snap.edge_label_code(elabel)
        if code == ABSENT_CODE:
            return None
        concrete[code] += 1
    wildcards = total - sum(concrete.values())
    # Mirror _covers: the total-degree bound applies only when a wildcard
    # edge is present.
    return (list(concrete.items()), total if wildcards else 0)


def _hist_covers(
    hist: Dict[int, int], degree: int, need: Tuple[List[Tuple[int, int]], int]
) -> bool:
    concrete, total = need
    if total and degree < total:
        return False
    for code, count in concrete:
        if hist.get(code, 0) < count:
            return False
    return True


def compute_candidates(
    pattern: GraphPattern, graph: Union[PropertyGraph, GraphSnapshot]
) -> Dict[Variable, Set[NodeId]]:
    """Filtered candidate sets (the matcher's starting point).

    Accepts either backend; snapshot candidates are translated back to
    original node ids so the contract is identical.
    """
    if isinstance(graph, GraphSnapshot):
        ids = graph.node_ids
        return {
            var: {ids[idx] for idx in members}
            for var, members in compute_candidate_indices(pattern, graph).items()
        }
    return degree_filter(pattern, graph, label_candidates(pattern, graph))
