"""Pivoted local matching inside data blocks (Section 6.1, ``localVio``).

By the locality of subgraph isomorphism, every match that instantiates the
pivot variables ``z̄`` at candidate nodes ``v_z̄`` lies entirely inside the
data block ``G_z̄`` (the union of the pivots' radius-hop neighbourhoods).
Workers therefore enumerate matches in the small block, never the full
graph.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..graph.graph import NodeId, PropertyGraph
from ..graph.subgraph import k_hop_nodes
from ..pattern.components import PivotVector
from ..pattern.pattern import GraphPattern, Variable
from .vf2 import Match, MatchStats, SubgraphMatcher


def data_block(
    graph: PropertyGraph,
    pivot: PivotVector,
    assignment: Dict[Variable, NodeId],
) -> PropertyGraph:
    """The data block ``G_z̄`` for a pivot candidate assignment.

    The subgraph induced by all nodes within ``c_i_Q`` hops of each pivot
    image, unioned over the pivot entries.
    """
    nodes: set = set()
    for entry in pivot:
        seed = assignment[entry.variable]
        nodes |= k_hop_nodes(graph, [seed], entry.radius)
    return graph.induced_subgraph(nodes)


def data_block_size(
    graph: PropertyGraph,
    pivot: PivotVector,
    assignment: Dict[Variable, NodeId],
) -> int:
    """``|G_z̄|`` without materialising the block (workload estimation)."""
    nodes: set = set()
    for entry in pivot:
        seed = assignment[entry.variable]
        nodes |= k_hop_nodes(graph, [seed], entry.radius)
    edges = 0
    for node in nodes:
        for dst, labels in graph.out_neighbors(node).items():
            if dst in nodes:
                edges += len(labels)
    return len(nodes) + edges


def pivoted_matches(
    pattern: GraphPattern,
    block: PropertyGraph,
    assignment: Dict[Variable, NodeId],
    stats: Optional[MatchStats] = None,
) -> Iterator[Match]:
    """Matches of ``pattern`` in ``block`` that include the pivot candidate.

    ``assignment`` maps pivot variables to their candidate nodes; all
    enumerated matches satisfy ``h(z_i) = v_z̄[z_i]``.
    """
    matcher = SubgraphMatcher(pattern, block)
    return matcher.matches(fixed=assignment, stats=stats)


def pivot_candidates(
    graph: PropertyGraph,
    pattern: GraphPattern,
    pivot: PivotVector,
) -> Iterator[Dict[Variable, NodeId]]:
    """Enumerate pivot candidate assignments ``v_z̄`` (Section 5.2).

    One-to-one mappings from pivot variables to graph nodes with the same
    label (wildcard pivots range over all nodes).  For pivot entries whose
    components are isomorphic, symmetric permutations are deduplicated by
    requiring candidate tuples in non-decreasing node order within each
    symmetry class — the paper's Example 10 deduplication.
    """
    from ..graph.graph import WILDCARD
    from ..pattern.containment import are_isomorphic

    entries = list(pivot)
    pools: List[List[NodeId]] = []
    for entry in entries:
        label = pattern.label(entry.variable)
        if label == WILDCARD:
            pool = list(graph.nodes())
        else:
            pool = list(graph.nodes_with_label(label))
        pools.append(sorted(pool, key=repr))

    prev_in_class = symmetry_predecessors(pattern, pivot)

    def extend(index: int, chosen: List[NodeId]) -> Iterator[Dict[Variable, NodeId]]:
        if index == len(entries):
            yield {
                entry.variable: node for entry, node in zip(entries, chosen)
            }
            return
        for node in pools[index]:
            if node in chosen:
                continue  # one-to-one mapping σ
            prev = prev_in_class[index]
            if prev is not None and repr(node) < repr(chosen[prev]):
                # Canonical order within a class of isomorphic components
                # removes symmetric duplicates (Example 10).
                continue
            yield from extend(index + 1, chosen + [node])

    yield from extend(0, [])


def symmetry_predecessors(
    pattern: GraphPattern, pivot: PivotVector
) -> List[Optional[int]]:
    """For each pivot entry, the previous entry with an isomorphic component.

    ``None`` when the entry opens its symmetry class.  Used both to
    deduplicate candidate tuples and — dually — to re-expand a deduplicated
    tuple into all pivot-variable permutations during local detection (the
    dependency ``X → Y`` need not be symmetric under component swaps, so
    both orientations must be checked).
    """
    from ..pattern.containment import are_isomorphic

    entries = list(pivot)
    views = [pattern.restricted_to(entry.component) for entry in entries]
    prev: List[Optional[int]] = [None] * len(entries)
    for i in range(len(entries)):
        for j in range(i - 1, -1, -1):
            if are_isomorphic(views[i], views[j]):
                prev[i] = j
                break
    return prev


def candidate_permutations(
    pattern: GraphPattern,
    pivot: PivotVector,
    assignment: Dict[Variable, NodeId],
) -> Iterator[Dict[Variable, NodeId]]:
    """All reassignments of a candidate tuple within its symmetry classes.

    A deduplicated work unit for pivot ``(x, y)`` with candidate ``(a, b)``
    must check matches with ``h(x)=a, h(y)=b`` *and* ``h(x)=b, h(y)=a``
    when the two components are isomorphic; this generator produces exactly
    those assignments (each one a valid label-compatible bijection).
    """
    from itertools import permutations

    entries = list(pivot)
    prev = symmetry_predecessors(pattern, pivot)
    # Group entry indices into symmetry classes.
    classes: List[List[int]] = []
    index_class: Dict[int, int] = {}
    for i in range(len(entries)):
        if prev[i] is None:
            index_class[i] = len(classes)
            classes.append([i])
        else:
            index_class[i] = index_class[prev[i]]
            classes[index_class[i]].append(i)

    base = [assignment[entry.variable] for entry in entries]

    def assignments_for(class_perms: List[List[NodeId]]) -> Dict[Variable, NodeId]:
        values = list(base)
        for cls, perm in zip(classes, class_perms):
            for slot, value in zip(cls, perm):
                values[slot] = value
        return {entry.variable: value for entry, value in zip(entries, values)}

    def product(level: int, acc: List[List[NodeId]]) -> Iterator[Dict[Variable, NodeId]]:
        if level == len(classes):
            yield assignments_for(acc)
            return
        members = classes[level]
        values = [base[i] for i in members]
        seen = set()
        for perm in permutations(values):
            if perm in seen:
                continue
            seen.add(perm)
            yield from product(level + 1, acc + [list(perm)])

    yield from product(0, [])
