"""Subgraph isomorphism matching: candidate filtering, the VF2-style
backtracking enumerator, and pivoted local matching over data blocks."""

from .candidates import (
    compute_candidate_indices,
    compute_candidates,
    degree_filter,
    label_candidates,
)
from .factorised import EVAL_MODES, FactorisedPlan, build_plan
from .vf2 import (
    Match,
    MatchStats,
    SubgraphMatcher,
    count_matches,
    find_matches,
    has_match,
)
from .locality import (
    candidate_permutations,
    data_block,
    data_block_size,
    pivot_candidates,
    pivoted_matches,
    symmetry_predecessors,
)

__all__ = [
    "EVAL_MODES",
    "FactorisedPlan",
    "build_plan",
    "compute_candidate_indices",
    "compute_candidates",
    "degree_filter",
    "label_candidates",
    "Match",
    "MatchStats",
    "SubgraphMatcher",
    "count_matches",
    "find_matches",
    "has_match",
    "candidate_permutations",
    "data_block",
    "data_block_size",
    "pivot_candidates",
    "pivoted_matches",
    "symmetry_predecessors",
]
