"""Enumeration-free pattern evaluation by variable elimination.

Discovery's count phase asks *aggregate* questions about a pattern's
match set — how many injective matches are there, how many map variable
``x`` to each node, which dependency candidates do they support — yet
until now every one of them was answered by running VF2 and folding the
enumerated matches.  For the tree-shaped patterns ``candidate_patterns``
emits (and most of what the generators produce), those aggregates are
computable *without materialising a single match*: the pattern's join
structure is acyclic, so homomorphism counts factorise into a bottom-up
dynamic program over :class:`~repro.graph.snapshot.GraphSnapshot`'s CSR
label-pair index, in ``O(|G| · |pattern|)`` — the FAQ / factorised-
database observation applied to GFD mining.

Injectivity — the part plain homomorphism counting gets wrong — is
restored exactly via Möbius inversion over the partition lattice of the
pattern's variables::

    inj(Q) = Σ_P  μ(P) · hom(Q / P)        over set partitions P,
    μ(P)   = Π_{blocks B} (-1)^{|B|-1} (|B|-1)!

where ``Q / P`` merges each block of variables into one quotient node
(keeping every edge as a constraint).  The identity holds pointwise per
assignment, so it survives *any* per-variable candidate restriction
applied consistently (quotient candidates are block-wise intersections)
— which is what makes pivot pinning and the matcher's pruned candidate
sets sound here.  A quotient whose condensed constraint graph is cyclic
cannot be eliminated on a tree; if such a quotient has non-empty
candidates the plan is rejected and the caller falls back to
enumeration (:class:`~repro.matching.vf2.SubgraphMatcher` wires the
fallback behind its ``eval_mode`` knob).

Everything here is deterministic: candidates are iterated in sorted
index order, and the work counter (``ops``) is a sum of pool and
candidate sizes — invariant under execution backend and enumeration
order, so factorised units charge identical steps on every executor.
"""

from __future__ import annotations

from collections import Counter
from math import factorial
from typing import (
    TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple,
)

from ..graph.snapshot import GraphSnapshot
from ..pattern.pattern import GraphPattern, Variable

if TYPE_CHECKING:  # avoid a cycle: vf2 imports this module at load time
    from .vf2 import MatchStats

#: Evaluation-mode knob shared by the matcher, discovery and the session:
#: ``auto`` factorises when the plan is valid and enumerates otherwise;
#: the explicit modes force one path (``factorised`` raising when the
#: pattern does not factorise).
EVAL_MODES = ("auto", "factorised", "enumerate")

#: Largest pattern (in variables) we build partition plans for: Bell(6)
#: = 203 partitions.  Candidate patterns have ≤ 3 variables (5
#: partitions); anything past the cap enumerates.
MAX_VARS = 6

_MISSING = object()


def _set_partitions(items: Sequence) -> List[List[List]]:
    """All set partitions of ``items``, deterministically ordered."""
    if not items:
        return [[]]
    first, rest = items[0], items[1:]
    out: List[List[List]] = []
    for partition in _set_partitions(rest):
        for pos in range(len(partition)):
            out.append(
                partition[:pos] + [[first] + partition[pos]]
                + partition[pos + 1:]
            )
        out.append([[first]] + partition)
    return out


def _mobius_weight(blocks: Sequence[Sequence]) -> int:
    """``μ(0̂, P)`` on the partition lattice (see module docstring)."""
    weight = 1
    for block in blocks:
        size = len(block)
        weight *= (-1) ** (size - 1) * factorial(size - 1)
    return weight


class _Quotient:
    """One partition's condensed pattern: classes, candidates, tree."""

    __slots__ = (
        "weight", "blocks", "var_class", "cand", "cand_sets",
        "adj", "components", "comp_of", "empty",
    )

    def __init__(self, snapshot, pattern, candidates, blocks) -> None:
        self.weight = _mobius_weight(blocks)
        self.blocks: Tuple[FrozenSet[Variable], ...] = tuple(
            frozenset(block) for block in blocks
        )
        self.var_class: Dict[Variable, int] = {}
        for cls, block in enumerate(self.blocks):
            for var in block:
                self.var_class[var] = cls

        # Per-class candidates: block-wise intersection of the matcher's
        # per-variable sets, filtered by within-class edges (a merged
        # block containing pattern edge u -> v needs a self-loop on the
        # class's image; labels are already enforced by the sets).
        edge_ok = snapshot.edge_ok
        constraints: Dict[Tuple[int, int], List[Tuple[bool, int]]] = {}
        self_codes: Dict[int, List[int]] = {}
        for src, dst, elabel in pattern.edges():
            code = snapshot.edge_label_code(elabel)
            c_src, c_dst = self.var_class[src], self.var_class[dst]
            if c_src == c_dst:
                self_codes.setdefault(c_src, []).append(code)
            else:
                # One undirected condensed edge per class pair; every
                # pattern edge between the pair (either direction, any
                # label) rides it as a (src-is-lower-class, code)
                # constraint.
                low, high = min(c_src, c_dst), max(c_src, c_dst)
                constraints.setdefault((low, high), []).append(
                    (c_src == low, code)
                )
        self.cand: List[Tuple[int, ...]] = []
        self.cand_sets: List[frozenset] = []
        self.empty = False
        for cls, block in enumerate(self.blocks):
            members = None
            for var in block:
                var_cand = candidates[var]
                members = (
                    set(var_cand) if members is None
                    else members & var_cand
                )
            codes = self_codes.get(cls, ())
            kept = sorted(
                a for a in members
                if all(edge_ok(a, a, code) for code in codes)
            )
            self.cand.append(tuple(kept))
            self.cand_sets.append(frozenset(kept))
            if not kept:
                self.empty = True

        # Condensed undirected adjacency; cyclic quotients (per
        # component, #condensed edges ≠ #classes − 1) invalidate the
        # plan unless their candidates are already empty.
        self.adj: List[List[Tuple[int, Tuple[Tuple[bool, int], ...]]]] = [
            [] for _ in self.blocks
        ]
        for (low, high), cons in constraints.items():
            cons_low = tuple(cons)
            cons_high = tuple((not from_low, code) for from_low, code in cons)
            self.adj[low].append((high, cons_low))
            self.adj[high].append((low, cons_high))

        self.components: List[Tuple[int, ...]] = []
        self.comp_of: Dict[int, int] = {}
        seen: set = set()
        for start in range(len(self.blocks)):
            if start in seen:
                continue
            comp = [start]
            seen.add(start)
            queue = [start]
            while queue:
                cls = queue.pop()
                for nbr, _ in self.adj[cls]:
                    if nbr not in seen:
                        seen.add(nbr)
                        comp.append(nbr)
                        queue.append(nbr)
            comp.sort()
            for cls in comp:
                self.comp_of[cls] = len(self.components)
            self.components.append(tuple(comp))

    def is_forest(self) -> bool:
        """Whether every component's condensed graph is a tree."""
        num_edges = sum(len(nbrs) for nbrs in self.adj) // 2
        return num_edges == len(self.blocks) - len(self.components)


class FactorisedPlan:
    """The compiled elimination plan for one ``(pattern, snapshot)`` pair.

    Built from the matcher's pruned candidate sets (index space).  Use
    :func:`build_plan`, which returns ``None`` when the pattern does not
    factorise — too many variables, or some reachable quotient is
    cyclic.  Candidate restriction (pivot pinning) enters per query via
    ``restrict`` — a ``variable → node index`` dict; every public method
    is a pure function of ``(plan, restrict)``.
    """

    def __init__(
        self,
        pattern: GraphPattern,
        snapshot: GraphSnapshot,
        quotients: List[_Quotient],
    ) -> None:
        self.pattern = pattern
        self.snapshot = snapshot
        self.quotients = quotients
        self.variables = tuple(pattern.variables)

    # ------------------------------------------------------------------
    # per-query candidate restriction
    # ------------------------------------------------------------------
    def _restricted(
        self, quotient: _Quotient, restrict: Optional[Dict[Variable, int]]
    ) -> Optional[List[Tuple[int, ...]]]:
        """Class candidate lists under ``restrict`` (``None`` if empty)."""
        if not restrict:
            if quotient.empty:
                return None
            return list(quotient.cand)
        cand = []
        for cls, block in enumerate(quotient.blocks):
            pins = {restrict[var] for var in block if var in restrict}
            if not pins:
                members = quotient.cand[cls]
            elif len(pins) > 1:
                return None  # merged block pinned to two distinct nodes
            else:
                # repro-lint: disable=RPL001 -- pins is a singleton here (len>1 returned above), so the pick is deterministic
                pin = next(iter(pins))
                members = (pin,) if pin in quotient.cand_sets[cls] else ()
            if not members:
                return None
            cand.append(members)
        return cand

    # ------------------------------------------------------------------
    # the elimination passes
    # ------------------------------------------------------------------
    def _down_pass(self, quotient, root, cand, ops, annotate=None):
        """Bottom-up messages of the component rooted at ``root``.

        Returns ``down[root]`` — per root candidate, the number of
        homomorphisms of the root's component that map the root class
        there.  With ``annotate`` (a class id plus a per-candidate
        profile function), the counts along the unique subtree holding
        that class are dicts ``profile → count`` instead of ints; at
        most one factor per product is a dict, so the pass stays linear.
        """
        snapshot = self.snapshot
        neighbour_pool = snapshot.neighbour_pool
        edge_ok = snapshot.edge_ok
        ann_cls, profile = annotate if annotate is not None else (None, None)

        # BFS rooting (components hold ≤ MAX_VARS classes).
        parent: Dict[int, int] = {root: -1}
        order = [root]
        queue = [root]
        while queue:
            cls = queue.pop()
            for nbr, _ in quotient.adj[cls]:
                if nbr not in parent:
                    parent[nbr] = cls
                    order.append(nbr)
                    queue.append(nbr)
        children: Dict[int, list] = {cls: [] for cls in order}
        for cls in order:
            if parent[cls] != -1:
                for nbr, cons in quotient.adj[parent[cls]]:
                    if nbr == cls:
                        children[parent[cls]].append((cls, cons))
                        break

        down: Dict[int, Dict[int, object]] = {}
        for cls in reversed(order):
            table: Dict[int, object] = {}
            members = cand[cls]
            ops[0] += len(members)
            annotated_here = cls == ann_cls
            for a in members:
                value: object = 1
                for child, cons in children[cls]:
                    child_table = down[child]
                    from_parent, code = cons[0]
                    pool = neighbour_pool(a, code, from_parent)
                    ops[0] += len(pool)
                    total: object = 0
                    for b in pool:
                        entry = child_table.get(b)
                        if entry is None:
                            continue
                        if all(
                            edge_ok(a, b, c) if fp else edge_ok(b, a, c)
                            for fp, c in cons[1:]
                        ):
                            total = _vadd(total, entry)
                    if not total:
                        value = 0
                        break
                    value = _vmul(value, total)
                if not value:
                    continue
                if annotated_here:
                    value = {profile(a): value}
                table[a] = value
            down[cls] = table
        return down[root]

    def _component_roots(self, quotient, cand, ops):
        """Per component: ``(total, marginal-by-class)`` via re-rooting.

        ``marginal[cls][a]`` is the number of homomorphisms of the
        class's *component* mapping ``cls`` to ``a`` — rooting the tree
        at the queried class makes the marginal simply its own down
        message (no up-pass needed at these sizes).
        """
        totals: List[int] = []
        marginals: Dict[int, Dict[int, int]] = {}
        for comp in quotient.components:
            total = None
            for cls in comp:
                root_table = self._down_pass(quotient, cls, cand, ops)
                marginals[cls] = root_table
                if total is None:
                    total = sum(root_table.values())
            totals.append(total or 0)
        return totals, marginals

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------
    def count(
        self,
        restrict: Optional[Dict[Variable, int]] = None,
        stats: Optional[MatchStats] = None,
    ) -> int:
        """Exact number of injective matches under ``restrict``."""
        ops = [0]
        total = 0
        for quotient in self.quotients:
            cand = self._restricted(quotient, restrict)
            if cand is None:
                continue
            product = 1
            for comp in quotient.components:
                root_table = self._down_pass(quotient, comp[0], cand, ops)
                comp_total = sum(root_table.values())
                if not comp_total:
                    product = 0
                    break
                product *= comp_total
            total += quotient.weight * product
        if stats is not None:
            stats.steps += ops[0]
        return total

    def marginals(
        self,
        restrict: Optional[Dict[Variable, int]] = None,
        stats: Optional[MatchStats] = None,
    ) -> Tuple[int, Dict[Variable, Dict[int, int]]]:
        """``(count, per-variable injective count vectors)``.

        ``marginals[var][idx]`` is the exact number of injective matches
        mapping ``var`` to node index ``idx`` (entries with positive
        counts only) — the per-pivot count vector pivoted workloads
        aggregate.
        """
        ops = [0]
        count = 0
        inj: Dict[Variable, Counter] = {
            var: Counter() for var in self.variables
        }
        for quotient in self.quotients:
            cand = self._restricted(quotient, restrict)
            if cand is None:
                continue
            totals, by_class = self._component_roots(quotient, cand, ops)
            if not all(totals):
                continue
            full = 1
            for total in totals:
                full *= total
            count += quotient.weight * full
            others = [full // total for total in totals]
            for var in self.variables:
                cls = quotient.var_class[var]
                scale = quotient.weight * others[quotient.comp_of[cls]]
                bucket = inj[var]
                for a, hom in by_class[cls].items():
                    bucket[a] += scale * hom
        if stats is not None:
            stats.steps += ops[0]
        return count, {
            var: {a: n for a, n in sorted(bucket.items()) if n > 0}
            for var, bucket in inj.items()
        }

    def evidence(
        self,
        graph,
        restrict: Optional[Dict[Variable, int]] = None,
        stats: Optional[MatchStats] = None,
    ):
        """``(count, EvidenceAggregate)`` — identical to folding every
        injective match, computed from the marginal count vectors.

        ``graph`` supplies node attributes (snapshots index structure
        only); it may be the full graph or any block containing the
        candidates.
        """
        from ..core.discovery import EvidenceAggregate

        count, inj = self.marginals(restrict, stats=stats)
        aggregate = EvidenceAggregate()
        aggregate.count = count
        node_ids = self.snapshot.node_ids
        many = EvidenceAggregate.MANY
        for var in self.variables:
            counter = None
            for a, matched in inj[var].items():
                node_attrs = graph.attrs(node_ids[a])
                if not node_attrs:
                    continue
                if counter is None:
                    counter = aggregate.attrs.setdefault(var, Counter())
                for attr, value in node_attrs.items():
                    counter[attr] += matched
                    key = (var, attr)
                    current = aggregate.values.get(key, ())
                    if current == ():
                        aggregate.values[key] = (value,)
                    elif current is not many and current[0] != value:
                        aggregate.values[key] = many
        return count, aggregate

    # ------------------------------------------------------------------
    # dependency tallies
    # ------------------------------------------------------------------
    def supports_tallies(self, deps) -> bool:
        """Whether every candidate's literals span at most two variables."""
        return all(
            len(_involved_vars(lhs, rhs)) <= 2 for lhs, rhs in deps
        )

    def dependency_tallies(
        self,
        graph,
        deps,
        restrict: Optional[Dict[Variable, int]] = None,
        stats: Optional[MatchStats] = None,
    ) -> Optional[List[Tuple[int, int]]]:
        """``(supported, satisfied)`` per candidate, or ``None``.

        Single-variable candidates (constant rules) read the marginal
        count vectors; two-variable candidates read an injective joint
        *profile table* — the distribution of the referenced attribute
        values over the variable pair, computed by a profile-annotated
        elimination pass per quotient.  ``None`` signals the caller to
        enumerate instead: a candidate spans more than two variables, or
        an attribute value is unhashable (profile tables key on values).
        """
        if not self.supports_tallies(deps):
            return None
        ops = [0]
        node_ids = self.snapshot.node_ids
        count, inj = self.marginals(restrict, stats=None)

        # Which attributes each variable pair's profiles must carry.
        pair_attrs: Dict[Tuple[Variable, Variable], set] = {}
        for lhs, rhs in deps:
            involved = _involved_vars(lhs, rhs)
            if len(involved) == 2:
                pair = tuple(sorted(involved))
                bucket = pair_attrs.setdefault(pair, set())
                for literal in lhs + rhs:
                    bucket.update(_literal_attrs(literal))
        try:
            pair_tables = {
                pair: self._pair_table(
                    graph, pair, tuple(sorted(attrs)), restrict, ops
                )
                for pair, attrs in pair_attrs.items()
            }
        except TypeError:
            return None  # unhashable attribute value in a profile key

        out: List[Tuple[int, int]] = []
        for lhs, rhs in deps:
            involved = sorted(_involved_vars(lhs, rhs))
            if not involved:
                supported = count
                satisfied = count
            elif len(involved) == 1:
                var = involved[0]
                supported = satisfied = 0
                for a, matched in inj[var].items():
                    values = {var: graph.attrs(node_ids[a])}
                    if not _profile_satisfies(values, lhs):
                        continue
                    supported += matched
                    if _profile_satisfies(values, rhs):
                        satisfied += matched
            else:
                pair = tuple(involved)
                attrs = tuple(sorted(pair_attrs[pair]))
                supported = satisfied = 0
                for (p1, p2), matched in pair_tables[pair].items():
                    values = {
                        pair[0]: dict(zip(attrs, p1)),
                        pair[1]: dict(zip(attrs, p2)),
                    }
                    if not _profile_satisfies(values, lhs):
                        continue
                    supported += matched
                    if _profile_satisfies(values, rhs):
                        satisfied += matched
            out.append((supported, satisfied))
        if stats is not None:
            stats.steps += ops[0]
        return out

    def _pair_table(self, graph, pair, attrs, restrict, ops):
        """Injective joint profile distribution of a variable pair.

        ``table[(profile(v1), profile(v2))]`` = number of injective
        matches whose images of ``(v1, v2)`` carry exactly those
        attribute values (``_MISSING`` marking absence) — Möbius-summed
        over quotients like everything else.  Per quotient the classes
        of the pair are either merged (read the diagonal off the
        marginal), in one component (one profile-annotated pass rooted
        at ``v2``'s class), or in different components (outer product of
        per-component profile marginals).
        """
        v1, v2 = pair
        node_ids = self.snapshot.node_ids

        def profile(a):
            node_attrs = graph.attrs(node_ids[a])
            return tuple(
                node_attrs.get(attr, _MISSING) for attr in attrs
            )

        table: Counter = Counter()
        for quotient in self.quotients:
            cand = self._restricted(quotient, restrict)
            if cand is None:
                continue
            totals, by_class = self._component_roots(quotient, cand, ops)
            if not all(totals):
                continue
            full = 1
            for total in totals:
                full *= total
            others = [full // total for total in totals]
            c1, c2 = quotient.var_class[v1], quotient.var_class[v2]
            weight = quotient.weight
            if c1 == c2:
                scale = weight * others[quotient.comp_of[c1]]
                for a, hom in by_class[c1].items():
                    prof = profile(a)
                    table[(prof, prof)] += scale * hom
            elif quotient.comp_of[c1] == quotient.comp_of[c2]:
                root_table = self._down_pass(
                    quotient, c2, cand, ops, annotate=(c1, profile)
                )
                scale = weight * others[quotient.comp_of[c2]]
                for b, by_profile in root_table.items():
                    prof2 = profile(b)
                    for prof1, hom in by_profile.items():
                        table[(prof1, prof2)] += scale * hom
            else:
                comp1, comp2 = quotient.comp_of[c1], quotient.comp_of[c2]
                scale = weight * full // (totals[comp1] * totals[comp2])
                prof1_marg: Counter = Counter()
                for a, hom in by_class[c1].items():
                    prof1_marg[profile(a)] += hom
                prof2_marg: Counter = Counter()
                for b, hom in by_class[c2].items():
                    prof2_marg[profile(b)] += hom
                for prof1, hom1 in prof1_marg.items():
                    for prof2, hom2 in prof2_marg.items():
                        table[(prof1, prof2)] += scale * hom1 * hom2
        return {key: n for key, n in table.items() if n}


def _vadd(x, y):
    """Add two down-pass values (ints, or at most profile dicts)."""
    if isinstance(x, dict) or isinstance(y, dict):
        if not isinstance(x, dict):
            if x:
                raise AssertionError("mixed scalar/profile messages")
            return y
        if not isinstance(y, dict):
            if y:
                raise AssertionError("mixed scalar/profile messages")
            return x
        merged = dict(x)
        for key, value in y.items():
            merged[key] = merged.get(key, 0) + value
        return merged
    return x + y


def _vmul(x, y):
    """Multiply down-pass values (at most one operand is a profile dict)."""
    if isinstance(x, dict):
        return {key: value * y for key, value in x.items()}
    if isinstance(y, dict):
        return {key: value * x for key, value in y.items()}
    return x * y


def _involved_vars(lhs, rhs) -> set:
    out: set = set()
    for literal in lhs + rhs:
        var = getattr(literal, "var", None)
        if var is not None:
            out.add(var)
        else:
            out.add(literal.var1)
            out.add(literal.var2)
    return out


def _literal_attrs(literal):
    attr = getattr(literal, "attr", None)
    if attr is not None:
        return (attr,)
    return (literal.attr1, literal.attr2)


def _profile_satisfies(values: Dict[Variable, Dict], literals) -> bool:
    """Literal satisfaction over attribute-value profiles.

    Mirrors :func:`repro.core.satisfaction.match_satisfies_literal`
    exactly: a referenced attribute must be present and equal.
    """
    for literal in literals:
        var = getattr(literal, "var", None)
        if var is not None:
            value = values[var].get(literal.attr, _MISSING)
            if value is _MISSING or value != literal.const:
                return False
        else:
            value1 = values[literal.var1].get(literal.attr1, _MISSING)
            if value1 is _MISSING:
                return False
            value2 = values[literal.var2].get(literal.attr2, _MISSING)
            if value2 is _MISSING or value1 != value2:
                return False
    return True


def build_plan(
    pattern: GraphPattern,
    snapshot: Optional[GraphSnapshot],
    candidates: Dict[Variable, set],
) -> Optional[FactorisedPlan]:
    """Compile a :class:`FactorisedPlan`, or ``None`` if not factorisable.

    ``candidates`` are the matcher's pruned per-variable candidate sets
    in snapshot index space.  Pruning is sound here: a candidate set is
    a *necessary* condition on matches, the elimination checks every
    edge exactly, and the Möbius identity holds under any consistent
    per-variable restriction — so over-approximation never changes the
    result, it only costs work.

    Rejected (→ enumeration): no snapshot (legacy backend), more than
    :data:`MAX_VARS` variables, or any quotient with non-empty
    candidates whose condensed graph is cyclic — including the trivial
    case of a cyclic pattern itself (the identity partition).
    """
    if snapshot is None:
        return None
    variables = pattern.variables
    if not variables or len(variables) > MAX_VARS:
        return None
    quotients = []
    for blocks in _set_partitions(variables):
        quotient = _Quotient(snapshot, pattern, candidates, blocks)
        if quotient.empty:
            continue  # contributes 0 under any restriction
        if not quotient.is_forest():
            return None
        quotients.append(quotient)
    return FactorisedPlan(pattern, snapshot, quotients)
