"""The session layer: stateful, warm, repeated GFD validation.

The paper's setting is *repeated* validation — a fixed Σ checked again and
again over a graph that keeps evolving and a fragmentation that rarely
changes.  The stateless entry points (:func:`~repro.parallel.repval.
rep_val`, :func:`~repro.parallel.disval.dis_val`, :func:`~repro.core.
validation.det_vio`) re-pay every fixed cost per call: pool start-up,
shard shipping, workload estimation, block materialisation, snapshot
construction.  :class:`ValidationSession` owns all of that state and
amortises it across calls:

* a **persistent worker pool** — one
  :class:`~repro.parallel.executors.MultiprocessExecutor` started lazily
  on the first process-backed run and reused until :meth:`close`; plan
  slots are pinned to worker processes, so a warm run talks to the same
  PIDs;
* **warm shard caches** — each worker process keeps its resident share
  of the graph between runs (keyed by ``(run_epoch, worker_id)``); a
  :class:`~repro.parallel.executors.ShardCache` on the coordinator
  computes the block-share *delta* when consecutive runs reuse a
  fragmentation, so an unchanged slot ships nothing at all;
* a **shared block materialiser** — simulated-backend runs reuse
  materialised blocks (with per-run stats so cluster reports stay
  comparable, see :meth:`~repro.parallel.engine.BlockMaterialiser.
  take_stats`);
* a **workload cache** — ``W(Σ, G)`` is recomputed only when the graph's
  structural version (or the fragmentation) changes; the simulated
  planning costs are still charged in full, so warm and cold runs report
  identical :class:`~repro.parallel.cluster.ClusterReport`s — wall-clock
  is what warmth buys, not different figures;
* **delta-maintained violations** — :meth:`update` routes graph
  mutations through :class:`~repro.core.incremental.IncrementalValidator`
  (on the delta-maintained snapshot backend), reconciling the maintained
  violation set with full runs, and forwards the ops to resident worker
  shards.

The stateless API is now a facade: ``rep_val``/``dis_val`` construct a
throwaway (non-persistent) session per call, so they keep working
verbatim and produce identical results by construction.

Contract: route every graph mutation through :meth:`update` (the same
rule :class:`IncrementalValidator` imposes).  Structural out-of-band
mutations are detected via the graph version and degrade gracefully to
cold behaviour; attribute-only out-of-band edits are undetectable and
would leave worker shards stale.

Example::

    from repro import ValidationSession

    with ValidationSession(graph, sigma, executor="process", processes=4) as s:
        first = s.validate(n=4)           # cold: pool starts, shards ship
        again = s.validate(n=4)           # warm: zero shipping, same PIDs
        assert again.shipping.reused > 0 and again.shipping.shipped_nodes == 0
        s.update([("edge+", "au", "sydney", "capital")])   # incremental
        third = s.validate(n=4)           # delta-shipped, still exact
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .core.discovery import (
    DEFAULT_SAMPLE_SIZE,
    DiscoveredGFD,
    EvidenceAggregate,
    candidate_dependencies,
    candidate_patterns,
    canonical_matches,
    count_dependency,
    probe_gfds,
    select_rules,
)
from .core.gfd import GFD
from .core.incremental import IncrementalValidator, UpdateDiff, apply_updates
from .core.validation import Violation, det_vio
from .graph.graph import PropertyGraph
from .graph.partition import Fragmentation
from .matching.factorised import EVAL_MODES
from .parallel.assignment import (
    balance_only_assign,
    bicriteria_assign,
    random_assign,
)
from .parallel.balancing import lpt_partition, random_partition
from .parallel.cluster import ClusterReport, CostModel, SimulatedCluster
from .parallel.disval import _charge_data_shipment
from .parallel.engine import (
    BlockMaterialiser,
    MaterialiserStats,
    ValidationRun,
    run_assignment,
    run_units,
)
from .parallel.executors import (
    EXECUTORS,
    MATCH_STORE_BUDGET,
    SHIP_MODES,
    MatchStore,
    MatchStoreStats,
    MultiprocessExecutor,
    ShardCache,
    ShippingStats,
    next_epoch,
    resolve_executor,
    shm_available,
)
from .parallel.faults import FaultPolicy
from .parallel.multiquery import (
    GroupMember,
    SharedGroup,
    build_shared_groups,
    singleton_groups,
)
from .parallel.repval import SPLIT_FACTOR
from .parallel.skew import split_oversized
from .parallel.workload import WorkUnit, estimate_workload


#: shard-cache identity of the session's own rule set — a warm worker slot
#: that last ran a discovery phase (probe or mined Σ) reships Σ (and only
#: Σ) on the next base validation, and vice versa.
_BASE_SIGMA_KEY = "sigma:base"


@dataclass
class DiscoveryPhase:
    """One phase of a session-backed discovery run.

    Discovery executes as (up to) three plans over the parallel engine —
    ``enumerate`` (pivoted match enumeration per isomorphism group, plus
    the capped-pattern match fetch when the fallback engages), ``count``
    (support/confidence tallies for the proposed dependencies) and
    ``confirm`` (validation of the mined Σ) — each reported exactly
    like a :class:`~repro.parallel.engine.ValidationRun`: the simulated
    cluster's cost figures plus what the warm machinery actually did
    (``shipping`` on process runs, ``cache`` on simulated ones).

    ``wall_seconds`` is the phase's measured wall-clock (planning,
    execution and result folding); ``match_store`` records the resident
    match-store activity — on a warm pool the ``count`` and ``confirm``
    phases replay what ``mine`` enumerated, showing up here as
    ``misses == 0`` with ``hits > 0``.  ``vf2_units`` counts the units
    that actually ran a VF2 enumeration — zero across ``enumerate`` and
    ``count`` when every candidate pattern evaluated factorised (the
    default for the acyclic patterns discovery proposes).
    """

    phase: str
    report: ClusterReport
    num_units: int
    executor: str
    shipping: Optional[ShippingStats] = None
    cache: Optional[MaterialiserStats] = None
    wall_seconds: float = 0.0
    match_store: Optional[MatchStoreStats] = None
    vf2_units: int = 0

    @property
    def parallel_time(self) -> float:
        """Convenience alias for ``report.parallel_time``."""
        return self.report.parallel_time


@dataclass
class DiscoveryRun:
    """The result of :meth:`ValidationSession.discover`.

    ``rules`` is the mined set — identical (rules, names, supports,
    confidences) to serial :func:`~repro.core.discovery.discover_gfds`
    with the same parameters, whatever the executor or worker count.
    ``violations`` is the mined-Σ confirmation pass's result (``None``
    when confirmation was skipped or nothing was mined).  A rule mined
    at confidence 1.0 can appear in it only when its pattern's match set
    was capped at ``max_matches`` — its name is then in
    ``capped_rules``, because support/confidence describe the canonical
    counted subset while confirmation validates *every* match.  For
    uncapped rules, confidence 1.0 guarantees absence from
    ``violations``.
    """

    rules: List[DiscoveredGFD]
    phases: List[DiscoveryPhase]
    num_patterns: int
    num_proposals: int
    executor: str
    violations: Optional[Set[Violation]] = None
    #: names of mined rules whose pattern hit the ``max_matches`` cap
    capped_rules: frozenset = frozenset()

    @property
    def sigma(self) -> List[GFD]:
        """The mined rules as a plain rule set."""
        return [mined.gfd for mined in self.rules]

    def phase(self, name: str) -> Optional[DiscoveryPhase]:
        """The named phase (``enumerate``/``count``/``confirm``), if run."""
        for phase in self.phases:
            if phase.phase == name:
                return phase
        return None


class ValidationSession:
    """A long-lived validation context for one ``(graph, Σ)`` pair.

    ``executor`` and ``processes`` set the session-wide defaults
    (overridable per :meth:`validate` call); ``ship_mode`` fixes how the
    session's process runs ship full shards (``"pickle"`` blobs,
    ``"shm"`` zero-copy shared-memory arenas, or size-based ``"auto"`` —
    see the shard plane in ``parallel/executors.py``).
    ``persistent=True`` (the
    default) keeps the process pool and worker shard caches alive across
    runs; the stateless facade uses ``persistent=False`` throwaway
    sessions, which behave exactly like the pre-session code paths.

    Use as a context manager (or call :meth:`close`) so the pool is torn
    down deterministically.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        sigma: Sequence[GFD],
        executor: str = "auto",
        processes: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
        persistent: bool = True,
        match_store_budget: int = MATCH_STORE_BUDGET,
        ship_mode: str = "auto",
        fault_policy: Optional["FaultPolicy"] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if processes is not None and processes < 1:
            raise ValueError("need at least one process")
        if match_store_budget < 0:
            raise ValueError("match_store_budget must be >= 0")
        if ship_mode not in SHIP_MODES:
            raise ValueError(
                f"unknown ship_mode {ship_mode!r}; expected one of {SHIP_MODES}"
            )
        if ship_mode == "shm" and not shm_available():
            raise ValueError(
                "ship_mode='shm' requested but shared memory does not work "
                "on this platform; use 'pickle' or 'auto'"
            )
        if fault_policy is not None and not isinstance(
            fault_policy, FaultPolicy
        ):
            raise TypeError(
                "fault_policy must be a FaultPolicy (or None for the "
                "defaults, overridable via REPRO_FAULT_PLAN)"
            )
        self.graph = graph
        self.sigma = list(sigma)
        self.executor = executor
        self.processes = processes
        #: how process-backed runs ship full shards — ``"pickle"``
        #: (portable blobs over the pipe), ``"shm"`` (zero-copy
        #: shared-memory arenas) or ``"auto"`` (shm for large shards when
        #: available; see ``parallel/executors.py``).
        self.ship_mode = ship_mode
        #: supervision knobs for process-backed runs — retry budget,
        #: backoff, heartbeat cadence, unit deadline, degrade floor (and
        #: optionally an injection plan); ``None`` resolves to the
        #: defaults plus any ``REPRO_FAULT_PLAN`` environment plan at
        #: run time (see ``parallel/faults.py``).
        self.fault_policy = fault_policy
        self.cost_model = cost_model
        self.persistent = persistent
        #: matches retained per resident match store (worker-side on the
        #: process backend, coordinator-side on the simulated one);
        #: ``0`` disables resident-match replay entirely.
        self.match_store_budget = match_store_budget
        self._epoch = next_epoch("session")
        self._pool: Optional[MultiprocessExecutor] = None
        self._shard_cache = ShardCache()
        self._materialiser: Optional[BlockMaterialiser] = None
        self._materialiser_version = -1
        self._match_store: Optional[MatchStore] = None
        self._match_store_version = -1
        self._units_cache: Dict[Tuple, List[WorkUnit]] = {}
        # (patterns, probes, groups, units) per mining parameterisation —
        # warm repeated discover() calls reuse pattern objects and the
        # estimated workload exactly like _units_cache does for Σ.
        self._mining_cache: Dict[Tuple, Tuple] = {}
        self._incremental: Optional[IncrementalValidator] = None
        self._violations: Optional[Set[Violation]] = None
        # graph version the maintained violation set was computed against;
        # a mismatch means an out-of-band structural mutation happened.
        self._violations_version = -1
        # last (fragmentation fingerprint, graph version) whose owner map
        # was verified total — skips the O(|V|) orphan rescan on warm
        # fragmented runs over an edge-only-stale fragmentation.
        self._frag_checked: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ValidationSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down and drop warm state (idempotent).

        The session stays usable — the next process-backed run simply
        starts cold again.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._shard_cache.invalidate()
        self._materialiser = None
        self._match_store = None
        self._units_cache.clear()
        self._mining_cache.clear()

    def worker_pids(self) -> List[int]:
        """PIDs of the persistent pool (empty before the first process run)."""
        return self._pool.worker_pids() if self._pool is not None else []

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(
        self,
        n: Optional[int] = None,
        fragmentation: Optional[Fragmentation] = None,
        assignment: Optional[str] = None,
        optimize: bool = True,
        split_threshold: Optional[int] = None,
        seed: int = 0,
        executor: Optional[str] = None,
        processes: Optional[int] = None,
    ) -> ValidationRun:
        """Run one parallel validation, reusing every warm resource.

        Without ``fragmentation`` this is the replicated setting
        (``repVal``; ``n`` defaults to ``processes`` or 1, ``assignment``
        to ``"balanced"``).  With one, the fragmented setting (``disVal``;
        ``n`` comes from the fragmentation, ``assignment`` defaults to
        ``"bicriteria"``).  All remaining options mirror the stateless
        entry points, which delegate here.

        The simulated cost figures are charged identically on warm and
        cold runs (warmth is a wall-clock win, not a reporting change);
        the returned run's ``shipping``/``cache`` fields record what the
        warm machinery actually did.
        """
        executor = executor if executor is not None else self.executor
        processes = processes if processes is not None else self.processes
        if fragmentation is not None:
            if n is not None and n != fragmentation.n:
                raise ValueError(
                    "n is implied by the fragmentation in the fragmented "
                    f"setting (got n={n} vs {fragmentation.n} fragments)"
                )
            run = self._validate_fragmented(
                fragmentation, assignment or "bicriteria", optimize,
                split_threshold, seed, executor, processes,
            )
        else:
            run = self._validate_replicated(
                n if n is not None else (processes or 1),
                assignment or "balanced", optimize, split_threshold, seed,
                executor, processes,
            )
        self._reconcile(run.violations)
        return run

    def detect(self) -> Set[Violation]:
        """Sequential ``detVio`` over the session's warm snapshot."""
        violations = det_vio(self.sigma, self.graph)
        self._reconcile(violations)
        return violations

    @property
    def violations(self) -> Set[Violation]:
        """The current ``Vio(Σ, G)`` (recomputed when stale or absent).

        An out-of-band *structural* mutation invalidates the maintained
        set (detected via the graph version, like every other warm
        resource); the next access recomputes from scratch.
        """
        if self._violations is None or (
            self._violations_version != self.graph._version
        ):
            return self.detect()
        if self._incremental is not None:
            return set(self._incremental.violations)
        return set(self._violations)

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def update(self, ops: Iterable[tuple]) -> UpdateDiff:
        """Apply graph updates through the incremental path.

        ``ops`` uses the :func:`~repro.core.incremental.apply_updates`
        format: ``("attr", node, attr, value)``, ``("edge+", src, dst,
        label)``, ``("edge-", src, dst, label)``, ``("node", node, label,
        attrs)``.  Violations are maintained incrementally (on the
        delta-applied snapshot backend — no full re-validation, no full
        re-index), and the ops are queued for the worker shard caches so
        the next process-backed run ships only deltas.

        Returns the batch's :class:`~repro.core.incremental.UpdateDiff`:
        iterating it yields the newly-introduced violations (the
        historical return), ``.removed`` holds the violations the batch
        resolved — callers no longer need to diff full sets themselves.

        Warm caches survive the batch via *targeted* invalidation: the
        shared block materialiser patches exactly the cached blocks the
        ops land in (``BlockMaterialiser.apply_ops``) and the resident
        match store drops exactly the entries a structural op touches
        (``MatchStore.apply_ops``) — everything else stays warm, so a
        session absorbing an update stream does O(|Δ|) maintenance work
        per batch instead of rebuilding its caches.  An empty ``ops``
        list is a true no-op: no cache activity, no version marks.
        """
        ops = list(ops)
        if not ops:
            return UpdateDiff()
        stale = (
            self._violations is not None
            and self._violations_version != self.graph._version
        )
        if self._incremental is None:
            self._incremental = IncrementalValidator(
                self.sigma,
                self.graph,
                backend="auto",
                violations=None if stale else self._violations,
            )
        elif stale:
            # An out-of-band structural mutation since the last reconcile:
            # the maintained set cannot be trusted as a seed.
            self._incremental.rebuild()
        diff = apply_updates(self._incremental, ops)
        for op in ops:
            self._shard_cache.record(op)
        self._shard_cache.mark_version(self.graph._version)
        if self._materialiser is not None:
            self._materialiser.apply_ops(ops)
            self._materialiser_version = self.graph._version
        if self._match_store is not None:
            self._match_store.apply_ops(ops)
            self._match_store_version = self.graph._version
        self._violations = set(self._incremental.violations)
        self._violations_version = self.graph._version
        return diff

    def _reconcile(self, violations: Set[Violation]) -> None:
        """Sync the maintained violation set with a full run's result."""
        if (
            self._incremental is not None
            and self._violations_version != self.graph._version
        ):
            # The version moved outside update(): the validator's cached
            # matchers predate the mutation (the run's violations are
            # fine — it recomputed; the matcher caches are not).
            self._incremental.invalidate_matchers()
        self._violations = set(violations)
        self._violations_version = self.graph._version
        if self._incremental is not None:
            self._incremental.violations = set(violations)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def discover(
        self,
        min_support: int = 5,
        min_confidence: float = 0.95,
        max_edges: int = 2,
        top_edges: int = 5,
        max_matches: int = 5000,
        max_attrs: int = 4,
        sample_size: Optional[int] = DEFAULT_SAMPLE_SIZE,
        seed: int = 0,
        n: Optional[int] = None,
        fragmentation: Optional[Fragmentation] = None,
        executor: Optional[str] = None,
        processes: Optional[int] = None,
        confirm: bool = True,
        eval_mode: str = "auto",
    ) -> DiscoveryRun:
        """Mine GFDs over the session's warm engine.

        Produces the *identical* mined rule set as serial
        :func:`~repro.core.discovery.discover_gfds` with the same
        parameters, but runs mining itself as work units over the
        parallel stack: candidate patterns are wrapped as probe GFDs and
        grouped by isomorphism (one enumeration per group serves every
        dependency candidate of every isomorphic pattern), units are
        weighed and balanced exactly like detection units, and the plan
        executes on the chosen backend.  On a persistent process pool
        the three phases — ``enumerate``, ``count``, ``confirm`` — run
        over the same plan, so the second and third hit warm
        worker-resident shards and ship *zero* block-shares (the
        confirmation pass ships only the mined Σ itself).

        Without ``fragmentation`` this is replicated-style mining (``n``
        worker slots, LPT-balanced); with one, fragmented-graph mining
        (``disVal``-style bi-criteria assignment over the fragments'
        block shares).  ``confirm=False`` skips the mined-Σ validation
        pass; otherwise ``DiscoveryRun.violations`` holds its result
        (an uncapped rule mined at confidence 1.0 can never appear in
        it — see :attr:`DiscoveryRun.capped_rules` for the cap caveat).

        ``eval_mode`` is threaded to every mine/count unit (see
        :func:`~repro.core.discovery.discover_gfds`): under ``"auto"``
        (default) the aggregate phases answer by factorised variable
        elimination — zero VF2 enumerations — whenever a unit's leader
        pattern factorises; witness-needing paths (the capped match
        fetch, the sampled fallback, confirmation) always enumerate.
        The mined rule set is eval-mode-invariant.
        """
        if eval_mode not in EVAL_MODES:
            raise ValueError(f"unknown eval mode {eval_mode!r}")
        if eval_mode == "factorised" and sample_size is not None:
            raise ValueError(
                "eval_mode='factorised' cannot honour an explicit "
                "evidence sample (sampling draws from materialised "
                "matches)"
            )
        executor = executor if executor is not None else self.executor
        processes = processes if processes is not None else self.processes
        graph = self.graph
        if fragmentation is not None:
            if n is not None and n != fragmentation.n:
                raise ValueError(
                    "n is implied by the fragmentation in the fragmented "
                    f"setting (got n={n} vs {fragmentation.n} fragments)"
                )
            self._check_fragmentation(fragmentation)
            workers = fragmentation.n
        else:
            workers = n if n is not None else (processes or 1)
            if workers < 1:
                raise ValueError("need at least one worker slot")

        patterns, probes, groups, units = self._mining_workload(
            max_edges, top_edges, fragmentation
        )
        probe_key = (
            "sigma:probe", graph._version, max_edges, top_edges,
            fragmentation.fingerprint() if fragmentation is not None else None,
        )
        phases: List[DiscoveryPhase] = []

        # ---- phase 1: enumerate — pivoted matches per isomorphism group.
        phase_started = time.perf_counter()
        cluster = SimulatedCluster(workers, self.cost_model)
        cluster.charge_estimation([unit.block_size for unit in units])
        if fragmentation is None:
            plan, _ = lpt_partition(units, workers)
            cluster.charge_partitioning(len(units))
            resolved = resolve_executor(executor, plan, processes)
            materialiser = (
                self._shared_materialiser() if resolved == "simulated"
                else None
            )
        else:
            cluster.charge_planning(len(units) * cluster.cost.estimate_cost)
            plan, _, _ = bicriteria_assign(units, workers)
            w = max(1, len(units))
            cluster.charge_planning(
                cluster.cost.partition_unit_cost * workers * w
                * math.log2(w + 1)
            )
            resolved = resolve_executor(executor, plan, processes)
            materialiser = self._shared_materialiser()
            _charge_data_shipment(
                probes, fragmentation, plan, cluster, materialiser
            )
        pool, shard_cache, epoch = self._process_backend(resolved, processes)
        match_store = (
            self._shared_match_store() if resolved == "simulated" else None
        )
        backend = dict(
            materialiser=materialiser, executor=resolved,
            processes=processes, pool=pool, shard_cache=shard_cache,
            epoch=epoch, sigma_key=probe_key, match_store=match_store,
            ship_mode=self.ship_mode, fault_policy=self.fault_policy,
        )
        # Mine units fold matches into mergeable evidence aggregates by
        # default — O(vars × attrs) per unit on the wire instead of
        # O(matches) — and deposit their enumerations in the resident
        # match store for the later phases to replay.  An explicit
        # seeded evidence sample needs the match lists themselves: that
        # is one of the two documented fallbacks to match shipping (the
        # other — a pattern whose ``max_matches`` cap bites — is
        # detected after merging and fetched below).
        mine_mode = "matches" if sample_size is not None else "aggregate"
        # The unit payload carries the cap so workers bound what they
        # materialise and ship (see engine._execute_mine).
        mine_plan = [
            [replace(unit, kind="mine", payload=(max_matches, mine_mode),
                     eval_mode=eval_mode)
             for unit in slot]
            for slot in plan
        ]
        mine_results = run_units(probes, graph, mine_plan, cluster, **backend)
        mine_shipping = pool.last_shipping if pool is not None else None
        mine_vf2 = _count_enumerations(mine_results)

        # Merge the units' evidence — worker aggregates in the common
        # path, match lists on the sampled fallback — and propose
        # dependencies, byte-identical to the serial reference.
        pattern_matches: Dict[int, List[dict]] = {}
        proposals: Dict[int, List[Tuple]] = {}
        capped: Dict[int, bool] = {}
        if mine_mode == "matches":
            raw_matches, raw_counts = _gather_match_lists(
                mine_plan, mine_results, range(len(patterns)), max_matches
            )
            for index, pattern in enumerate(patterns):
                matches = canonical_matches(
                    raw_matches[index], cap=max_matches
                )
                if len(matches) < min_support:
                    continue
                pattern_matches[index] = matches
                capped[index] = raw_counts[index] > max_matches
                proposals[index] = candidate_dependencies(
                    pattern, graph, matches,
                    max_attrs=max_attrs, sample_size=sample_size, seed=seed,
                )
        else:
            aggregates: Dict[int, EvidenceAggregate] = {
                index: EvidenceAggregate()
                for index in range(len(patterns))
            }
            for slot_units, slot_results in zip(mine_plan, mine_results):
                for unit, result in zip(slot_units, slot_results):
                    if result is None or result.payload is None:
                        continue  # folded into its slot's group carrier
                    _, _, agg_payload = result.payload
                    unit_agg = EvidenceAggregate.from_payload(agg_payload)
                    for member in unit.group.members:
                        aggregates[member.index].merge(
                            unit_agg.rename(member.iso)
                        )
            need_fetch: List[int] = []
            for index, pattern in enumerate(patterns):
                aggregate = aggregates[index]
                if min(aggregate.count, max_matches) < min_support:
                    continue
                if aggregate.count > max_matches:
                    # The cap bites: support/confidence (and proposal
                    # evidence) must cover exactly the canonical capped
                    # subset the serial reference counts — only the
                    # match lists themselves can answer that.
                    capped[index] = True
                    need_fetch.append(index)
                else:
                    capped[index] = False
                    proposals[index] = aggregate.propose(pattern, max_attrs)
            if need_fetch:
                # The capped fallback: re-request match lists for the
                # affected groups.  On a persistent pool the units
                # replay their resident enumerations (zero VF2, zero
                # block-shares); simulated runs replay the coordinator
                # store.  Identical deterministic steps are charged
                # either way, so reports stay backend-invariant.
                fetch_indices = frozenset(need_fetch)
                fetch_plan = [
                    [
                        replace(unit, kind="mine",
                                payload=(max_matches, "matches"),
                                eval_mode="enumerate")
                        for unit in slot
                        if any(member.index in fetch_indices
                               for member in unit.group.members)
                    ]
                    for slot in plan
                ]
                fetch_results = run_units(
                    probes, graph, fetch_plan, cluster, **backend
                )
                mine_vf2 += _count_enumerations(fetch_results)
                if pool is not None and mine_shipping is not None:
                    mine_shipping.merge(pool.last_shipping)
                raw_matches, _ = _gather_match_lists(
                    fetch_plan, fetch_results, need_fetch, max_matches
                )
                for index in need_fetch:
                    matches = canonical_matches(
                        raw_matches[index], cap=max_matches
                    )
                    pattern_matches[index] = matches
                    proposals[index] = candidate_dependencies(
                        patterns[index], graph, matches,
                        max_attrs=max_attrs, sample_size=sample_size,
                        seed=seed,
                    )
        num_proposals = sum(len(deps) for deps in proposals.values())
        phases.append(DiscoveryPhase(
            phase="enumerate",
            report=cluster.report(),
            num_units=len(units),
            executor=resolved,
            shipping=mine_shipping,
            cache=materialiser.take_stats() if materialiser else None,
            wall_seconds=time.perf_counter() - phase_started,
            match_store=_phase_store_stats(match_store, mine_shipping),
            vf2_units=mine_vf2,
        ))

        # ---- phase 2: count — support/confidence tallies as work units
        # over the same plan (warm shards: zero block-shares shipped).
        # A pattern whose match set was capped is tallied on the
        # coordinator instead (workers see every match, the cap selects a
        # canonical subset only the coordinator holds).
        group_payload: Dict[int, tuple] = {}
        for group in groups:
            member_payloads = []
            for member in group.members:
                deps = (
                    proposals.get(member.index, [])
                    if not capped.get(member.index, False)
                    else []
                )
                if not deps:
                    member_payloads.append(())
                elif mine_mode == "aggregate":
                    # Ship the recipe, not the candidates: workers
                    # re-derive the identical proposal list from the
                    # merged aggregate (engine.expand_count_payloads) —
                    # one compact aggregate per pattern on the wire
                    # instead of O(proposals) literal objects per slot.
                    member_payloads.append((
                        "derive",
                        tuple(patterns[member.index].variables),
                        aggregates[member.index].to_payload(),
                        max_attrs,
                    ))
                else:
                    # Sampled fallback: proposals came from an explicit
                    # seeded sample, not the aggregate — only the
                    # concrete candidate list reproduces them.
                    inverse = {v: k for k, v in member.iso.items()}
                    member_payloads.append(tuple(
                        (
                            tuple(l.rename(inverse) for l in lhs),
                            tuple(l.rename(inverse) for l in rhs),
                        )
                        for lhs, rhs in deps
                    ))
            group_payload[id(group)] = tuple(member_payloads)
        totals: Dict[int, List[List[int]]] = {
            index: [[0, 0] for _ in deps]
            for index, deps in proposals.items()
            if not capped[index]
        }
        count_plan = [
            [
                replace(unit, kind="count",
                        payload=group_payload[id(unit.group)],
                        eval_mode=eval_mode)
                for unit in slot
                if any(group_payload[id(unit.group)])
            ]
            for slot in plan
        ]
        if any(count_plan):
            phase_started = time.perf_counter()
            count_cluster = SimulatedCluster(workers, self.cost_model)
            count_results = run_units(
                probes, graph, count_plan, count_cluster, **backend
            )
            for slot_units, slot_results in zip(count_plan, count_results):
                for unit, result in zip(slot_units, slot_results):
                    if result is None:
                        continue
                    for member, member_counts in zip(
                        unit.group.members, result.payload
                    ):
                        tallies = totals.get(member.index)
                        if tallies is None:
                            continue
                        for pos, sup, sat in member_counts:
                            tallies[pos][0] += sup
                            tallies[pos][1] += sat
            count_shipping = pool.last_shipping if pool is not None else None
            phases.append(DiscoveryPhase(
                phase="count",
                report=count_cluster.report(),
                num_units=sum(len(slot) for slot in count_plan),
                executor=resolved,
                shipping=count_shipping,
                cache=materialiser.take_stats() if materialiser else None,
                wall_seconds=time.perf_counter() - phase_started,
                match_store=_phase_store_stats(match_store, count_shipping),
                vf2_units=_count_enumerations(count_results),
            ))

        # Threshold + naming in the serial reference's iteration order.
        selected = []
        for index, pattern in enumerate(patterns):
            deps = proposals.get(index)
            if not deps:
                continue
            if capped[index]:
                counts = [
                    count_dependency(graph, pattern_matches[index], lhs, rhs)
                    for lhs, rhs in deps
                ]
            else:
                counts = [tuple(tally) for tally in totals[index]]
            for (lhs, rhs), (supported, satisfied) in zip(deps, counts):
                selected.append((pattern, (lhs, rhs), supported, satisfied))
        rules = select_rules(selected, min_support, min_confidence)
        pattern_pos = {id(p): i for i, p in enumerate(patterns)}
        capped_rules = frozenset(
            mined.gfd.name
            for mined in rules
            if capped.get(pattern_pos[id(mined.gfd.pattern)], False)
        )

        # ---- phase 3: confirm — validate the mined Σ over the same plan
        # slots, so warm worker shards are hit again (only Σ travels).
        violations: Optional[Set[Violation]] = None
        if confirm and rules:
            violations, phase = self._confirm_mined(
                rules, patterns, probes, groups, plan, workers,
                backend, probe_key,
            )
            phases.append(phase)

        return DiscoveryRun(
            rules=rules,
            phases=phases,
            num_patterns=len(patterns),
            num_proposals=num_proposals,
            executor=resolved,
            violations=violations,
            capped_rules=capped_rules,
        )

    def _confirm_mined(
        self, rules, patterns, probes, groups, plan, workers,
        backend, probe_key,
    ) -> Tuple[Set[Violation], DiscoveryPhase]:
        """Validate the mined Σ by re-skinning the mining plan.

        Mined rules inherit their probes' patterns, pivots and blocks, so
        detection units are the mining units with a ``detect`` group of
        mined members — same slots, same block node sets.  Per-slot
        ``needed`` is therefore a subset of what mining left resident:
        the pass ships zero block-shares, only the mined Σ itself — and
        replays the resident enumerations the ``mine`` phase deposited
        (the store keys by pattern content, which the Σ swap preserves),
        so confirmation runs zero VF2 on warm blocks.  Probes prefix the
        shipped Σ so leader indices keep naming the enumerated pattern;
        dependency-free probes produce no violations.
        """
        mined = [mined_rule.gfd for mined_rule in rules]
        confirm_sigma = probes + mined
        pattern_pos = {id(pattern): i for i, pattern in enumerate(patterns)}
        mined_by_pattern: Dict[int, List[int]] = {}
        for offset, gfd in enumerate(mined):
            mined_by_pattern.setdefault(
                pattern_pos[id(gfd.pattern)], []
            ).append(len(probes) + offset)
        confirm_groups: Dict[int, SharedGroup] = {}
        for group in groups:
            members = []
            for member in group.members:
                inverse = {v: k for k, v in member.iso.items()}
                for sigma_index in mined_by_pattern.get(member.index, ()):
                    gfd = confirm_sigma[sigma_index]
                    members.append(GroupMember(
                        index=sigma_index,
                        iso=member.iso,
                        lhs=tuple(l.rename(inverse) for l in gfd.lhs),
                        rhs=tuple(l.rename(inverse) for l in gfd.rhs),
                    ))
            if members:
                confirm_groups[id(group)] = SharedGroup(
                    leader_index=group.leader_index, members=tuple(members)
                )
        confirm_plan = [
            [
                replace(unit, kind="detect", payload=None,
                        group=confirm_groups[id(unit.group)])
                for unit in slot
                if id(unit.group) in confirm_groups
            ]
            for slot in plan
        ]
        confirm_key = ("sigma:mined", probe_key, tuple(mined))
        phase_started = time.perf_counter()
        cluster = SimulatedCluster(workers, self.cost_model)
        results = run_units(
            confirm_sigma, self.graph, confirm_plan, cluster,
            **{**backend, "sigma_key": confirm_key},
        )
        violations: Set[Violation] = set()
        for slot_results in results:
            for result in slot_results:
                if result is not None:
                    violations |= result.violations
        pool = backend["pool"]
        materialiser = backend["materialiser"]
        match_store = backend["match_store"]
        shipping = pool.last_shipping if pool is not None else None
        phase = DiscoveryPhase(
            phase="confirm",
            report=cluster.report(),
            num_units=sum(len(slot) for slot in confirm_plan),
            executor=backend["executor"],
            shipping=shipping,
            cache=materialiser.take_stats() if materialiser else None,
            wall_seconds=time.perf_counter() - phase_started,
            match_store=_phase_store_stats(match_store, shipping),
            vf2_units=_count_enumerations(results),
        )
        return violations, phase

    def _mining_workload(
        self,
        max_edges: int,
        top_edges: int,
        fragmentation: Optional[Fragmentation],
    ) -> Tuple[List, List[GFD], List[SharedGroup], List[WorkUnit]]:
        """Candidate patterns + probe workload, cached like ``_units``.

        Cached per (graph version, mining parameters, fragmentation), so
        warm repeated ``discover()`` calls reuse the pattern objects, the
        isomorphism groups and the estimated units; the estimation cost
        is still charged to each run's cluster by the caller.
        """
        key = (
            self.graph._version, max_edges, top_edges,
            fragmentation.fingerprint() if fragmentation is not None else None,
        )
        entry = self._mining_cache.get(key)
        if entry is None:
            patterns = candidate_patterns(
                self.graph, max_edges=max_edges, top_edges=top_edges
            )
            probes = probe_gfds(patterns)
            groups = build_shared_groups(probes)
            units = estimate_workload(
                probes, self.graph, groups=groups,
                fragmentation=fragmentation,
            )
            entry = (patterns, probes, groups, units)
            self._mining_cache[key] = entry
            while len(self._mining_cache) > 2:
                self._mining_cache.pop(next(iter(self._mining_cache)))
        return entry

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _shared_materialiser(self) -> BlockMaterialiser:
        """The session-wide block cache, guarded by the graph version.

        Out-of-band *structural* mutations (not routed through
        :meth:`update`) drop every cached block, mirroring what
        ``ShardCache.sync`` does for worker shards — warm state is never
        trusted past a version the session did not witness.  (Attribute
        edits don't bump the version and must go through :meth:`update`.)
        """
        if self._materialiser is None:
            self._materialiser = BlockMaterialiser(self.graph)
            self._materialiser_version = self.graph._version
        elif self._materialiser_version != self.graph._version:
            self._materialiser.clear()
            self._materialiser_version = self.graph._version
        return self._materialiser

    def _shared_match_store(self) -> MatchStore:
        """The simulated backend's resident match store.

        The coordinator-side mirror of what worker processes keep next
        to their shard caches: populated by discovery's ``mine`` units,
        replayed by ``count``/``confirm``, version-guarded exactly like
        :meth:`_shared_materialiser` (a structural version the session
        did not witness drops every resident enumeration).
        """
        if self._match_store is None:
            self._match_store = MatchStore(self.match_store_budget)
            self._match_store_version = self.graph._version
        elif self._match_store_version != self.graph._version:
            self._match_store.clear()
            self._match_store_version = self.graph._version
        return self._match_store

    def _process_backend(self, resolved: str, processes: Optional[int]):
        """The (pool, shard_cache, epoch) triple for a process run.

        A per-call ``processes`` override that differs from the live
        pool's restarts the pool at the new size; the shard cache is
        invalidated with it, because slot→process pinning (``w % size``)
        changes with the size.
        """
        if resolved != "process" or not self.persistent:
            return None, None, None
        if (
            self._pool is not None
            and self._pool.running
            and processes != self._pool.processes
        ):
            self._pool.shutdown()
            self._shard_cache.invalidate()
            self._pool = None
        if self._pool is None:
            self._pool = MultiprocessExecutor(
                processes=processes,
                match_store_budget=self.match_store_budget,
                ship_mode=self.ship_mode,
                fault_policy=self.fault_policy,
            )
        self._pool.start()
        return self._pool, self._shard_cache, self._epoch

    def _units(
        self,
        cluster: SimulatedCluster,
        optimize: bool,
        fragmentation: Optional[Fragmentation] = None,
    ) -> List[WorkUnit]:
        """``W(Σ, G)``, cached per (graph version, grouping, fragmentation).

        The estimation cost is charged to ``cluster`` whether the units
        came from cache or not — warm runs report the same figures.
        """
        key = (
            self.graph._version,
            optimize,
            fragmentation.fingerprint() if fragmentation is not None else None,
        )
        units = self._units_cache.get(key)
        if units is None:
            groups = (
                build_shared_groups(self.sigma)
                if optimize
                else singleton_groups(self.sigma)
            )
            units = estimate_workload(
                self.sigma, self.graph, groups=groups,
                fragmentation=fragmentation,
            )
            # A few live entries, FIFO-bounded: alternating replicated/
            # fragmented runs (bench --repeat) stay warm, stale graph
            # versions age out instead of accumulating.
            self._units_cache[key] = units
            while len(self._units_cache) > 4:
                self._units_cache.pop(next(iter(self._units_cache)))
        cluster.charge_estimation([unit.block_size for unit in units])
        return units

    @staticmethod
    def _split(units, optimize, split_threshold):
        if not optimize:
            return units
        threshold = split_threshold
        if threshold is None:
            mean = (
                sum(u.block_size for u in units) / len(units) if units else 0.0
            )
            threshold = int(mean * SPLIT_FACTOR) or 0
        if threshold:
            units = split_oversized(units, threshold)
        return units

    def _validate_replicated(
        self, n, assignment, optimize, split_threshold, seed, executor,
        processes,
    ) -> ValidationRun:
        graph = self.graph
        cluster = SimulatedCluster(n, self.cost_model)
        units = self._units(cluster, optimize)
        units = self._split(units, optimize, split_threshold)

        if assignment == "balanced":
            plan, _ = lpt_partition(units, n)
        elif assignment == "random":
            plan, _ = random_partition(units, n, seed=seed)
        else:
            raise ValueError(f"unknown assignment strategy {assignment!r}")
        cluster.charge_partitioning(len(units))

        resolved = resolve_executor(executor, plan, processes)
        materialiser = (
            self._shared_materialiser() if resolved == "simulated" else None
        )
        pool, shard_cache, epoch = self._process_backend(resolved, processes)
        violations = run_assignment(
            self.sigma,
            graph,
            plan,
            cluster,
            materialiser=materialiser,
            executor=resolved,
            processes=processes,
            pool=pool,
            shard_cache=shard_cache,
            epoch=epoch,
            sigma_key=_BASE_SIGMA_KEY,
            ship_mode=self.ship_mode,
            fault_policy=self.fault_policy,
        )
        return ValidationRun(
            violations=violations,
            report=cluster.report(),
            num_units=len(units),
            algorithm=_rep_name(assignment, optimize),
            executor=resolved,
            shipping=pool.last_shipping if pool is not None else None,
            cache=materialiser.take_stats() if materialiser else None,
        )

    def _check_fragmentation(self, fragmentation: Fragmentation) -> None:
        """Reject fragmentations a fragmented run cannot trust.

        Edge-only staleness is tolerated exactly as the stateless API
        always did (fragment block-share records go mildly stale); an
        owner map that no longer covers the graph would crash deep
        inside workload estimation, so fail it clearly.  The scan result
        is cached per (fragmentation, version) so warm repeated runs pay
        it once.
        """
        graph = self.graph
        if fragmentation.graph is not graph:
            raise ValueError(
                "fragmentation was cut from a different graph than this "
                "session's"
            )
        check_key = (fragmentation.fingerprint(), graph._version)
        if (
            fragmentation.built_version != graph._version
            and self._frag_checked != check_key
        ):
            orphans = sum(
                1 for node in graph.nodes() if node not in fragmentation.owner
            )
            if orphans:
                raise ValueError(
                    f"fragmentation does not cover {orphans} node(s) added "
                    "since it was cut; re-cut it — e.g. hash_partition/"
                    "greedy_edge_cut_partition — before the next fragmented "
                    "validate()"
                )
            self._frag_checked = check_key

    def _validate_fragmented(
        self, fragmentation, assignment, optimize, split_threshold, seed,
        executor, processes,
    ) -> ValidationRun:
        graph = self.graph
        self._check_fragmentation(fragmentation)
        n = fragmentation.n
        cluster = SimulatedCluster(n, self.cost_model)
        units = self._units(cluster, optimize, fragmentation=fragmentation)
        # Partial units travel fragment → coordinator: one message per
        # fragment per GFD group, payload ∝ number of local candidates.
        cluster.charge_planning(len(units) * cluster.cost.estimate_cost)
        units = self._split(units, optimize, split_threshold)

        if assignment == "bicriteria":
            plan, _, _ = bicriteria_assign(units, n)
        elif assignment == "random":
            plan, _, _ = random_assign(units, n, seed=seed)
        elif assignment == "balance_only":
            plan, _, _ = balance_only_assign(units, n)
        else:
            raise ValueError(f"unknown assignment strategy {assignment!r}")
        # Bi-criteria assignment is the heavier coordinator phase:
        # O(n·|W|² log |W|) per Proposition 13, softened as in disval.py.
        w = max(1, len(units))
        cluster.charge_planning(
            cluster.cost.partition_unit_cost * n * w * math.log2(w + 1)
        )

        resolved = resolve_executor(executor, plan, processes)
        # One materialiser for both the shipment estimate and detection,
        # shared across the session's runs (warm blocks, per-run stats).
        materialiser = self._shared_materialiser()
        _charge_data_shipment(
            self.sigma, fragmentation, plan, cluster, materialiser
        )
        pool, shard_cache, epoch = self._process_backend(resolved, processes)
        violations = run_assignment(
            self.sigma,
            graph,
            plan,
            cluster,
            ship_partial_matches=True,
            materialiser=materialiser,
            executor=resolved,
            processes=processes,
            pool=pool,
            shard_cache=shard_cache,
            epoch=epoch,
            sigma_key=_BASE_SIGMA_KEY,
            ship_mode=self.ship_mode,
            fault_policy=self.fault_policy,
        )
        return ValidationRun(
            violations=violations,
            report=cluster.report(),
            num_units=len(units),
            algorithm=_dis_name(assignment, optimize),
            executor=resolved,
            shipping=pool.last_shipping if pool is not None else None,
            cache=materialiser.take_stats(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pool = "up" if self._pool is not None and self._pool.running else "down"
        return (
            f"ValidationSession(|Σ|={len(self.sigma)}, |G|={self.graph.size}, "
            f"executor={self.executor!r}, pool={pool})"
        )


def _count_enumerations(results) -> int:
    """Units of a phase that actually ran a VF2 enumeration.

    Replayed and factorised units report ``enumerated=False``, so this
    is exactly the phase's :attr:`DiscoveryPhase.vf2_units`.
    """
    return sum(
        1
        for slot in results
        for result in slot
        if result is not None and result.enumerated
    )


def _phase_store_stats(
    match_store: Optional[MatchStore], shipping: Optional[ShippingStats]
) -> Optional[MatchStoreStats]:
    """One phase's match-store activity, whichever backend ran it.

    Simulated runs read (and reset) the coordinator store's per-run
    slice; process runs report what the workers' resident stores did,
    already aggregated into the run's shipping record.
    """
    if match_store is not None:
        return match_store.take_stats()
    return shipping.match_store if shipping is not None else None


def _gather_match_lists(
    mine_plan, mine_results, indices, max_matches: int
) -> Tuple[Dict[int, List[dict]], Dict[int, int]]:
    """Union match-shipping mine payloads per candidate pattern.

    Gathers matches for the patterns named by ``indices`` only (pivot
    candidates partition the match space, so this is a disjoint union),
    translating leader-space matches into each member pattern's
    variables.  Accumulation is compacted to the canonical
    ``max_matches`` smallest once a bucket overflows the floor, so
    coordinator memory stays O(patterns × max_matches) — compacting to
    the n-smallest commutes with unioning more matches, so the final
    canonical selection is unchanged.  Returns ``(matches, totals)``;
    ``totals`` counts every match (pre-cap), which is what decides
    whether the ``max_matches`` cap bit.
    """
    compact_floor = max(2 * max_matches, 4096)
    raw_matches: Dict[int, List[dict]] = {index: [] for index in indices}
    raw_counts: Dict[int, int] = {index: 0 for index in raw_matches}
    for slot_units, slot_results in zip(mine_plan, mine_results):
        for unit, result in zip(slot_units, slot_results):
            if result is None:
                continue
            for position, member in enumerate(unit.group.members):
                bucket = raw_matches.get(member.index)
                if bucket is None:
                    continue
                if result.payload[0] == "shared":
                    # Leader-space matches: translate per member.
                    iso = member.iso
                    shared = result.payload[1]
                    bucket.extend(
                        {iso[var]: node for var, node in items}
                        for items in shared
                    )
                    raw_counts[member.index] += len(shared)
                else:  # "members": worker already translated + capped
                    _, total, per_member = result.payload
                    bucket.extend(
                        dict(items) for items in per_member[position]
                    )
                    raw_counts[member.index] += total
                if len(bucket) > compact_floor:
                    raw_matches[member.index] = canonical_matches(
                        bucket, cap=max_matches
                    )
    return raw_matches, raw_counts


def _rep_name(assignment: str, optimize: bool) -> str:
    if assignment == "random":
        return "repran"
    return "repVal" if optimize else "repnop"


def _dis_name(assignment: str, optimize: bool) -> str:
    if assignment == "random":
        return "disran"
    if assignment == "balance_only":
        return "disbal"
    return "disVal" if optimize else "disnop"
