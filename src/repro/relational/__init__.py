"""A minimal relational engine: the substrate for the BigDansing-style
baseline and for CFD validation over tuple-encoded relations."""

from .table import (
    EngineStats,
    Row,
    Table,
    cross_product,
    distinct,
    hash_join,
    project,
    rename,
    select,
)
from .encode import attribute_lookup, graph_to_tables

__all__ = [
    "EngineStats",
    "Row",
    "Table",
    "cross_product",
    "distinct",
    "hash_join",
    "project",
    "rename",
    "select",
    "attribute_lookup",
    "graph_to_tables",
]
