"""A minimal in-memory relational engine.

Two baselines need relations: the BigDansing-style comparator (which must
"represent graphs as tables and encode isomorphic functions beyond
relational query languages", Section 1) and CFD validation via the
two-SQL-queries approach (Section 5.1).  The engine is deliberately simple
— tables as lists of dict rows, hash joins, selections — and it counts the
rows each operator touches, giving a machine-independent cost measure to
compare against the native matcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

Row = Dict[str, Any]


@dataclass
class EngineStats:
    """Rows processed across operators — the relational cost measure."""

    rows_scanned: int = 0
    rows_joined: int = 0
    rows_output: int = 0

    @property
    def total(self) -> int:
        """Total row touches."""
        return self.rows_scanned + self.rows_joined + self.rows_output


class Table:
    """A named relation: a list of dict rows sharing a column set."""

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Optional[Iterable[Row]] = None) -> None:
        self.name = name
        self.columns = list(columns)
        self.rows: List[Row] = [dict(row) for row in (rows or [])]

    def insert(self, row: Row) -> None:
        """Append a row (missing columns become ``None``)."""
        self.rows.append({col: row.get(col) for col in self.columns})

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name}, cols={self.columns}, rows={len(self.rows)})"


def select(
    table: Table,
    predicate: Callable[[Row], bool],
    stats: Optional[EngineStats] = None,
) -> Table:
    """σ_predicate(table)."""
    stats = stats if stats is not None else EngineStats()
    out = Table(f"σ({table.name})", table.columns)
    for row in table.rows:
        stats.rows_scanned += 1
        if predicate(row):
            out.rows.append(row)
            stats.rows_output += 1
    return out


def project(
    table: Table,
    columns: Sequence[str],
    stats: Optional[EngineStats] = None,
) -> Table:
    """π_columns(table) (bag semantics)."""
    stats = stats if stats is not None else EngineStats()
    out = Table(f"π({table.name})", columns)
    for row in table.rows:
        stats.rows_scanned += 1
        out.rows.append({col: row.get(col) for col in columns})
        stats.rows_output += 1
    return out


def rename(table: Table, mapping: Dict[str, str]) -> Table:
    """ρ: rename columns (rows are rewritten; cheap at these scales)."""
    columns = [mapping.get(col, col) for col in table.columns]
    out = Table(f"ρ({table.name})", columns)
    for row in table.rows:
        out.rows.append({mapping.get(col, col): value for col, value in row.items()})
    return out


def hash_join(
    left: Table,
    right: Table,
    on: Sequence[Tuple[str, str]],
    stats: Optional[EngineStats] = None,
) -> Table:
    """Equi-join ``left ⋈ right`` on column pairs ``(left_col, right_col)``.

    Shared non-join columns from ``right`` are suffixed with the right
    table's name to keep rows well-formed.
    """
    stats = stats if stats is not None else EngineStats()
    left_cols = [pair[0] for pair in on]
    right_cols = [pair[1] for pair in on]

    index: Dict[Tuple, List[Row]] = {}
    for row in right.rows:
        stats.rows_scanned += 1
        key = tuple(row.get(col) for col in right_cols)
        index.setdefault(key, []).append(row)

    clash = {
        col for col in right.columns
        if col in left.columns and col not in right_cols
    }
    out_columns = list(left.columns) + [
        (f"{col}__{right.name}" if col in clash else col)
        for col in right.columns
        if col not in right_cols
    ]
    out = Table(f"({left.name}⋈{right.name})", out_columns)
    for row in left.rows:
        stats.rows_scanned += 1
        key = tuple(row.get(col) for col in left_cols)
        for match in index.get(key, ()):
            stats.rows_joined += 1
            merged = dict(row)
            for col, value in match.items():
                if col in right_cols:
                    continue
                merged[f"{col}__{right.name}" if col in clash else col] = value
            out.rows.append(merged)
            stats.rows_output += 1
    return out


def cross_product(
    left: Table,
    right: Table,
    stats: Optional[EngineStats] = None,
    filter_fn: Optional[Callable[[Row], bool]] = None,
) -> Table:
    """``left × right`` with an optional fused filter.

    The operator BigDansing-style plans fall back to for disconnected
    pattern components — quadratic, which is exactly why the paper reports
    it 4.6× slower.
    """
    stats = stats if stats is not None else EngineStats()
    clash = set(left.columns) & set(right.columns)
    out_columns = list(left.columns) + [
        (f"{col}__{right.name}" if col in clash else col) for col in right.columns
    ]
    out = Table(f"({left.name}×{right.name})", out_columns)
    for lrow in left.rows:
        stats.rows_scanned += 1
        for rrow in right.rows:
            stats.rows_joined += 1
            merged = dict(lrow)
            for col, value in rrow.items():
                merged[f"{col}__{right.name}" if col in clash else col] = value
            if filter_fn is None or filter_fn(merged):
                out.rows.append(merged)
                stats.rows_output += 1
    return out


def distinct(table: Table, stats: Optional[EngineStats] = None) -> Table:
    """Duplicate elimination on all columns."""
    stats = stats if stats is not None else EngineStats()
    out = Table(f"δ({table.name})", table.columns)
    seen = set()
    for row in table.rows:
        stats.rows_scanned += 1
        key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
        if key not in seen:
            seen.add(key)
            out.rows.append(row)
            stats.rows_output += 1
    return out
