"""Graph → relational encoding (what BigDansing must do, Section 1).

A property graph becomes three tables::

    nodes(id, label)
    edges(src, dst, elabel)
    attrs(id, attr, value)

Pattern matching then becomes a join pipeline over ``edges`` with
selections on ``nodes``, plus injectivity and literal checks as UDF
filters — exactly the "cast subgraph isomorphic testing as relational
joins" the Appendix measures at 4.6× slower than the native matcher.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..graph.graph import PropertyGraph
from .table import Table


def graph_to_tables(graph: PropertyGraph) -> Dict[str, Table]:
    """Encode ``graph`` as ``{'nodes': ..., 'edges': ..., 'attrs': ...}``."""
    nodes = Table("nodes", ["id", "label"])
    edges = Table("edges", ["src", "dst", "elabel"])
    attrs = Table("attrs", ["id", "attr", "value"])
    for node in graph.nodes():
        nodes.insert({"id": node, "label": graph.label(node)})
        for attr, value in graph.attrs(node).items():
            attrs.insert({"id": node, "attr": attr, "value": value})
    for src, dst, elabel in graph.edges():
        edges.insert({"src": src, "dst": dst, "elabel": elabel})
    return {"nodes": nodes, "edges": edges, "attrs": attrs}


def attribute_lookup(tables: Dict[str, Table]) -> Dict[Tuple, object]:
    """A dict index ``(id, attr) -> value`` over the attrs table.

    BigDansing-style UDFs evaluate literals through this lookup rather
    than joining the attrs table once per literal occurrence.
    """
    return {
        (row["id"], row["attr"]): row["value"] for row in tables["attrs"].rows
    }
