"""repro — GFDs: Functional Dependencies for Graphs.

A from-scratch reproduction of Fan, Wu & Xu, *Functional Dependencies for
Graphs* (SIGMOD 2016): the GFD dependency class for property graphs, its
static analyses (satisfiability, implication), sequential and
parallel-scalable validation (``repVal``/``disVal``), and the evaluation
harness regenerating the paper's tables and figures.

Quickstart::

    from repro import PropertyGraph, parse_gfd, det_vio

    g = PropertyGraph()
    g.add_node(1, "country", {"val": "Australia"})
    g.add_node(2, "city", {"val": "Canberra"})
    g.add_node(3, "city", {"val": "Melbourne"})
    g.add_edge(1, 2, "capital")
    g.add_edge(1, 3, "capital")

    phi2 = parse_gfd(
        "x:country -capital-> y:city; x -capital-> z:city",
        " => y.val = z.val", name="capital")
    print(det_vio([phi2], g))          # the Canberra/Melbourne clash

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .graph import (
    Fragmentation,
    GraphError,
    PropertyGraph,
    WILDCARD,
    graph_from_edges,
    greedy_edge_cut_partition,
    hash_partition,
    load_graph,
    power_law_graph,
    save_graph,
    skewed_power_law_graph,
)
from .pattern import (
    GraphPattern,
    PatternError,
    parse_pattern,
    pattern_from_edges,
    pivot_vector,
)
from .matching import SubgraphMatcher, count_matches, find_matches, has_match
from .core import (
    CFD,
    ConstantLiteral,
    DiscoveredGFD,
    EvidenceAggregate,
    FD,
    GFD,
    GFDError,
    VariableLiteral,
    Violation,
    build_model,
    det_vio,
    discover_gfds,
    generate_gfds,
    implies,
    is_satisfiable,
    make_gfd,
    minimal_cover,
    parse_gfd,
    parse_literal,
    relation_to_graph,
    satisfies,
    violation_entities,
    violations_of,
)
from .core.gfd import denial
from .parallel import (
    ClusterReport,
    CostModel,
    FaultPlan,
    FaultPolicy,
    FaultStats,
    MatchStoreStats,
    MaterialiserStats,
    ShippingStats,
    UnitResult,
    ValidationRun,
    dis_nop,
    dis_ran,
    dis_val,
    rep_nop,
    rep_ran,
    rep_val,
    sequential_run,
)
from .core.incremental import IncrementalValidator, UpdateDiff, apply_updates
from .session import DiscoveryPhase, DiscoveryRun, ValidationSession
from .service import (
    ServiceStats,
    Subscription,
    ValidationService,
    ViolationDiff,
    coalesce_ops,
)
from .quality import accuracy, inject_noise, validate_bigdansing, validate_gcfd
from .datasets import Dataset, dbpedia_like, pokec_like, yago_like

__version__ = "1.0.0"

__all__ = [
    # graph substrate
    "Fragmentation",
    "GraphError",
    "PropertyGraph",
    "WILDCARD",
    "graph_from_edges",
    "greedy_edge_cut_partition",
    "hash_partition",
    "load_graph",
    "power_law_graph",
    "save_graph",
    "skewed_power_law_graph",
    # patterns + matching
    "GraphPattern",
    "PatternError",
    "parse_pattern",
    "pattern_from_edges",
    "pivot_vector",
    "SubgraphMatcher",
    "count_matches",
    "find_matches",
    "has_match",
    # GFDs
    "CFD",
    "ConstantLiteral",
    "DiscoveredGFD",
    "FD",
    "GFD",
    "GFDError",
    "VariableLiteral",
    "Violation",
    "build_model",
    "denial",
    "det_vio",
    "discover_gfds",
    "generate_gfds",
    "implies",
    "is_satisfiable",
    "make_gfd",
    "minimal_cover",
    "parse_gfd",
    "parse_literal",
    "relation_to_graph",
    "satisfies",
    "violation_entities",
    "violations_of",
    # parallel validation + the session layer
    "ClusterReport",
    "CostModel",
    "DiscoveryPhase",
    "DiscoveryRun",
    "EvidenceAggregate",
    "MatchStoreStats",
    "MaterialiserStats",
    "ShippingStats",
    "FaultPlan",
    "FaultPolicy",
    "FaultStats",
    "UnitResult",
    "ValidationRun",
    "ValidationSession",
    "dis_nop",
    "dis_ran",
    "dis_val",
    "rep_nop",
    "rep_ran",
    "rep_val",
    "sequential_run",
    # continuous validation (streaming updates)
    "IncrementalValidator",
    "ServiceStats",
    "Subscription",
    "UpdateDiff",
    "ValidationService",
    "ViolationDiff",
    "apply_updates",
    "coalesce_ops",
    # quality + datasets
    "accuracy",
    "inject_noise",
    "validate_bigdansing",
    "validate_gcfd",
    "Dataset",
    "dbpedia_like",
    "pokec_like",
    "yago_like",
]
