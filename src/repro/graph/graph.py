"""Property graphs ``G = (V, E, L, F_A)`` (Section 2 of the paper).

A :class:`PropertyGraph` is a directed graph whose nodes and edges carry
string labels and whose nodes carry an attribute tuple ``F_A(v) =
(A1 = a1, ..., An = an)``.  This is the data model every other part of the
library operates on: patterns are matched against it, GFDs are validated
over it, and fragments of it are shipped between (simulated) processors.

The implementation is deliberately plain — dict-of-dicts adjacency with a
label index — because the reproduction band for this paper flags networkx
as too slow for the graph sizes the benchmarks sweep.  All hot-path
operations (neighbour iteration, label lookup, edge membership) are O(1)
amortised.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

NodeId = Hashable
Edge = Tuple[NodeId, NodeId, str]

#: Wildcard label; matches any node or edge label during pattern matching.
WILDCARD = "_"


class GraphError(Exception):
    """Raised on structurally invalid graph operations."""


class PropertyGraph:
    """A directed graph with labelled nodes/edges and node attributes.

    Nodes are arbitrary hashable identifiers.  Each node has exactly one
    label (a string); parallel edges with distinct labels are allowed,
    parallel edges with the same label are not (the edge set is a set).

    Example::

        g = PropertyGraph()
        g.add_node(1, "flight", {"number": "DL1", "from": "Paris"})
        g.add_node(2, "city", {"val": "NYC"})
        g.add_edge(1, 2, "to")
    """

    __slots__ = (
        "_labels",
        "_attrs",
        "_out",
        "_in",
        "_label_index",
        "_num_edges",
        "_version",
        "_snapshot_cache",
        "_snapshot_version",
        "_snapshot_delta",
    )

    def __init__(self) -> None:
        # node -> label
        self._labels: Dict[NodeId, str] = {}
        # node -> {attr: value}
        self._attrs: Dict[NodeId, Dict[str, Any]] = {}
        # node -> {neighbour: set(edge labels)}
        self._out: Dict[NodeId, Dict[NodeId, Set[str]]] = {}
        self._in: Dict[NodeId, Dict[NodeId, Set[str]]] = {}
        # label -> set of nodes
        self._label_index: Dict[str, Set[NodeId]] = {}
        self._num_edges = 0
        # structural version: bumped on node/edge/label mutation so cached
        # snapshots know when they are stale (attribute edits don't count —
        # snapshots index structure only, see graph/snapshot.py).
        self._version = 0
        self._snapshot_cache: Optional["GraphSnapshot"] = None
        self._snapshot_version = -1
        # structural ops since the cached snapshot was current; replayed
        # through GraphSnapshot.apply_delta on the next snapshot() call.
        # None = tracking abandoned (delta outgrew the graph): rebuild.
        self._snapshot_delta: Optional[List[Tuple]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: NodeId,
        label: str,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> NodeId:
        """Add ``node`` with ``label`` and optional attribute dict.

        Re-adding an existing node updates its label/attributes.
        """
        old_label = self._labels.get(node)
        if old_label is not None and old_label != label:
            self._label_index[old_label].discard(node)
            self._record_delta(("relabel", node, label))
        if old_label is None or old_label != label:
            self._version += 1
        if old_label is None:
            self._record_delta(("node+", node, label))
            self._out[node] = {}
            self._in[node] = {}
            self._attrs[node] = {}
        self._labels[node] = label
        self._label_index.setdefault(label, set()).add(node)
        if attrs:
            self._attrs[node].update(attrs)
        return node

    def add_edge(self, src: NodeId, dst: NodeId, label: str = WILDCARD) -> None:
        """Add a directed edge ``src -[label]-> dst``.

        Both endpoints must already exist.  Adding the same edge twice is a
        no-op.
        """
        if src not in self._labels:
            raise GraphError(f"unknown source node {src!r}")
        if dst not in self._labels:
            raise GraphError(f"unknown destination node {dst!r}")
        labels = self._out[src].setdefault(dst, set())
        if label in labels:
            return
        labels.add(label)
        self._in[dst].setdefault(src, set()).add(label)
        self._num_edges += 1
        self._version += 1
        self._record_delta(("edge+", src, dst, label))

    def remove_edge(self, src: NodeId, dst: NodeId, label: str) -> None:
        """Remove the edge ``src -[label]-> dst``; raise if absent."""
        try:
            labels = self._out[src][dst]
            labels.remove(label)
        except KeyError:
            raise GraphError(f"no edge {src!r} -[{label}]-> {dst!r}") from None
        if not labels:
            del self._out[src][dst]
        in_labels = self._in[dst][src]
        in_labels.discard(label)
        if not in_labels:
            del self._in[dst][src]
        self._num_edges -= 1
        self._version += 1
        self._record_delta(("edge-", src, dst, label))

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._labels:
            raise GraphError(f"unknown node {node!r}")
        for dst in list(self._out[node]):
            for label in list(self._out[node][dst]):
                self.remove_edge(node, dst, label)
        for src in list(self._in[node]):
            for label in list(self._in[node][src]):
                self.remove_edge(src, node, label)
        self._label_index[self._labels[node]].discard(node)
        del self._labels[node]
        del self._attrs[node]
        del self._out[node]
        del self._in[node]
        self._version += 1
        self._record_delta(("node-", node))

    def _record_delta(self, op: Tuple) -> None:
        """Track a structural op for snapshot delta maintenance.

        Recording only happens while a cached snapshot exists.  Node
        *removals* drop the cache outright: compacting the snapshot's
        interned index space costs a full re-derive per op, so a rebuild
        is never worse than replaying them.  And once the pending delta
        outgrows the budget — capped at a constant because each edge op
        also pays an ``O(|V|)`` offset shift — replaying would cost more
        than rebuilding, so tracking is abandoned (the next
        ``snapshot()`` call rebuilds from scratch).
        """
        if self._snapshot_cache is None or self._snapshot_delta is None:
            return
        if op[0] == "node-":
            self._snapshot_delta = None
            self._snapshot_cache = None
            return
        self._snapshot_delta.append(op)
        if len(self._snapshot_delta) > max(16, min(256, self.size // 8)):
            self._snapshot_delta = None
            self._snapshot_cache = None

    # ------------------------------------------------------------------
    # attributes
    # ------------------------------------------------------------------
    def set_attr(self, node: NodeId, attr: str, value: Any) -> None:
        """Set attribute ``attr`` of ``node`` to ``value``."""
        if node not in self._labels:
            raise GraphError(f"unknown node {node!r}")
        self._attrs[node][attr] = value

    def get_attr(self, node: NodeId, attr: str, default: Any = None) -> Any:
        """Return attribute ``attr`` of ``node``, or ``default`` if absent."""
        return self._attrs[node].get(attr, default)

    def has_attr(self, node: NodeId, attr: str) -> bool:
        """Whether ``node`` carries attribute ``attr``."""
        return attr in self._attrs[node]

    def attrs(self, node: NodeId) -> Dict[str, Any]:
        """The attribute dict of ``node`` (live view; do not mutate)."""
        return self._attrs[node]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of labelled edges ``|E|``."""
        return self._num_edges

    @property
    def size(self) -> int:
        """``|V| + |E|`` — the size measure the paper uses for data blocks."""
        return len(self._labels) + self._num_edges

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers."""
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(src, dst, label)`` triples."""
        for src, nbrs in self._out.items():
            for dst, labels in nbrs.items():
                for label in labels:
                    yield (src, dst, label)

    def label(self, node: NodeId) -> str:
        """The label of ``node``."""
        return self._labels[node]

    def labels(self) -> Set[str]:
        """The set of node labels present in the graph."""
        return {label for label, nodes in self._label_index.items() if nodes}

    def nodes_with_label(self, label: str) -> Set[NodeId]:
        """All nodes carrying ``label`` (empty set if none)."""
        return self._label_index.get(label, set())

    def has_edge(self, src: NodeId, dst: NodeId, label: Optional[str] = None) -> bool:
        """Whether edge ``src -> dst`` exists (with ``label`` if given)."""
        labels = self._out.get(src, {}).get(dst)
        if labels is None:
            return False
        if label is None:
            return True
        return label in labels

    def out_neighbors(self, node: NodeId) -> Dict[NodeId, Set[str]]:
        """Successors of ``node``: ``{neighbour: {edge labels}}``."""
        return self._out[node]

    def in_neighbors(self, node: NodeId) -> Dict[NodeId, Set[str]]:
        """Predecessors of ``node``: ``{neighbour: {edge labels}}``."""
        return self._in[node]

    def out_degree(self, node: NodeId) -> int:
        """Number of outgoing labelled edges of ``node``."""
        return sum(len(labels) for labels in self._out[node].values())

    def in_degree(self, node: NodeId) -> int:
        """Number of incoming labelled edges of ``node``."""
        return sum(len(labels) for labels in self._in[node].values())

    def degree(self, node: NodeId) -> int:
        """Total degree (in + out) of ``node``."""
        return self.out_degree(node) + self.in_degree(node)

    def edge_labels(self) -> Set[str]:
        """The set of edge labels present in the graph."""
        out: Set[str] = set()
        for nbrs in self._out.values():
            for labels in nbrs.values():
                out |= labels
        return out

    # ------------------------------------------------------------------
    # indexed view
    # ------------------------------------------------------------------
    def snapshot(self) -> "GraphSnapshot":
        """The compact indexed view of this graph (the matching backend).

        Built lazily and cached: repeated calls on an unmutated graph
        return the same object.  Structural mutations are *delta-applied*
        to the cached snapshot (``GraphSnapshot.apply_delta``) — the call
        after a handful of updates patches the touched index entries
        instead of rebuilding the whole index (see ``apply_delta`` for
        the honest per-op costs), which is what keeps
        :class:`~repro.core.incremental.IncrementalValidator`
        on the indexed backend.  The returned object may therefore be the
        *same* (patched-in-place) snapshot as before the mutation: treat
        a held snapshot as a live view of the graph, and pickle-roundtrip
        it if a frozen copy is needed.  A full rebuild still happens when
        no snapshot was ever built, or when the pending delta outgrew the
        graph.  Attribute updates never invalidate — snapshots index
        structure only (see :mod:`repro.graph.snapshot`).
        """
        from .snapshot import GraphSnapshot

        cache = self._snapshot_cache
        if cache is not None and self._snapshot_version == self._version:
            return cache
        delta = self._snapshot_delta
        if cache is not None and delta:
            cache.apply_delta(delta)
            delta.clear()
            self._snapshot_version = self._version
            return cache
        self._snapshot_cache = GraphSnapshot(self)
        self._snapshot_version = self._version
        self._snapshot_delta = []
        return self._snapshot_cache

    def adopt_snapshot(self, snapshot: "GraphSnapshot") -> None:
        """Install ``snapshot`` as this graph's cached indexed view.

        The caller warrants the snapshot indexes exactly this graph's
        current structure *in insertion order* — the shared-memory shard
        plane uses this after rebuilding a worker-side graph from the
        very arena snapshot it adopts, so the warrant holds by
        construction.  From here on the normal delta-maintenance
        contract applies, as if :meth:`snapshot` had built it.
        """
        self._snapshot_cache = snapshot
        self._snapshot_version = self._version
        self._snapshot_delta = []

    def drop_snapshot_cache(self) -> None:
        """Forget the cached snapshot (the next :meth:`snapshot` rebuilds).

        Used when the cached view must not be patched further — e.g. a
        worker releasing a shared-memory arena its mapped snapshot still
        references.
        """
        self._snapshot_cache = None
        self._snapshot_version = -1
        self._snapshot_delta = []

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> Tuple:
        """Pickle the graph without its cached snapshot.

        Workers rebuild (shard-local) snapshots from the shipped graph
        data, so carrying the coordinator's cached whole-graph index would
        roughly double the payload for nothing.
        """
        return (
            self._labels,
            self._attrs,
            self._out,
            self._in,
            self._label_index,
            self._num_edges,
            self._version,
        )

    def __setstate__(self, state: Tuple) -> None:
        (
            self._labels,
            self._attrs,
            self._out,
            self._in,
            self._label_index,
            self._num_edges,
            self._version,
        ) = state
        self._snapshot_cache = None
        self._snapshot_version = -1
        self._snapshot_delta = []

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "PropertyGraph":
        """A deep copy (attribute dicts are copied shallowly per node)."""
        g = PropertyGraph()
        for node, label in self._labels.items():
            g.add_node(node, label, dict(self._attrs[node]))
        for src, dst, label in self.edges():
            g.add_edge(src, dst, label)
        return g

    def induced_subgraph(self, nodes: Iterable[NodeId]) -> "PropertyGraph":
        """The subgraph induced by ``nodes`` (Section 2).

        Contains every given node and every edge of this graph whose two
        endpoints are both given.
        """
        keep = set(nodes)
        g = PropertyGraph()
        for node in keep:
            if node not in self._labels:
                raise GraphError(f"unknown node {node!r}")
            g.add_node(node, self._labels[node], dict(self._attrs[node]))
        for node in keep:
            for dst, labels in self._out[node].items():
                if dst in keep:
                    for label in labels:
                        g.add_edge(node, dst, label)
        return g

    def is_subgraph_of(self, other: "PropertyGraph") -> bool:
        """Whether this graph is a subgraph of ``other`` (Section 2).

        Requires node containment with equal labels and attributes, and
        edge containment with equal labels.
        """
        for node, label in self._labels.items():
            if node not in other or other.label(node) != label:
                return False
            if other.attrs(node) != self._attrs[node]:
                return False
        for src, dst, label in self.edges():
            if not other.has_edge(src, dst, label):
                return False
        return True

    def merge(self, other: "PropertyGraph") -> None:
        """Union ``other`` into this graph in place (shared ids coalesce)."""
        for node in other.nodes():
            if node in self._labels:
                self._attrs[node].update(other.attrs(node))
            else:
                self.add_node(node, other.label(node), dict(other.attrs(node)))
        for src, dst, label in other.edges():
            self.add_edge(src, dst, label)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PropertyGraph(|V|={self.num_nodes}, |E|={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyGraph):
            return NotImplemented
        if self._labels != other._labels or self._attrs != other._attrs:
            return False
        return set(self.edges()) == set(other.edges())

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)


def graph_from_edges(
    edges: Iterable[Tuple[NodeId, str, NodeId]],
    node_labels: Optional[Dict[NodeId, str]] = None,
    attrs: Optional[Dict[NodeId, Dict[str, Any]]] = None,
    default_label: str = "node",
) -> PropertyGraph:
    """Build a graph from ``(src, edge_label, dst)`` triples.

    Convenience constructor for tests and examples.  Node labels default to
    ``default_label`` unless given in ``node_labels``.
    """
    node_labels = node_labels or {}
    attrs = attrs or {}
    g = PropertyGraph()

    def ensure(node: NodeId) -> None:
        if node not in g:
            g.add_node(node, node_labels.get(node, default_label), attrs.get(node))

    for src, elabel, dst in edges:
        ensure(src)
        ensure(dst)
        g.add_edge(src, dst, elabel)
    for node in node_labels:
        ensure(node)
    return g
