"""Graph statistics used by workload estimation (Section 6.1, step 1).

``bPar`` balances workload estimation using (a) the frequency distribution
of candidate nodes per pattern label, held as coordinator-local statistics,
and (b) *m-balanced* range partitions of the candidates computed from a
precomputed equi-depth histogram over a selected attribute.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Sequence, Tuple

from .graph import NodeId, PropertyGraph


def label_frequencies(graph: PropertyGraph) -> Counter:
    """``Counter`` of node-label frequencies (candidate distribution)."""
    return Counter({label: len(graph.nodes_with_label(label))
                    for label in graph.labels()})


def edge_label_frequencies(graph: PropertyGraph) -> Counter:
    """``Counter`` of edge-label frequencies."""
    counts: Counter = Counter()
    for _, _, label in graph.edges():
        counts[label] += 1
    return counts


def degree_statistics(graph: PropertyGraph) -> Dict[str, float]:
    """Min / max / mean total degree — used to gauge skew."""
    degrees = [graph.degree(node) for node in graph.nodes()]
    if not degrees:
        return {"min": 0.0, "max": 0.0, "mean": 0.0}
    return {
        "min": float(min(degrees)),
        "max": float(max(degrees)),
        "mean": sum(degrees) / len(degrees),
    }


def skewness_ratio(graph: PropertyGraph, d: int = 3, fraction: float = 0.1) -> float:
    """The paper's ``skew`` measure (Appendix, Fig. 8).

    The ratio ``|G_dm| / |G_dm'|`` between the average size of the
    ``fraction`` *smallest* and ``fraction`` *largest* d-hop neighbourhoods.
    Smaller values mean more skew.
    """
    from .subgraph import k_hop_size

    sizes = sorted(k_hop_size(graph, [node], d) for node in graph.nodes())
    if not sizes:
        return 1.0
    k = max(1, int(len(sizes) * fraction))
    smallest = sizes[:k]
    largest = sizes[-k:]
    top = sum(smallest) / len(smallest)
    bottom = sum(largest) / len(largest)
    return top / bottom if bottom else 1.0


class EquiDepthHistogram:
    """An equi-depth (equi-height) histogram over orderable values.

    Each of the ``m`` buckets holds (approximately) the same number of
    values; bucket boundaries are therefore value *ranges* with even
    candidate counts, exactly what ``bPar`` needs to derive its m-balanced
    partitions ``R_µ(z)`` (Section 6.1).
    """

    def __init__(self, values: Sequence[Any], buckets: int) -> None:
        if buckets < 1:
            raise ValueError("need at least one bucket")
        ordered = sorted(values, key=_sort_key)
        self._buckets: List[Tuple[Any, Any, int]] = []
        n = len(ordered)
        if n == 0:
            return
        buckets = min(buckets, n)
        base, extra = divmod(n, buckets)
        start = 0
        for i in range(buckets):
            width = base + (1 if i < extra else 0)
            chunk = ordered[start:start + width]
            self._buckets.append((chunk[0], chunk[-1], len(chunk)))
            start += width

    @property
    def boundaries(self) -> List[Tuple[Any, Any]]:
        """``(low, high)`` closed ranges, one per bucket."""
        return [(low, high) for low, high, _ in self._buckets]

    @property
    def depths(self) -> List[int]:
        """Number of values per bucket (even up to ±1 by construction)."""
        return [count for _, _, count in self._buckets]

    def bucket_of(self, value: Any) -> int:
        """Index of the bucket whose range contains ``value``.

        Values outside all ranges clamp to the nearest bucket.
        """
        if not self._buckets:
            raise ValueError("empty histogram")
        key = _sort_key(value)
        for i, (low, high, _) in enumerate(self._buckets):
            if _sort_key(low) <= key <= _sort_key(high):
                return i
        if key < _sort_key(self._buckets[0][0]):
            return 0
        return len(self._buckets) - 1

    def __len__(self) -> int:
        return len(self._buckets)


def _sort_key(value: Any) -> Tuple[str, Any]:
    """Total order over mixed types: group by type name, then value."""
    return (type(value).__name__, value)


def balanced_ranges(
    graph: PropertyGraph,
    label: str,
    attribute: str,
    m: int,
    missing: Any = "",
) -> List[Tuple[Any, Any]]:
    """m-balanced value ranges of ``attribute`` over nodes labelled ``label``.

    This is the ``R_µ(z)`` construction of Section 6.1: each returned range
    covers an (approximately) equal number of candidate nodes.  Nodes
    missing the attribute are grouped under ``missing``.
    """
    values = [
        graph.get_attr(node, attribute, missing)
        for node in graph.nodes_with_label(label)
    ]
    if not values:
        return []
    return EquiDepthHistogram(values, m).boundaries


def candidates_in_range(
    graph: PropertyGraph,
    label: str,
    attribute: str,
    value_range: Tuple[Any, Any],
    missing: Any = "",
) -> List[NodeId]:
    """Candidate nodes of ``label`` whose ``attribute`` falls in the range."""
    low_key = _sort_key(value_range[0])
    high_key = _sort_key(value_range[1])
    out = []
    for node in graph.nodes_with_label(label):
        key = _sort_key(graph.get_attr(node, attribute, missing))
        if low_key <= key <= high_key:
            out.append(node)
    return out
