"""Synthetic graph generation (Section 7, "Experimental setting").

The paper's generator produces graphs ``G = (V, E, L, F_A)`` following a
power-law degree distribution, controlled by ``|V|`` and ``|E|``, with
labels drawn from an alphabet of 30 labels and 5 attributes per node with
values from an active domain of 1000 values.  The Appendix additionally
sweeps a *skewness* knob (Fig. 8).  Both are reproduced here; skew is
governed by the Zipf exponent used when sampling edge endpoints.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate
from typing import List, Sequence

from .graph import PropertyGraph

#: Paper defaults: alphabet of 30 node labels, 5 attributes, domain of 1000.
DEFAULT_NODE_LABELS = tuple(f"L{i}" for i in range(30))
DEFAULT_EDGE_LABELS = tuple(f"e{i}" for i in range(10))
DEFAULT_ATTRIBUTES = ("A0", "A1", "A2", "A3", "A4")
DEFAULT_DOMAIN_SIZE = 1000


class _ZipfSampler:
    """Samples node indices with probability proportional to rank^-alpha.

    ``alpha = 0`` is uniform; larger ``alpha`` concentrates edges on a few
    hub nodes, producing the skewed neighbourhoods of Fig. 8.
    """

    def __init__(self, n: int, alpha: float, rng: random.Random) -> None:
        weights = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]
        self._rng = rng
        # Shuffle ranks so hubs are spread over node ids, not clustered at 0.
        self._perm = list(range(n))
        rng.shuffle(self._perm)

    def sample(self) -> int:
        u = self._rng.random() * self._total
        return self._perm[bisect_right(self._cumulative, u)]


def power_law_graph(
    num_nodes: int,
    num_edges: int,
    alpha: float = 1.0,
    node_labels: Sequence[str] = DEFAULT_NODE_LABELS,
    edge_labels: Sequence[str] = DEFAULT_EDGE_LABELS,
    attributes: Sequence[str] = DEFAULT_ATTRIBUTES,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
    seed: int = 0,
) -> PropertyGraph:
    """A synthetic power-law property graph (the paper's Exp-4 workload).

    Arguments mirror the paper's generator: node/edge counts, a label
    alphabet, and per-node attributes with values ``v0 .. v{domain_size-1}``.
    ``alpha`` is the Zipf exponent controlling degree skew (1.0 gives the
    classic power law; see :func:`skewed_power_law_graph` for the Fig. 8
    sweep).
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    rng = random.Random(seed)
    graph = PropertyGraph()
    for node in range(num_nodes):
        attrs = {
            attr: f"v{rng.randrange(domain_size)}" for attr in attributes
        }
        graph.add_node(node, rng.choice(node_labels), attrs)

    sampler = _ZipfSampler(num_nodes, alpha, rng)
    added = 0
    attempts = 0
    max_attempts = num_edges * 20
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        src = sampler.sample()
        dst = sampler.sample()
        if src == dst:
            continue
        label = rng.choice(edge_labels)
        if graph.has_edge(src, dst, label):
            continue
        graph.add_edge(src, dst, label)
        added += 1
    return graph


def skewed_power_law_graph(
    num_nodes: int,
    num_edges: int,
    skew: float,
    seed: int = 0,
    **kwargs,
) -> PropertyGraph:
    """A power-law graph tuned towards a target skewness ratio.

    ``skew`` follows the paper's Appendix measure (average size of the 10%
    smallest d-hop neighbourhoods over the 10% largest): **smaller is more
    skewed**.  We map it onto the Zipf exponent — empirically, ``alpha``
    rising from ~0.6 to ~1.8 drives the measured ratio from ≳0.1 down
    towards 0.02 on graphs of the benchmark sizes.
    """
    if not 0 < skew <= 1:
        raise ValueError("skew must be in (0, 1]")
    alpha = 0.5 + (1.0 - skew) * 1.5
    return power_law_graph(
        num_nodes, num_edges, alpha=alpha, seed=seed, **kwargs
    )


def uniform_random_graph(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    **kwargs,
) -> PropertyGraph:
    """Erdős–Rényi-style graph (``alpha = 0``) for control experiments."""
    return power_law_graph(num_nodes, num_edges, alpha=0.0, seed=seed, **kwargs)


def planted_pattern_graph(
    base: PropertyGraph,
    pattern_builder,
    copies: int,
    seed: int = 0,
) -> List[List[int]]:
    """Plant ``copies`` instances of a small structure into ``base``.

    ``pattern_builder(graph, fresh_id) -> list[node]`` must add one instance
    using ids starting at ``fresh_id`` and return the created node list.
    Returns the node lists of all planted instances.  Benchmarks use this to
    guarantee a controlled number of (violating) matches.
    """
    rng = random.Random(seed)
    next_id = max((n for n in base.nodes() if isinstance(n, int)), default=-1) + 1
    planted = []
    for _ in range(copies):
        created = pattern_builder(base, next_id)
        planted.append(created)
        next_id += len(created)
        # Wire each instance into the base graph so blocks are non-trivial.
        if base.num_nodes > len(created):
            anchor = rng.randrange(next_id - len(created))
            base.add_edge(created[0], anchor, "near")
    return planted
