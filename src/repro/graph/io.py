"""Graph (de)serialisation.

A small line-oriented JSON format so examples and tools can persist graphs:
one JSON object per line, either ``{"n": id, "l": label, "a": {...}}`` for
a node or ``{"s": src, "d": dst, "l": label}`` for an edge.  Nodes must
appear before edges that reference them (``save_graph`` guarantees this).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

from .graph import GraphError, PropertyGraph

PathLike = Union[str, Path]


def save_graph(graph: PropertyGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in the line-JSON format."""
    with open(path, "w", encoding="utf-8") as handle:
        _write(graph, handle)


def _write(graph: PropertyGraph, handle: IO[str]) -> None:
    for node in graph.nodes():
        record = {"n": node, "l": graph.label(node)}
        attrs = graph.attrs(node)
        if attrs:
            record["a"] = attrs
        handle.write(json.dumps(record) + "\n")
    for src, dst, label in graph.edges():
        handle.write(json.dumps({"s": src, "d": dst, "l": label}) + "\n")


def load_graph(path: PathLike) -> PropertyGraph:
    """Read a graph previously written by :func:`save_graph`."""
    graph = PropertyGraph()
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "n" in record:
                graph.add_node(record["n"], record["l"], record.get("a"))
            elif "s" in record:
                try:
                    graph.add_edge(record["s"], record["d"], record["l"])
                except GraphError as exc:
                    raise GraphError(f"line {line_no}: {exc}") from exc
            else:
                raise GraphError(f"line {line_no}: unrecognised record {record}")
    return graph


def graph_to_dict(graph: PropertyGraph) -> dict:
    """JSON-serialisable dict form (used by tests and tooling)."""
    return {
        "nodes": [
            {"id": node, "label": graph.label(node), "attrs": dict(graph.attrs(node))}
            for node in graph.nodes()
        ],
        "edges": [
            {"src": src, "dst": dst, "label": label}
            for src, dst, label in graph.edges()
        ],
    }


def graph_from_dict(data: dict) -> PropertyGraph:
    """Inverse of :func:`graph_to_dict`."""
    graph = PropertyGraph()
    for node in data["nodes"]:
        graph.add_node(node["id"], node["label"], node.get("attrs"))
    for edge in data["edges"]:
        graph.add_edge(edge["src"], edge["dst"], edge["label"])
    return graph
