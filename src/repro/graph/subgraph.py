"""Neighbourhood extraction: the data blocks ``G_z̄`` of Section 5.2.

A work unit in the paper pairs a pivot candidate with the subgraph of ``G``
induced by all nodes within ``c_Q`` hops of the candidate (hops ignore edge
direction — the locality argument in the paper relies on undirected
distance, since a pattern edge may point either way from the pivot).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set

from .graph import NodeId, PropertyGraph


def k_hop_nodes(graph: PropertyGraph, seeds: Iterable[NodeId], k: int) -> Set[NodeId]:
    """All nodes within ``k`` undirected hops of any seed (seeds included)."""
    frontier = deque((seed, 0) for seed in seeds)
    seen: Set[NodeId] = {seed for seed, _ in frontier}
    while frontier:
        node, dist = frontier.popleft()
        if dist == k:
            continue
        for nbr in graph.out_neighbors(node):
            if nbr not in seen:
                seen.add(nbr)
                frontier.append((nbr, dist + 1))
        for nbr in graph.in_neighbors(node):
            if nbr not in seen:
                seen.add(nbr)
                frontier.append((nbr, dist + 1))
    return seen


def k_hop_subgraph(
    graph: PropertyGraph, seeds: Iterable[NodeId], k: int
) -> PropertyGraph:
    """The subgraph induced by :func:`k_hop_nodes` — a data block ``G_z̄``."""
    return graph.induced_subgraph(k_hop_nodes(graph, seeds, k))


def k_hop_size(graph: PropertyGraph, seeds: Iterable[NodeId], k: int) -> int:
    """``|G_z̄|`` (nodes + induced edges) without materialising the block.

    Used by workload estimation, where only the *size* of each data block
    is shipped to the coordinator (Section 6.1: "Note that |G_z̄| is sent,
    not G_z̄").
    """
    nodes = k_hop_nodes(graph, seeds, k)
    edge_count = 0
    for node in nodes:
        for dst, labels in graph.out_neighbors(node).items():
            if dst in nodes:
                edge_count += len(labels)
    return len(nodes) + edge_count


def connected_components(graph: PropertyGraph) -> List[Set[NodeId]]:
    """Weakly connected components of ``graph``."""
    seen: Set[NodeId] = set()
    components: List[Set[NodeId]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: Set[NodeId] = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nbr in graph.out_neighbors(node):
                if nbr not in component:
                    component.add(nbr)
                    queue.append(nbr)
            for nbr in graph.in_neighbors(node):
                if nbr not in component:
                    component.add(nbr)
                    queue.append(nbr)
        seen |= component
        components.append(component)
    return components


def eccentricity(graph: PropertyGraph, node: NodeId) -> int:
    """Longest undirected shortest-path distance from ``node``.

    Only meaningful within the node's connected component; the paper calls
    this the *radius at* a node when selecting pivots.
    """
    dist: Dict[NodeId, int] = {node: 0}
    queue = deque([node])
    max_dist = 0
    while queue:
        current = queue.popleft()
        d = dist[current]
        for nbr in graph.out_neighbors(current):
            if nbr not in dist:
                dist[nbr] = d + 1
                max_dist = max(max_dist, d + 1)
                queue.append(nbr)
        for nbr in graph.in_neighbors(current):
            if nbr not in dist:
                dist[nbr] = d + 1
                max_dist = max(max_dist, d + 1)
                queue.append(nbr)
    return max_dist


def undirected_distances(
    graph: PropertyGraph, source: NodeId
) -> Dict[NodeId, int]:
    """BFS distances from ``source``, ignoring edge direction."""
    dist: Dict[NodeId, int] = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        d = dist[current]
        for nbr in graph.out_neighbors(current):
            if nbr not in dist:
                dist[nbr] = d + 1
                queue.append(nbr)
        for nbr in graph.in_neighbors(current):
            if nbr not in dist:
                dist[nbr] = d + 1
                queue.append(nbr)
    return dist
