"""Immutable compact index over a :class:`PropertyGraph` — the fast
matching backend.

A :class:`GraphSnapshot` re-encodes a property graph into integer-interned,
CSR-style structures so the subgraph-matching hot path (candidate seeding,
degree filtering, frontier expansion, edge checks) runs on dense ints and
precomputed indices instead of nested ``Dict[NodeId, Dict[NodeId,
Set[str]]]`` walks:

* node identifiers are interned to dense indices ``0 .. |V|-1``;
* node and edge labels are interned to small ints;
* out/in adjacency is stored CSR-style (``array`` offsets + flat
  neighbour/label arrays), with per-``(node, edge label)`` slices so a
  frontier expansion over one edge label is a contiguous array slice;
* every node carries a precomputed neighbour-label histogram, so the
  degree filter never re-counts edge labels per candidate;
* a ``(src_label, edge_label, dst_label)`` pair index maps each concrete
  label triple to the nodes that actually participate in such an edge,
  seeding candidate sets far tighter than the label index alone.

Backend-selection rule
----------------------

:class:`~repro.matching.vf2.SubgraphMatcher` and
:func:`~repro.matching.candidates.compute_candidates` accept either a
:class:`PropertyGraph` or a :class:`GraphSnapshot`:

* passing a snapshot (or a graph with ``backend="snapshot"``/the default
  ``"auto"``) runs the indexed path;
* ``backend="legacy"`` forces the original dict-of-dicts path — used by
  :class:`~repro.core.incremental.IncrementalValidator` after structural
  updates, where rebuilding a whole-graph snapshot per update would cost
  ``O(|G|)`` and defeat the locality argument, and by the differential
  test harness that locks the two paths together.

When snapshots are rebuilt (and when they are patched)
------------------------------------------------------

``PropertyGraph.snapshot()`` caches the snapshot on the graph and tags it
with the graph's structural version.  Since the session layer (PR 3) the
graph also records the structural delta since the cached snapshot was
current; the *next* ``snapshot()`` call replays that delta through
:meth:`GraphSnapshot.apply_delta` — patching the CSR rows, label tables,
histograms, and the pair index of the touched nodes in place — instead of
rebuilding the whole index.  Only when the delta grows past a fraction of
``|G|`` (or a caller mutated out-of-band) does a full rebuild happen.
Attribute-only updates (``set_attr``) never invalidate: snapshots index
structure and labels only — attribute literals are always evaluated
against the backing ``PropertyGraph``.

Consequently a cached snapshot is a *live view* of its graph, not a
frozen copy: holding it across structural mutations is the same contract
as holding the ``PropertyGraph`` itself, and matchers constructed before
a mutation must be rebuilt after it (their candidate caches are stale —
:class:`~repro.core.incremental.IncrementalValidator` does exactly this).
Code that needs a frozen copy should pickle-roundtrip the snapshot.
Exposed structures remain frozen *by convention* for every consumer
except :meth:`apply_delta` itself.

Pickling
--------

Snapshots are pickle-friendly — the groundwork the multiprocess executor
(:mod:`repro.parallel.executors`) relies on to ship shard-local indices to
worker processes.  Only the *primary* structures travel over the wire
(node ids, interned label tables, and the CSR arrays); every derived
index — the edge/adjacency sets, label-pair index, per-node slices,
histograms and degree arrays — is rebuilt on unpickling from the CSR in
one ``O(|V| + |E|)`` pass.  This keeps the pickled payload within a small
factor of :meth:`GraphSnapshot.memory_estimate` (guarded by tests) rather
than paying for the set-heavy derived structures twice.

Arena layout (zero-copy shipping)
---------------------------------

The nine primary arrays (:data:`GraphSnapshot.ARENA_FIELDS`) can also
live in one contiguous, ``memoryview``-sliceable byte arena:
:meth:`GraphSnapshot.write_arena` lays them out back to back in a caller-
supplied buffer (a ``multiprocessing.shared_memory`` segment, a
``bytearray``, an mmap — anything buffer-protocol) and returns a compact
layout descriptor; :meth:`GraphSnapshot.from_arena` reattaches by casting
``memoryview`` slices over the buffer *without copying* and rebuilding
the derived indices locally, exactly as unpickling does.  The executor
layer's :class:`~repro.parallel.executors.ShardPlane` uses this to map
shards across co-located processes instead of pickling them.  A mapped
snapshot is read-only until :meth:`GraphSnapshot.materialise` copies the
views into private ``array`` storage — :meth:`apply_delta` does so
automatically, because index patching needs ``insert``/``pop`` on the
rows (the one thing a flat mapped buffer cannot do).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .graph import Edge, NodeId, PropertyGraph, WILDCARD

#: Pattern-edge label codes with no concrete interned id.
WILD_CODE = -1  #: the wildcard label — matches any edge label
ABSENT_CODE = -2  #: a label the snapshot has never seen — matches nothing

#: The one typecode every primary array uses (and the arena is cast to).
ARENA_TYPECODE = "l"


class GraphSnapshot:
    """Read-only indexed view of one structural version of a graph.

    Exposed attributes are build-time artefacts shared with the matching
    layer; treat them as frozen.  All ``*_code``/``*_idx`` APIs work in
    interned index space, the remaining methods mirror the
    :class:`PropertyGraph` inspection API in original-id space.
    """

    __slots__ = (
        "node_ids",
        "index",
        "node_label_names",
        "node_label_ids",
        "edge_label_names",
        "edge_label_ids",
        "label_codes",
        "nodes_by_label",
        "out_offsets",
        "out_nbrs",
        "out_labs",
        "in_offsets",
        "in_nbrs",
        "in_labs",
        "out_slices",
        "in_slices",
        "out_uniq",
        "in_uniq",
        "out_hist",
        "in_hist",
        "out_deg",
        "in_deg",
        "edge_set",
        "adj_set",
        "pair_src",
        "pair_dst",
        "num_edges",
        "arena",
    )

    def __init__(self, graph: PropertyGraph) -> None:
        #: index -> original node id
        self.node_ids: List[NodeId] = list(graph.nodes())
        index: Dict[NodeId, int] = {
            node: i for i, node in enumerate(self.node_ids)
        }

        #: node label interning (id -> name); name -> id is derived
        self.node_label_names: List[str] = []
        node_label_ids: Dict[str, int] = {}
        #: node index -> node label id
        label_codes = array("l")
        for node in self.node_ids:
            name = graph.label(node)
            code = node_label_ids.get(name)
            if code is None:
                code = len(self.node_label_names)
                node_label_ids[name] = code
                self.node_label_names.append(name)
            label_codes.append(code)
        self.label_codes = label_codes

        #: edge label interning (id -> name); name -> id is derived
        self.edge_label_names: List[str] = []
        edge_label_ids: Dict[str, int] = {}

        # Primary CSR adjacency, one pass per direction.  Everything else
        # — edge/adjacency sets, the label-pair index, per-node slices,
        # histograms and degrees — is derived from it by the same
        # ``_derive_indices`` pass construction and unpickling share.
        self.out_offsets, self.out_nbrs, self.out_labs = self._build_csr(
            graph, index, edge_label_ids, out=True
        )
        self.in_offsets, self.in_nbrs, self.in_labs = self._build_csr(
            graph, index, edge_label_ids, out=False
        )
        self.arena = None
        self._derive_indices()

    def _build_csr(
        self,
        graph: PropertyGraph,
        index: Dict[NodeId, int],
        edge_label_ids: Dict[str, int],
        out: bool,
    ) -> Tuple["array", "array", "array"]:
        """CSR rows sorted by (edge label id, neighbour index), one pass."""
        offsets: List[int] = [0]
        nbrs: List[int] = []
        labs: List[int] = []
        names = self.edge_label_names
        adjacency_of = graph.out_neighbors if out else graph.in_neighbors
        for node in self.node_ids:
            row: List[Tuple[int, int]] = []
            for nbr, labels in adjacency_of(node).items():
                nbr_idx = index[nbr]
                for label in labels:
                    code = edge_label_ids.get(label)
                    if code is None:
                        code = len(names)
                        edge_label_ids[label] = code
                        names.append(label)
                    row.append((code, nbr_idx))
            row.sort()
            for code, nbr_idx in row:
                nbrs.append(nbr_idx)
                labs.append(code)
            offsets.append(len(nbrs))
        return array("l", offsets), array("l", nbrs), array("l", labs)

    # ------------------------------------------------------------------
    # pickling (multiprocess shipping)
    # ------------------------------------------------------------------
    #: slots that travel over the wire; everything else is derived.
    _PICKLED_FIELDS = (
        "node_ids",
        "node_label_names",
        "label_codes",
        "edge_label_names",
        "out_offsets",
        "out_nbrs",
        "out_labs",
        "in_offsets",
        "in_nbrs",
        "in_labs",
    )

    def __getstate__(self) -> Dict[str, object]:
        """Primary structures only — derived indices are rebuilt on load.

        Mapped (arena-backed) snapshots hold ``memoryview`` primaries,
        which cannot pickle; they are copied into plain ``array`` form on
        the way out, so a pickle round-trip always yields a private,
        fully materialised snapshot.
        """
        state = {}
        for name in self._PICKLED_FIELDS:
            value = getattr(self, name)
            if isinstance(value, memoryview):
                value = array(ARENA_TYPECODE, value)
            state[name] = value
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for name in self._PICKLED_FIELDS:
            setattr(self, name, state[name])
        self.arena = None
        self._derive_indices()

    def _derive_indices(self) -> None:
        """Build every derived structure from the primary CSR state.

        The single implementation shared by construction and unpickling:
        rows are already sorted by (edge label id, neighbour index), so
        slices are runs and histograms are run lengths.  One pass per
        direction, ``O(|V| + |E|)`` total.
        """
        self.index = {node: i for i, node in enumerate(self.node_ids)}
        self.node_label_ids = {
            name: code for code, name in enumerate(self.node_label_names)
        }
        self.edge_label_ids = {
            name: code for code, name in enumerate(self.edge_label_names)
        }
        by_label: Dict[int, Set[int]] = {}
        for idx, code in enumerate(self.label_codes):
            by_label.setdefault(code, set()).add(idx)
        # Plain (mutable) sets so apply_delta can patch memberships in
        # O(1); frozen by convention for every other consumer.
        self.nodes_by_label = by_label
        self.edge_set = set()
        self.adj_set = set()
        pair_src: Dict[Tuple[int, int, int], Set[int]] = {}
        pair_dst: Dict[Tuple[int, int, int], Set[int]] = {}
        (
            self.out_slices,
            self.out_uniq,
            self.out_hist,
            self.out_deg,
        ) = self._derive_direction(
            self.out_offsets, self.out_nbrs, self.out_labs, pair_src, pair_dst
        )
        (
            self.in_slices,
            self.in_uniq,
            self.in_hist,
            self.in_deg,
        ) = self._derive_direction(self.in_offsets, self.in_nbrs, self.in_labs)
        self.pair_src = pair_src
        self.pair_dst = pair_dst
        self.num_edges = len(self.edge_set)

    def _derive_direction(
        self,
        offsets,
        nbrs,
        labs,
        pair_src: Optional[Dict[Tuple[int, int, int], Set[int]]] = None,
        pair_dst: Optional[Dict[Tuple[int, int, int], Set[int]]] = None,
    ):
        """Per-node slices/uniq/hist/deg from one direction's CSR rows.

        Slice positions are *row-relative* (offsets from the node's CSR
        row base) so that :meth:`apply_delta` edits to one node's row
        never touch any other node's slice table.
        """
        label_codes = self.label_codes
        fill_pairs = pair_src is not None
        edge_set = self.edge_set
        adj_set = self.adj_set
        slices: List[Dict[int, Tuple[int, int]]] = []
        uniq: List[Tuple[int, ...]] = []
        hist: List[Dict[int, int]] = []
        deg: List[int] = []
        for src_idx in range(len(self.node_ids)):
            base, end = offsets[src_idx], offsets[src_idx + 1]
            row_slices, uniq_row, row_hist = self._derive_row(
                nbrs, labs, base, end
            )
            if fill_pairs:
                for pos in range(base, end):
                    code = labs[pos]
                    nbr_idx = nbrs[pos]
                    edge_set.add((src_idx, nbr_idx, code))
                    key = (label_codes[src_idx], code, label_codes[nbr_idx])
                    pair_src.setdefault(key, set()).add(src_idx)
                    pair_dst.setdefault(key, set()).add(nbr_idx)
                adj_set.update((src_idx, nbr_idx) for nbr_idx in uniq_row)
            slices.append(row_slices)
            uniq.append(uniq_row)
            hist.append(row_hist)
            deg.append(end - base)
        return slices, uniq, hist, array("l", deg)

    @staticmethod
    def _derive_row(nbrs, labs, base: int, end: int):
        """``(row-relative slices, uniq tuple, histogram)`` of one CSR row."""
        row_slices: Dict[int, Tuple[int, int]] = {}
        row_hist: Dict[int, int] = {}
        uniq_row: Set[int] = set()
        run_code: Optional[int] = None
        run_start = base
        for pos in range(base, end):
            code = labs[pos]
            uniq_row.add(nbrs[pos])
            if code != run_code:
                if run_code is not None:
                    row_slices[run_code] = (run_start - base, pos - base)
                    row_hist[run_code] = pos - run_start
                run_code = code
                run_start = pos
        if run_code is not None:
            row_slices[run_code] = (run_start - base, end - base)
            row_hist[run_code] = end - run_start
        return row_slices, tuple(sorted(uniq_row)), row_hist

    # ------------------------------------------------------------------
    # shared-memory arena (zero-copy shipping)
    # ------------------------------------------------------------------
    #: the nine primary arrays, in arena layout order: everything a
    #: snapshot stores as a flat ``array("l")`` — the six CSR arrays, the
    #: node-label codes, and the two degree arrays.
    ARENA_FIELDS = (
        "label_codes",
        "out_offsets",
        "out_nbrs",
        "out_labs",
        "in_offsets",
        "in_nbrs",
        "in_labs",
        "out_deg",
        "in_deg",
    )

    @property
    def mapped(self) -> bool:
        """Whether the primary arrays are views into a shared arena."""
        return self.arena is not None

    def arena_nbytes(self) -> int:
        """Byte size of the contiguous arena :meth:`write_arena` fills."""
        return sum(
            len(getattr(self, name)) for name in self.ARENA_FIELDS
        ) * array(ARENA_TYPECODE).itemsize

    def identity_state(self) -> Tuple[List, List[str], List[str]]:
        """The non-array primary state an arena cannot carry.

        ``(node_ids, node_label_names, edge_label_names)`` — together
        with the arena bytes this is exactly :attr:`_PICKLED_FIELDS`, so
        ``from_arena(buffer, layout, identity)`` reconstructs the same
        snapshot a pickle round-trip would, minus the array copies.
        """
        return (self.node_ids, self.node_label_names, self.edge_label_names)

    def write_arena(self, buffer) -> Tuple[Tuple[str, int, int], ...]:
        """Lay the nine primary arrays contiguously into ``buffer``.

        ``buffer`` is any writable buffer of at least
        :meth:`arena_nbytes` bytes (a ``shared_memory`` segment's
        ``.buf``, a ``bytearray``, …).  Returns the layout — one
        ``(field, start, length)`` triple per array, positions in items
        of :data:`ARENA_TYPECODE` — which :meth:`from_arena` needs to
        reattach.  Works on materialised and mapped snapshots alike.
        """
        itemsize = array(ARENA_TYPECODE).itemsize
        view = memoryview(buffer)
        layout = []
        offset = 0
        for name in self.ARENA_FIELDS:
            arr = getattr(self, name)
            data = bytes(arr)
            view[offset : offset + len(data)] = data
            layout.append((name, offset // itemsize, len(arr)))
            offset += len(data)
        return tuple(layout)

    @classmethod
    def from_arena(
        cls,
        buffer,
        layout: Sequence[Tuple[str, int, int]],
        identity: Tuple[List, List[str], List[str]],
        keep_alive=None,
    ) -> "GraphSnapshot":
        """Attach a snapshot over an arena *without copying* it.

        The primary arrays become read-only ``memoryview`` slices of
        ``buffer``; derived indices are rebuilt locally (the same
        ``O(|V| + |E|)`` pass unpickling runs).  ``identity`` is
        :meth:`identity_state` of the snapshot that wrote the arena.
        ``keep_alive`` (e.g. a ``SharedMemory`` handle) is retained on
        :attr:`arena` so the mapping outlives the caller's reference;
        without it the buffer itself is retained.  The views stay valid
        only while the backing buffer does — close/unlink the segment
        only after dropping the snapshot or calling :meth:`materialise`.
        """
        snap = object.__new__(cls)
        node_ids, node_label_names, edge_label_names = identity
        snap.node_ids = list(node_ids)
        snap.node_label_names = list(node_label_names)
        snap.edge_label_names = list(edge_label_names)
        view = memoryview(buffer)
        if not view.readonly:
            view = view.toreadonly()
        typed = view.cast(ARENA_TYPECODE)
        fields = {}
        for name, start, length in layout:
            fields[name] = typed[start : start + length]
        for name in cls._PICKLED_FIELDS:
            if name in fields:
                setattr(snap, name, fields[name])
        snap.arena = keep_alive if keep_alive is not None else buffer
        snap._derive_indices()
        # The degree arrays are derivable (and _derive_indices just
        # rebuilt them); rebind to the mapped views so all nine primaries
        # genuinely share the arena's storage.
        snap.out_deg = fields["out_deg"]
        snap.in_deg = fields["in_deg"]
        return snap

    def materialise(self) -> "GraphSnapshot":
        """Copy mapped primaries into private storage; release the arena.

        No-op on an already-materialised snapshot.  After this the
        snapshot no longer references its backing buffer, so the shared
        segment can be closed/unlinked safely.
        """
        if self.arena is None:
            return self
        for name in self.ARENA_FIELDS:
            value = getattr(self, name)
            if isinstance(value, memoryview):
                setattr(self, name, array(ARENA_TYPECODE, value))
        self.arena = None
        return self

    # ------------------------------------------------------------------
    # delta maintenance (incremental index patching)
    # ------------------------------------------------------------------
    def apply_delta(self, ops: Sequence[Tuple]) -> None:
        """Patch this snapshot in place with a structural delta.

        ``ops`` is a sequence of update tuples, in application order:

        * ``("node+", node, label)`` — insert a fresh node;
        * ``("node-", node)`` — remove a node (its incident edges must
          already be gone, i.e. preceded by their ``edge-`` ops — exactly
          the order ``PropertyGraph.remove_node`` records);
        * ``("relabel", node, label)`` — change a node's label;
        * ``("edge+", src, dst, label)`` / ``("edge-", src, dst, label)``;
        * ``("attr", ...)`` — ignored (snapshots index structure only).

        Edge and node-insert ops are surgical: only the touched CSR rows
        and their derived entries (slices, uniq, histograms, degrees, the
        affected edge/adjacency-set and pair-index memberships) are
        recomputed — ``O(deg)`` dict/set work per op, plus two
        array-level shifts per edge op (a ``memmove`` of the flat
        neighbour arrays and an ``O(|V|)`` bulk rewrite of the offset
        array).  That is far below the ``O(|V| + |E|)`` dict/set churn of
        a full rebuild — every *derived* index stays warm — which is what
        lets :class:`~repro.core.incremental.IncrementalValidator` keep
        the indexed backend across updates.  Node removal is the honest
        exception: it compacts the interned index space and then
        re-derives (one ``O(|V| + |E|)`` pass).

        The result is semantically identical to ``GraphSnapshot(graph)``
        over the mutated graph (pinned by the differential suite in
        ``tests/test_snapshot_delta.py``); interned *codes* may differ —
        a delta never renumbers surviving labels, a rebuild re-interns in
        first-seen order.

        A *mapped* (arena-backed) snapshot is materialised first: row
        splicing needs ``insert``/``pop`` on the flat arrays, which a
        shared arena cannot provide — patching demotes the snapshot to a
        private local copy (see :meth:`materialise`).
        """
        if self.arena is not None:
            self.materialise()
        for op in ops:
            kind = op[0]
            if kind == "edge+":
                self._delta_edge(op[1], op[2], op[3], insert=True)
            elif kind == "edge-":
                self._delta_edge(op[1], op[2], op[3], insert=False)
            elif kind == "node+":
                self._delta_add_node(op[1], op[2])
            elif kind == "node-":
                self._delta_remove_node(op[1])
            elif kind == "relabel":
                self._delta_relabel(op[1], op[2])
            elif kind != "attr":
                raise ValueError(f"unknown snapshot delta op {kind!r}")

    def _intern_node_label(self, name: str) -> int:
        code = self.node_label_ids.get(name)
        if code is None:
            code = len(self.node_label_names)
            self.node_label_ids[name] = code
            self.node_label_names.append(name)
        return code

    def _intern_edge_label(self, name: str) -> int:
        code = self.edge_label_ids.get(name)
        if code is None:
            code = len(self.edge_label_names)
            self.edge_label_ids[name] = code
            self.edge_label_names.append(name)
        return code

    def _delta_add_node(self, node: NodeId, label: str) -> None:
        if node in self.index:
            raise ValueError(f"node {node!r} already indexed")
        idx = len(self.node_ids)
        self.node_ids.append(node)
        self.index[node] = idx
        code = self._intern_node_label(label)
        self.label_codes.append(code)
        self.nodes_by_label.setdefault(code, set()).add(idx)
        for offsets, slices, uniq, hist, deg in (
            (self.out_offsets, self.out_slices, self.out_uniq, self.out_hist,
             self.out_deg),
            (self.in_offsets, self.in_slices, self.in_uniq, self.in_hist,
             self.in_deg),
        ):
            offsets.append(offsets[-1])
            slices.append({})
            uniq.append(())
            hist.append({})
            deg.append(0)

    def _delta_remove_node(self, node: NodeId) -> None:
        idx = self.index.get(node)
        if idx is None:
            raise ValueError(f"unknown node {node!r}")
        if (
            self.out_offsets[idx] != self.out_offsets[idx + 1]
            or self.in_offsets[idx] != self.in_offsets[idx + 1]
        ):
            raise ValueError(
                f"node {node!r} still has incident edges; apply their "
                "edge- ops first"
            )
        self.node_ids.pop(idx)
        self.label_codes.pop(idx)
        self.out_offsets.pop(idx)
        self.in_offsets.pop(idx)
        # Interned indices above ``idx`` shift down by one: remap the CSR
        # neighbour arrays in one pass, then re-derive (the index space
        # itself changed, so every index-keyed structure must follow).
        for nbrs in (self.out_nbrs, self.in_nbrs):
            for pos, nbr in enumerate(nbrs):
                if nbr > idx:
                    nbrs[pos] = nbr - 1
        self._derive_indices()

    def _delta_relabel(self, node: NodeId, label: str) -> None:
        idx = self.index.get(node)
        if idx is None:
            raise ValueError(f"unknown node {node!r}")
        old = self.label_codes[idx]
        new = self._intern_node_label(label)
        if new == old:
            return
        members = self.nodes_by_label[old]
        members.discard(idx)
        if not members:
            del self.nodes_by_label[old]
        self.nodes_by_label.setdefault(new, set()).add(idx)
        self.label_codes[idx] = new
        # Every incident edge migrates between pair-index keys: the node
        # itself moves wholesale (it can no longer contribute under the
        # old label), each counterpart's membership under the old key is
        # recomputed from its own CSR row.
        label_codes = self.label_codes
        base, end = self.out_offsets[idx], self.out_offsets[idx + 1]
        for pos in range(base, end):
            code, nbr = self.out_labs[pos], self.out_nbrs[pos]
            # A self-loop's old key had the old label in *both* slots.
            old_key = (old, code, old if nbr == idx else label_codes[nbr])
            new_key = (new, code, label_codes[nbr])
            self._pair_discard(self.pair_src, old_key, idx)
            self.pair_src.setdefault(new_key, set()).add(idx)
            self.pair_dst.setdefault(new_key, set()).add(nbr)
            if not self._has_in_edge(nbr, code, old):
                self._pair_discard(self.pair_dst, old_key, nbr)
        base, end = self.in_offsets[idx], self.in_offsets[idx + 1]
        for pos in range(base, end):
            code, nbr = self.in_labs[pos], self.in_nbrs[pos]
            if nbr == idx:
                continue  # self-loop: fully handled by the out pass
            old_key = (label_codes[nbr], code, old)
            new_key = (label_codes[nbr], code, new)
            self._pair_discard(self.pair_dst, old_key, idx)
            self.pair_dst.setdefault(new_key, set()).add(idx)
            self.pair_src.setdefault(new_key, set()).add(nbr)
            if not self._has_out_edge(nbr, code, old):
                self._pair_discard(self.pair_src, old_key, nbr)

    def _delta_edge(
        self, src: NodeId, dst: NodeId, label: str, insert: bool
    ) -> None:
        src_idx = self.index.get(src)
        dst_idx = self.index.get(dst)
        if src_idx is None or dst_idx is None:
            missing = src if src_idx is None else dst
            raise ValueError(f"unknown node {missing!r}")
        code = (
            self._intern_edge_label(label)
            if insert
            else self.edge_label_ids.get(label)
        )
        if code is None or (
            insert == ((src_idx, dst_idx, code) in self.edge_set)
        ):
            raise ValueError(
                f"edge {src!r} -[{label}]-> {dst!r} "
                f"{'already indexed' if insert else 'not indexed'}"
            )
        self._splice_row(
            self.out_offsets, self.out_nbrs, self.out_labs, self.out_slices,
            self.out_uniq, self.out_hist, self.out_deg,
            src_idx, code, dst_idx, insert,
        )
        self._splice_row(
            self.in_offsets, self.in_nbrs, self.in_labs, self.in_slices,
            self.in_uniq, self.in_hist, self.in_deg,
            dst_idx, code, src_idx, insert,
        )
        key = (self.label_codes[src_idx], code, self.label_codes[dst_idx])
        if insert:
            self.edge_set.add((src_idx, dst_idx, code))
            self.adj_set.add((src_idx, dst_idx))
            self.pair_src.setdefault(key, set()).add(src_idx)
            self.pair_dst.setdefault(key, set()).add(dst_idx)
            self.num_edges += 1
        else:
            self.edge_set.remove((src_idx, dst_idx, code))
            if dst_idx not in self.out_uniq[src_idx]:
                self.adj_set.discard((src_idx, dst_idx))
            if not self._has_out_edge(src_idx, code, key[2]):
                self._pair_discard(self.pair_src, key, src_idx)
            if not self._has_in_edge(dst_idx, code, key[0]):
                self._pair_discard(self.pair_dst, key, dst_idx)
            self.num_edges -= 1

    def _splice_row(
        self, offsets, nbrs, labs, slices, uniq, hist, deg,
        row: int, code: int, nbr_idx: int, insert: bool,
    ) -> None:
        """Insert/remove one ``(code, nbr_idx)`` entry in a sorted CSR row."""
        base, end = offsets[row], offsets[row + 1]
        pos = base
        while pos < end and (labs[pos], nbrs[pos]) < (code, nbr_idx):
            pos += 1
        if insert:
            nbrs.insert(pos, nbr_idx)
            labs.insert(pos, code)
            shift = 1
        else:
            nbrs.pop(pos)
            labs.pop(pos)
            shift = -1
        # Bulk slice assignment beats an indexed += loop by a constant
        # factor, but the shift is still O(|V|) work per edge op.
        tail = offsets[row + 1 :]
        offsets[row + 1 :] = array("l", [value + shift for value in tail])
        new_base, new_end = offsets[row], offsets[row + 1]
        slices[row], uniq[row], hist[row] = self._derive_row(
            nbrs, labs, new_base, new_end
        )
        deg[row] = new_end - new_base

    def _has_out_edge(self, idx: int, code: int, dst_label: int) -> bool:
        """Whether ``idx`` has an out-edge ``code`` to a ``dst_label`` node."""
        base = self.out_offsets[idx]
        slc = self.out_slices[idx].get(code)
        if slc is None:
            return False
        label_codes = self.label_codes
        return any(
            label_codes[self.out_nbrs[pos]] == dst_label
            for pos in range(base + slc[0], base + slc[1])
        )

    def _has_in_edge(self, idx: int, code: int, src_label: int) -> bool:
        """Whether ``idx`` has an in-edge ``code`` from a ``src_label`` node."""
        base = self.in_offsets[idx]
        slc = self.in_slices[idx].get(code)
        if slc is None:
            return False
        label_codes = self.label_codes
        return any(
            label_codes[self.in_nbrs[pos]] == src_label
            for pos in range(base + slc[0], base + slc[1])
        )

    @staticmethod
    def _pair_discard(table, key, idx) -> None:
        members = table.get(key)
        if members is None:
            return
        members.discard(idx)
        if not members:
            del table[key]

    def memory_estimate(self) -> int:
        """Estimated resident bytes of this snapshot (primary + derived).

        The byte-level counterpart of the ``|V| + |E|`` size units the
        :class:`~repro.parallel.engine.BlockMaterialiser` LRU budget is
        measured in.  The per-node/per-edge constants approximate the
        CPython cost of the dict/set-heavy derived indices; the pickled
        payload (primary structures only) is guarded by tests to stay
        within 3× of this estimate, so shipping a snapshot never costs
        wildly more than holding it.
        """
        arrays = (
            self.label_codes,
            self.out_offsets,
            self.out_nbrs,
            self.out_labs,
            self.out_deg,
            self.in_offsets,
            self.in_nbrs,
            self.in_labs,
            self.in_deg,
        )
        estimate = sum(a.itemsize * len(a) for a in arrays)
        estimate += 80 * self.num_nodes  # node_ids, index, per-node dicts
        estimate += 96 * self.num_edges  # edge/adj sets, pair index, slices
        estimate += 64 * (
            len(self.node_label_names) + len(self.edge_label_names)
        )
        return estimate

    # ------------------------------------------------------------------
    # index-space API (matching hot path)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self.node_ids)

    @property
    def size(self) -> int:
        """``|V| + |E|`` — the paper's size measure."""
        return len(self.node_ids) + self.num_edges

    def index_of(self, node: NodeId) -> Optional[int]:
        """The interned index of ``node``, or ``None`` if absent."""
        return self.index.get(node)

    def node_of(self, idx: int) -> NodeId:
        """The original id of interned index ``idx``."""
        return self.node_ids[idx]

    def node_label_code(self, label: str) -> Optional[int]:
        """The interned id of node label ``label`` (``None`` if unseen)."""
        return self.node_label_ids.get(label)

    def edge_label_code(self, label: str) -> int:
        """Pattern-edge label -> interned code, wildcard- and absence-aware."""
        if label == WILDCARD:
            return WILD_CODE
        return self.edge_label_ids.get(label, ABSENT_CODE)

    def out_pool(self, idx: int, code: int):
        """Out-neighbours of ``idx`` over edge-label ``code`` (a sequence).

        ``WILD_CODE`` returns the deduplicated neighbour tuple; a concrete
        code returns the contiguous CSR slice (each neighbour at most once
        per label); ``ABSENT_CODE`` returns nothing.
        """
        if code >= 0:
            slc = self.out_slices[idx].get(code)
            if slc is None:
                return ()
            base = self.out_offsets[idx]
            return self.out_nbrs[base + slc[0] : base + slc[1]]
        if code == WILD_CODE:
            return self.out_uniq[idx]
        return ()

    def in_pool(self, idx: int, code: int):
        """In-neighbours of ``idx`` over edge-label ``code`` (see out_pool)."""
        if code >= 0:
            slc = self.in_slices[idx].get(code)
            if slc is None:
                return ()
            base = self.in_offsets[idx]
            return self.in_nbrs[base + slc[0] : base + slc[1]]
        if code == WILD_CODE:
            return self.in_uniq[idx]
        return ()

    def neighbour_pool(self, idx: int, code: int, out: bool):
        """Directional pool: ``out_pool``/``in_pool`` behind one knob.

        The factorised eliminator walks condensed edges whose direction
        is data (a per-constraint flag), not code shape — this keeps its
        inner loop branch-free on the caller side.
        """
        return self.out_pool(idx, code) if out else self.in_pool(idx, code)

    def edge_ok(self, src_idx: int, dst_idx: int, code: int) -> bool:
        """Whether edge ``src -> dst`` exists with label ``code``."""
        if code >= 0:
            return (src_idx, dst_idx, code) in self.edge_set
        if code == WILD_CODE:
            return (src_idx, dst_idx) in self.adj_set
        return False

    # ------------------------------------------------------------------
    # original-id API (mirrors PropertyGraph inspection)
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self.index

    def __len__(self) -> int:
        return len(self.node_ids)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over original node identifiers."""
        return iter(self.node_ids)

    def label(self, node: NodeId) -> str:
        """The label of ``node``."""
        return self.node_label_names[self.label_codes[self.index[node]]]

    def labels(self) -> Set[str]:
        """The set of node labels present.

        Computed from live memberships, not the intern table — a delta
        that removed a label's last node leaves its interned code behind
        but must not report the label as present.
        """
        names = self.node_label_names
        return {names[code] for code in self.nodes_by_label}

    def edge_labels(self) -> Set[str]:
        """The set of edge labels present (live, like :meth:`labels`)."""
        names = self.edge_label_names
        return {names[code] for _, code, _ in self.pair_src}

    def nodes_with_label(self, label: str) -> Set[NodeId]:
        """All original node ids carrying ``label``."""
        code = self.node_label_ids.get(label)
        if code is None:
            return set()
        ids = self.node_ids
        return {ids[idx] for idx in self.nodes_by_label.get(code, ())}

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(src, dst, label)`` triples in original ids."""
        ids = self.node_ids
        names = self.edge_label_names
        for src_idx in range(len(ids)):
            start, stop = self.out_offsets[src_idx], self.out_offsets[src_idx + 1]
            for pos in range(start, stop):
                yield (ids[src_idx], ids[self.out_nbrs[pos]], names[self.out_labs[pos]])

    def has_edge(self, src: NodeId, dst: NodeId, label: Optional[str] = None) -> bool:
        """Whether edge ``src -> dst`` exists (with ``label`` if given).

        ``label`` is literal, mirroring ``PropertyGraph.has_edge`` — the
        string ``"_"`` names a ``"_"``-labelled data edge here, not the
        pattern wildcard (pattern-label semantics live in
        :meth:`edge_label_code`/:meth:`edge_ok`).
        """
        src_idx = self.index.get(src)
        dst_idx = self.index.get(dst)
        if src_idx is None or dst_idx is None:
            return False
        if label is None:
            return (src_idx, dst_idx) in self.adj_set
        code = self.edge_label_ids.get(label)
        if code is None:
            return False
        return (src_idx, dst_idx, code) in self.edge_set

    def out_degree(self, node: NodeId) -> int:
        """Number of outgoing labelled edges of ``node``."""
        return self.out_deg[self.index[node]]

    def in_degree(self, node: NodeId) -> int:
        """Number of incoming labelled edges of ``node``."""
        return self.in_deg[self.index[node]]

    def neighbor_label_counts(self, node: NodeId, out: bool = True) -> Dict[str, int]:
        """Edge-label histogram of ``node`` (out or in) with string keys."""
        hist = (self.out_hist if out else self.in_hist)[self.index[node]]
        names = self.edge_label_names
        return {names[code]: count for code, count in hist.items()}

    def pair_nodes(
        self, src_label: str, edge_label: str, dst_label: str
    ) -> Tuple[Set[NodeId], Set[NodeId]]:
        """Original-id view of one pair-index entry: ``(sources, targets)``."""
        key = (
            self.node_label_ids.get(src_label),
            self.edge_label_ids.get(edge_label),
            self.node_label_ids.get(dst_label),
        )
        ids = self.node_ids
        return (
            {ids[idx] for idx in self.pair_src.get(key, ())},
            {ids[idx] for idx in self.pair_dst.get(key, ())},
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GraphSnapshot(|V|={self.num_nodes}, |E|={self.num_edges})"
