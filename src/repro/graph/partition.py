"""Graph fragmentation for the distributed setting (Section 6.2).

A *fragmentation* ``(F_1, ..., F_n)`` of ``G`` places each node on exactly
one fragment (its *owner*); every edge is stored on the owner fragment of
both endpoints, so ``∪E_i = E`` and ``∪V_i = V`` as the paper requires.
Each fragment tracks:

* **in-nodes** ``F_i.I`` — nodes owned by ``F_i`` with an incoming edge
  from another fragment, and
* **out-nodes** ``F_i.O`` — nodes owned elsewhere that a node of ``F_i``
  points to.

Nodes in either set are *border nodes*; their neighbourhoods straddle the
cut, which is what makes communication cost estimation (``B_z̄`` in
``disPar``) necessary.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from .graph import NodeId, PropertyGraph


class Fragment:
    """One fragment ``F_i`` of a fragmentation, resident at processor i."""

    def __init__(self, index: int, graph: PropertyGraph, owned: Set[NodeId]) -> None:
        self.index = index
        #: The local subgraph (owned nodes plus replicated border context).
        self.graph = graph
        #: Nodes this fragment owns (the partition block ``V_i``).
        self.owned = owned
        #: ``F_i.I`` — owned nodes with an in-edge from another fragment.
        self.in_nodes: Set[NodeId] = set()
        #: ``F_i.O`` — foreign nodes referenced by an out-edge from here.
        self.out_nodes: Set[NodeId] = set()

    @property
    def border_nodes(self) -> Set[NodeId]:
        """``F_i.I ∪ F_i.O``."""
        return self.in_nodes | self.out_nodes

    def owns(self, node: NodeId) -> bool:
        """Whether ``node``'s owner is this fragment."""
        return node in self.owned

    def snapshot(self):
        """The shard-local :class:`~repro.graph.snapshot.GraphSnapshot`.

        Indexes exactly this fragment's resident share — its owned nodes,
        every edge whose source it owns, and the stub copies of foreign
        endpoints those edges point at (the partition contract of
        :class:`Fragmentation`).  This is what a ``disVal`` worker matches
        against before any data is prefetched; cached per structural
        version like any graph snapshot, and pickle-friendly for shipping
        to worker processes.
        """
        return self.graph.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Fragment({self.index}, |owned|={len(self.owned)}, "
            f"|I|={len(self.in_nodes)}, |O|={len(self.out_nodes)})"
        )


class Fragmentation:
    """A fragmentation of ``G`` across ``n`` processors.

    ``owner`` maps every node of ``G`` to its fragment index.  The local
    subgraph of each fragment contains the nodes it owns, every edge whose
    source it owns, and stub copies (label + attributes) of foreign
    endpoints so edges are locally representable.
    """

    def __init__(self, graph: PropertyGraph, owner: Dict[NodeId, int], n: int) -> None:
        if n < 1:
            raise ValueError("need at least one fragment")
        missing = [node for node in graph.nodes() if node not in owner]
        if missing:
            raise ValueError(f"{len(missing)} nodes lack an owner")
        self.graph = graph
        self.owner = owner
        #: the graph's structural version when this fragmentation was cut
        #: (lets sessions detect that a fragmentation predates updates)
        self.built_version = graph._version
        self._fingerprint: Optional[Tuple] = None
        self.fragments: List[Fragment] = []
        for i in range(n):
            owned = {node for node, frag in owner.items() if frag == i}
            local = PropertyGraph()
            for node in owned:
                local.add_node(node, graph.label(node), dict(graph.attrs(node)))
            self.fragments.append(Fragment(i, local, owned))
        self._place_edges()

    def _place_edges(self) -> None:
        graph = self.graph
        for src, dst, label in graph.edges():
            src_frag = self.fragments[self.owner[src]]
            dst_frag = self.fragments[self.owner[dst]]
            if src_frag is dst_frag:
                src_frag.graph.add_edge(src, dst, label)
                continue
            # Cross-fragment edge: stored at the source's owner with a stub
            # for the foreign endpoint; border bookkeeping on both sides.
            if dst not in src_frag.graph:
                src_frag.graph.add_node(dst, graph.label(dst), dict(graph.attrs(dst)))
            src_frag.graph.add_edge(src, dst, label)
            src_frag.out_nodes.add(dst)
            dst_frag.in_nodes.add(dst)

    @property
    def n(self) -> int:
        """Number of fragments."""
        return len(self.fragments)

    def fingerprint(self) -> Tuple:
        """A stable identity for warm-session caching.

        Two fragmentations of the same graph with identical owner maps
        fingerprint equal (within one process), so a session recognises
        "consecutive runs reuse a fragmentation" even when the caller
        re-cut an identical partition rather than holding one object.
        """
        if self._fingerprint is None:
            owners = hash(tuple(sorted(self.owner.items(), key=repr)))
            self._fingerprint = (id(self.graph), self.n, owners)
        return self._fingerprint

    def fragment_of(self, node: NodeId) -> Fragment:
        """The fragment owning ``node``."""
        return self.fragments[self.owner[node]]

    def edge_cut(self) -> int:
        """Number of edges whose endpoints live on different fragments."""
        return sum(
            1
            for src, dst, _ in self.graph.edges()
            if self.owner[src] != self.owner[dst]
        )

    def balance(self) -> float:
        """max fragment size / mean fragment size (1.0 = perfectly even)."""
        sizes = [len(frag.owned) for frag in self.fragments]
        mean = sum(sizes) / len(sizes) if sizes else 0.0
        return max(sizes) / mean if mean else 1.0


def hash_partition(
    graph: PropertyGraph, n: int, seed: int = 0
) -> Fragmentation:
    """Hash-based fragmentation: deterministic, even block sizes.

    The default in the paper's distributed experiments ("assume w.l.o.g.
    that the sizes of F_i's are approximately equal").
    """
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    owner = {node: i % n for i, node in enumerate(nodes)}
    return Fragmentation(graph, owner, n)


def greedy_edge_cut_partition(
    graph: PropertyGraph, n: int, seed: int = 0
) -> Fragmentation:
    """Locality-aware fragmentation via greedy BFS growth.

    Grows ``n`` regions breadth-first from random seeds, capping each region
    at ``|V|/n`` (±1) nodes.  Produces a markedly lower edge cut than hash
    partitioning on graphs with community structure, which the communication
    benchmarks use to show ``disVal``'s sensitivity to the cut.
    """
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    if not nodes:
        return Fragmentation(graph, {}, n)
    capacity = [len(nodes) // n + (1 if i < len(nodes) % n else 0) for i in range(n)]
    owner: Dict[NodeId, int] = {}
    frontiers: List[List[NodeId]] = [[] for _ in range(n)]
    unassigned = set(nodes)

    def assign(node: NodeId, frag: int) -> None:
        owner[node] = frag
        capacity[frag] -= 1
        unassigned.discard(node)
        frontiers[frag].append(node)

    shuffled = nodes[:]
    rng.shuffle(shuffled)
    seed_iter = iter(shuffled)
    for i in range(n):
        for candidate in seed_iter:
            if candidate in unassigned:
                assign(candidate, i)
                break

    active = True
    while unassigned and active:
        active = False
        for i in range(n):
            if capacity[i] <= 0 or not frontiers[i]:
                continue
            node = frontiers[i].pop()
            neighbours = list(graph.out_neighbors(node)) + list(
                graph.in_neighbors(node)
            )
            for nbr in neighbours:
                if nbr in unassigned and capacity[i] > 0:
                    assign(nbr, i)
                    active = True
            if frontiers[i]:
                active = True
        if not active and unassigned:
            # Disconnected leftovers: round-robin into remaining capacity.
            for node in list(unassigned):
                frag = max(range(n), key=lambda i: capacity[i])
                assign(node, frag)
            break
    return Fragmentation(graph, owner, n)
