"""Graph simulation (Section 6.2, "partial detection").

``disVal`` estimates the number of partial matches of a pattern in a local
fragment with *graph simulation* [19]: a quadratic-time relaxation of
subgraph isomorphism.  A simulation relation ``S ⊆ V_Q × V`` relates every
pattern node to the graph nodes that can mimic its outgoing edges; it
over-approximates the nodes that can participate in an isomorphic match, so
its size bounds the partial-match volume without running the (exponential)
matcher.
"""

from __future__ import annotations

from typing import Dict, Set, TYPE_CHECKING

from .graph import NodeId, PropertyGraph, WILDCARD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..pattern.pattern import GraphPattern


def _label_compatible(pattern_label: str, node_label: str) -> bool:
    return pattern_label == WILDCARD or pattern_label == node_label


def graph_simulation(
    pattern: "GraphPattern", graph: PropertyGraph
) -> Dict[NodeId, Set[NodeId]]:
    """The maximum simulation relation of ``pattern`` in ``graph``.

    Returns ``{pattern node: {compatible graph nodes}}``; any pattern node
    with an empty image certifies that the pattern has **no** isomorphic
    match in the graph.  Runs in ``O(|Q| * |G|)`` per refinement round.
    """
    sim: Dict[NodeId, Set[NodeId]] = {}
    for u in pattern.nodes():
        label = pattern.label(u)
        if label == WILDCARD:
            sim[u] = set(graph.nodes())
        else:
            sim[u] = set(graph.nodes_with_label(label))

    changed = True
    while changed:
        changed = False
        for u in pattern.nodes():
            survivors: Set[NodeId] = set()
            for v in sim[u]:
                if _can_simulate(pattern, graph, u, v, sim):
                    survivors.add(v)
            if len(survivors) != len(sim[u]):
                sim[u] = survivors
                changed = True
    return sim


def _can_simulate(
    pattern: "GraphPattern",
    graph: PropertyGraph,
    u: NodeId,
    v: NodeId,
    sim: Dict[NodeId, Set[NodeId]],
) -> bool:
    """Whether graph node ``v`` still simulates pattern node ``u``.

    ``v`` must offer, for every outgoing (and incoming) pattern edge of
    ``u``, a neighbour that is still in the image of the pattern
    neighbour.  Checking both directions yields *dual* simulation, a
    tighter bound than plain forward simulation.
    """
    for u_next, elabel in pattern.out_edges(u):
        candidates = sim[u_next]
        found = False
        for v_next, labels in graph.out_neighbors(v).items():
            if v_next in candidates and _edge_label_match(elabel, labels):
                found = True
                break
        if not found:
            return False
    for u_prev, elabel in pattern.in_edges(u):
        candidates = sim[u_prev]
        found = False
        for v_prev, labels in graph.in_neighbors(v).items():
            if v_prev in candidates and _edge_label_match(elabel, labels):
                found = True
                break
        if not found:
            return False
    return True


def _edge_label_match(pattern_label: str, graph_labels: Set[str]) -> bool:
    return pattern_label == WILDCARD or pattern_label in graph_labels


def simulation_match_count_bound(
    pattern: "GraphPattern", graph: PropertyGraph
) -> int:
    """Upper bound on the number of isomorphic matches.

    The product of image sizes over pattern nodes — the quantity ``disVal``
    compares against a threshold when deciding between shipping data blocks
    and shipping partial matches.  Returns 0 when the simulation is empty.
    """
    sim = graph_simulation(pattern, graph)
    bound = 1
    for u in pattern.nodes():
        size = len(sim[u])
        if size == 0:
            return 0
        bound *= size
    return bound


def has_simulation_match(pattern: "GraphPattern", graph: PropertyGraph) -> bool:
    """Fast necessary condition for an isomorphic match to exist."""
    sim = graph_simulation(pattern, graph)
    return all(sim[u] for u in pattern.nodes())
