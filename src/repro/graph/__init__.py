"""Property-graph substrate: the data model of Section 2 plus everything
the validation algorithms need from it (neighbourhood blocks, statistics,
fragmentation, simulation, synthetic generation, serialisation)."""

from .graph import GraphError, PropertyGraph, WILDCARD, graph_from_edges
from .snapshot import GraphSnapshot
from .subgraph import (
    connected_components,
    eccentricity,
    k_hop_nodes,
    k_hop_size,
    k_hop_subgraph,
    undirected_distances,
)
from .statistics import (
    EquiDepthHistogram,
    balanced_ranges,
    candidates_in_range,
    degree_statistics,
    edge_label_frequencies,
    label_frequencies,
    skewness_ratio,
)
from .partition import Fragment, Fragmentation, greedy_edge_cut_partition, hash_partition
from .simulation import (
    graph_simulation,
    has_simulation_match,
    simulation_match_count_bound,
)
from .generators import (
    planted_pattern_graph,
    power_law_graph,
    skewed_power_law_graph,
    uniform_random_graph,
)
from .io import graph_from_dict, graph_to_dict, load_graph, save_graph

__all__ = [
    "GraphError",
    "GraphSnapshot",
    "PropertyGraph",
    "WILDCARD",
    "graph_from_edges",
    "connected_components",
    "eccentricity",
    "k_hop_nodes",
    "k_hop_size",
    "k_hop_subgraph",
    "undirected_distances",
    "EquiDepthHistogram",
    "balanced_ranges",
    "candidates_in_range",
    "degree_statistics",
    "edge_label_frequencies",
    "label_frequencies",
    "skewness_ratio",
    "Fragment",
    "Fragmentation",
    "greedy_edge_cut_partition",
    "hash_partition",
    "graph_simulation",
    "has_simulation_match",
    "simulation_match_count_bound",
    "planted_pattern_graph",
    "power_law_graph",
    "skewed_power_law_graph",
    "uniform_random_graph",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "save_graph",
]
