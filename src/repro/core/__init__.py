"""The paper's contribution: GFDs — syntax, semantics, static analyses
(satisfiability, implication), sequential validation, CFD encodings,
workload generation and discovery."""

from .literals import (
    ConstantLiteral,
    Literal,
    LiteralParseError,
    VariableLiteral,
    is_constant_literal,
    is_variable_literal,
    literal_variables,
    parse_literal,
    parse_literals,
)
from .gfd import GFD, GFDError, make_gfd, parse_gfd
from .satisfaction import (
    is_violation,
    match_satisfies,
    match_satisfies_all,
    match_satisfies_literal,
    satisfies_generic,
)
from .closure import EqualityClosure, Rule, literals_conflict, saturate
from .embedded import embedded_rule_set, embedded_rules
from .satisfiability import (
    build_model,
    canonical_graph,
    find_conflicting_host,
    is_satisfiable,
    trivially_satisfiable,
)
from .implication import counterexample, implies, minimal_cover
from .validation import (
    Violation,
    det_vio,
    make_violation,
    satisfies,
    violation_entities,
    violations_of,
)
from .cfd import CFD, FD, UNCONSTRAINED, relation_to_graph, type_requirement
from .generator import GFDGenerator, generate_gfds, mine_frequent_edges
from .discovery import (
    DiscoveredGFD,
    EvidenceAggregate,
    candidate_dependencies,
    candidate_patterns,
    canonical_matches,
    count_dependency,
    discover_gfds,
    probe_gfds,
    select_rules,
)
from .incremental import IncrementalValidator, apply_updates
from .typed import TypeSchema, is_satisfiable_typed, type_conflicts

__all__ = [
    "ConstantLiteral",
    "Literal",
    "LiteralParseError",
    "VariableLiteral",
    "is_constant_literal",
    "is_variable_literal",
    "literal_variables",
    "parse_literal",
    "parse_literals",
    "GFD",
    "GFDError",
    "make_gfd",
    "parse_gfd",
    "is_violation",
    "match_satisfies",
    "match_satisfies_all",
    "match_satisfies_literal",
    "satisfies_generic",
    "EqualityClosure",
    "Rule",
    "literals_conflict",
    "saturate",
    "embedded_rule_set",
    "embedded_rules",
    "build_model",
    "canonical_graph",
    "find_conflicting_host",
    "is_satisfiable",
    "trivially_satisfiable",
    "counterexample",
    "implies",
    "minimal_cover",
    "Violation",
    "det_vio",
    "make_violation",
    "satisfies",
    "violation_entities",
    "violations_of",
    "CFD",
    "FD",
    "UNCONSTRAINED",
    "relation_to_graph",
    "type_requirement",
    "GFDGenerator",
    "generate_gfds",
    "mine_frequent_edges",
    "DiscoveredGFD",
    "candidate_dependencies",
    "candidate_patterns",
    "canonical_matches",
    "count_dependency",
    "discover_gfds",
    "EvidenceAggregate",
    "probe_gfds",
    "select_rules",
    "IncrementalValidator",
    "apply_updates",
    "TypeSchema",
    "is_satisfiable_typed",
    "type_conflicts",
]
