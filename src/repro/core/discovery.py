"""GFD discovery (the paper's first "future work" topic, Section 8).

A pragmatic discovery algorithm in the spirit the conclusion sketches:
enumerate candidate patterns from frequent features, propose dependencies
over their matches, and keep those meeting *support* (enough matches
satisfy ``X``) and *confidence* (the fraction of ``X``-satisfying matches
that also satisfy ``Y``) thresholds.  Confidence 1.0 yields GFDs that hold
exactly on the input graph; slightly lower thresholds surface "almost"
dependencies whose violators are candidate errors.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph.graph import PropertyGraph
from ..matching.vf2 import SubgraphMatcher
from ..pattern.pattern import GraphPattern
from .gfd import GFD
from .generator import EdgeType, mine_frequent_edges
from .literals import ConstantLiteral, Literal, VariableLiteral
from .satisfaction import match_satisfies_all


@dataclass(frozen=True)
class DiscoveredGFD:
    """A mined GFD with its evidence."""

    gfd: GFD
    support: int
    confidence: float


def candidate_patterns(
    graph: PropertyGraph, max_edges: int = 2, top_edges: int = 5
) -> List[GraphPattern]:
    """Small candidate patterns built from frequent edge types.

    Single edges plus two-edge combinations sharing an endpoint — the
    pattern shapes that dominate real-world GFDs (99% of pattern
    components have radius ≤ 2, Section 5.2).
    """
    seeds = mine_frequent_edges(graph, top=top_edges)
    patterns: List[GraphPattern] = []
    for src_label, elabel, dst_label in seeds:
        single = GraphPattern()
        single.add_node("x", src_label)
        single.add_node("y", dst_label)
        single.add_edge("x", "y", elabel)
        patterns.append(single)
    if max_edges < 2:
        return patterns
    for first in seeds:
        for second in seeds:
            if first[0] == second[0]:  # shared source: x -a-> y, x -b-> z
                fan = GraphPattern()
                fan.add_node("x", first[0])
                fan.add_node("y", first[2])
                fan.add_node("z", second[2])
                fan.add_edge("x", "y", first[1])
                fan.add_edge("x", "z", second[1])
                if fan.num_edges == 2:
                    patterns.append(fan)
            if first[2] == second[0]:  # chain: x -a-> y -b-> z
                chain = GraphPattern()
                chain.add_node("x", first[0])
                chain.add_node("y", first[2])
                chain.add_node("z", second[2])
                chain.add_edge("x", "y", first[1])
                chain.add_edge("y", "z", second[1])
                if chain.num_edges == 2:
                    patterns.append(chain)
    # Deduplicate by signature.
    unique: Dict[Tuple, GraphPattern] = {}
    for pattern in patterns:
        unique.setdefault(pattern.signature(), pattern)
    return list(unique.values())


def candidate_dependencies(
    pattern: GraphPattern,
    graph: PropertyGraph,
    matches: Sequence[dict],
    max_attrs: int = 4,
) -> List[Tuple[Tuple[Literal, ...], Tuple[Literal, ...]]]:
    """Propose ``X → Y`` candidates from attributes seen on the matches."""
    attrs_by_var: Dict[str, Counter] = defaultdict(Counter)
    for match in matches[:200]:
        for var, node in match.items():
            attrs_by_var[var].update(graph.attrs(node).keys())
    out: List[Tuple[Tuple[Literal, ...], Tuple[Literal, ...]]] = []
    variables = pattern.variables
    for var1 in variables:
        for var2 in variables:
            if var1 >= var2:
                continue
            common = [
                attr
                for attr, _ in (attrs_by_var[var1] & attrs_by_var[var2]).most_common(
                    max_attrs
                )
            ]
            for lhs_attr in common:
                for rhs_attr in common:
                    if lhs_attr == rhs_attr:
                        continue
                    out.append(
                        (
                            (VariableLiteral(var1, lhs_attr, var2, lhs_attr),),
                            (VariableLiteral(var1, rhs_attr, var2, rhs_attr),),
                        )
                    )
    # Single-variable constant rules: X = ∅ → x.A = c (capital-style).
    for var in variables:
        for attr, _ in attrs_by_var[var].most_common(max_attrs):
            values = Counter(
                graph.get_attr(match[var], attr)
                for match in matches[:200]
                if graph.has_attr(match[var], attr)
            )
            if len(values) == 1:
                value = next(iter(values))
                out.append(((), (ConstantLiteral(var, attr, value),)))
    return out


def discover_gfds(
    graph: PropertyGraph,
    min_support: int = 5,
    min_confidence: float = 0.95,
    max_edges: int = 2,
    max_matches: int = 5000,
) -> List[DiscoveredGFD]:
    """Mine GFDs from ``graph``.

    ``min_support`` counts matches whose premise holds; ``min_confidence``
    is the fraction of those that also satisfy the conclusion.  Matching is
    capped at ``max_matches`` per candidate pattern to bound the cost.
    """
    results: List[DiscoveredGFD] = []
    for pattern in candidate_patterns(graph, max_edges=max_edges):
        matcher = SubgraphMatcher(pattern, graph)
        matches = []
        for match in matcher.matches(limit=max_matches):
            matches.append(match)
        if len(matches) < min_support:
            continue
        for lhs, rhs in candidate_dependencies(pattern, graph, matches):
            supported = 0
            satisfied = 0
            for match in matches:
                if match_satisfies_all(graph, match, lhs):
                    supported += 1
                    if match_satisfies_all(graph, match, rhs):
                        satisfied += 1
            if supported < min_support:
                continue
            confidence = satisfied / supported
            if confidence >= min_confidence:
                name = f"mined{len(results)}"
                results.append(
                    DiscoveredGFD(
                        gfd=GFD(pattern=pattern, lhs=lhs, rhs=rhs, name=name),
                        support=supported,
                        confidence=confidence,
                    )
                )
    return results
