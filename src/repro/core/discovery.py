"""GFD discovery (the paper's first "future work" topic, Section 8).

A pragmatic discovery algorithm in the spirit the conclusion sketches:
enumerate candidate patterns from frequent features, propose dependencies
over their matches, and keep those meeting *support* (enough matches
satisfy ``X``) and *confidence* (the fraction of ``X``-satisfying matches
that also satisfy ``Y``) thresholds.  Confidence 1.0 yields GFDs that hold
exactly on the input graph; slightly lower thresholds surface "almost"
dependencies whose violators are candidate errors.

This module holds the *primitives* — pattern proposal, match
canonicalisation, dependency proposal, support/confidence counting — plus
the serial reference orchestration :func:`discover_gfds`.  The
session-backed parallel orchestration
(:meth:`repro.session.ValidationSession.discover`) composes the same
primitives into work units over the parallel engine and is pinned to
produce the *identical* mined rule set.

Determinism contract
--------------------

The mined rule set (rules, names, supports, confidences) depends only on
the graph and the discovery parameters — never on match enumeration
order, matcher backend, or execution backend:

* evidence for dependency proposal is either *every* match (the default)
  or an explicit seeded sample drawn from the canonically-ordered match
  list (:func:`canonical_matches`);
* attribute rankings break frequency ties lexicographically instead of
  leaning on ``Counter`` insertion order;
* the ``max_matches`` cap selects a canonical prefix, not an
  enumeration-order prefix.
"""

from __future__ import annotations

import heapq
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..graph.graph import PropertyGraph
from ..matching.factorised import EVAL_MODES
from ..matching.vf2 import SubgraphMatcher
from ..pattern.pattern import GraphPattern
from .gfd import GFD
from .generator import mine_frequent_edges
from .literals import ConstantLiteral, Literal, VariableLiteral
from .satisfaction import match_satisfies_all

#: default evidence cap for dependency proposal — ``None`` aggregates over
#: every (capped) match, which is the strongest order-independent choice.
DEFAULT_SAMPLE_SIZE: Optional[int] = None


@dataclass(frozen=True)
class DiscoveredGFD:
    """A mined GFD with its evidence."""

    gfd: GFD
    support: int
    confidence: float


def candidate_patterns(
    graph: PropertyGraph, max_edges: int = 2, top_edges: int = 5
) -> List[GraphPattern]:
    """Small candidate patterns built from frequent edge types.

    Single edges plus two-edge combinations sharing an endpoint — the
    pattern shapes that dominate real-world GFDs (99% of pattern
    components have radius ≤ 2, Section 5.2).
    """
    seeds = mine_frequent_edges(graph, top=top_edges)
    patterns: List[GraphPattern] = []
    for src_label, elabel, dst_label in seeds:
        single = GraphPattern()
        single.add_node("x", src_label)
        single.add_node("y", dst_label)
        single.add_edge("x", "y", elabel)
        patterns.append(single)
    if max_edges < 2:
        return patterns
    for first in seeds:
        for second in seeds:
            if first[0] == second[0]:  # shared source: x -a-> y, x -b-> z
                fan = GraphPattern()
                fan.add_node("x", first[0])
                fan.add_node("y", first[2])
                fan.add_node("z", second[2])
                fan.add_edge("x", "y", first[1])
                fan.add_edge("x", "z", second[1])
                if fan.num_edges == 2:
                    patterns.append(fan)
            if first[2] == second[0]:  # chain: x -a-> y -b-> z
                chain = GraphPattern()
                chain.add_node("x", first[0])
                chain.add_node("y", first[2])
                chain.add_node("z", second[2])
                chain.add_edge("x", "y", first[1])
                chain.add_edge("y", "z", second[1])
                if chain.num_edges == 2:
                    patterns.append(chain)
    # Deduplicate by signature.
    unique: Dict[Tuple, GraphPattern] = {}
    for pattern in patterns:
        unique.setdefault(pattern.signature(), pattern)
    return list(unique.values())


def probe_gfds(patterns: Sequence[GraphPattern]) -> List[GFD]:
    """Wrap candidate patterns as dependency-free *probe* GFDs.

    A probe carries only the topological constraint (``∅ → ∅``), so the
    parallel engine's workload/grouping machinery — pivot vectors, shared
    isomorphism groups, data blocks — applies to mining verbatim: one
    probe's match enumeration serves every dependency candidate of every
    pattern isomorphic to it.
    """
    return [
        GFD(pattern=pattern, lhs=(), rhs=(), name=f"cand{index}")
        for index, pattern in enumerate(patterns)
    ]


def match_items_key(items) -> Tuple:
    """Total, type-safe order on var-sorted ``((var, node), ...)`` tuples.

    The single source of the canonical match order: serial mining, the
    coordinator's capped selection and the workers' per-unit capped
    selection (:mod:`repro.parallel.engine`) must all sort by the *same*
    key, or capped session mining would silently diverge from serial.
    """
    return tuple((var, repr(node)) for var, node in items)


def match_sort_key(match: Mapping) -> Tuple:
    """A total, type-safe order on matches (var → node mappings)."""
    return match_items_key(sorted(match.items()))


def canonical_matches(
    matches, cap: Optional[int] = None
) -> List[dict]:
    """Matches in canonical order, optionally truncated to ``cap``.

    The order (and hence the capped selection) depends only on the match
    *set*, never on how the matches were enumerated — the property every
    downstream discovery decision relies on.  ``matches`` may be any
    iterable (a lazy matcher enumeration included); with a ``cap`` the
    selection runs as a bounded heap, so memory stays ``O(cap)`` however
    many matches the pattern has.
    """
    if cap is not None:
        ordered = heapq.nsmallest(cap, matches, key=match_sort_key)
    else:
        ordered = sorted(matches, key=match_sort_key)
    return [dict(match) for match in ordered]


def _ranked_attrs(counter: Counter, limit: int) -> List[str]:
    """Top ``limit`` attrs by count, frequency ties broken by name."""
    ranked = sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))
    return [attr for attr, _ in ranked[:limit]]


class EvidenceAggregate:
    """Mergeable proposal evidence — a compact aggregate over matches.

    Dependency proposal (:func:`candidate_dependencies`) is an aggregate
    query over the match set, in the FAQ sense: everything it reads from
    the matches folds into per-variable tables that merge associatively.
    Workers therefore fold their units' matches into one of these and
    ship it instead of the ``O(matches)`` match list (see
    ``repro.parallel.engine._execute_mine``); the coordinator merges the
    units' aggregates and proposes from the result.

    Two tables, both in the enumerated (leader) variable space:

    * ``attrs`` — per variable, attribute → number of matches whose
      matched node carries the attribute (the counter
      :func:`candidate_dependencies` ranks and intersects);
    * ``values`` — per ``(variable, attribute)``, the distinct-value
      summary constant-rule proposal needs: ``(value,)`` while exactly
      one distinct value has been seen, :data:`MANY` (``None``) as soon
      as a second appears.  Proposal only asks "exactly one distinct
      value, and which" — this two-state table answers that exactly,
      stays ``O(1)`` per attribute however wild the value domain, and
      is trivially order-independent to fold.

    Equivalence contract: ``propose(pattern, max_attrs)`` over the fold
    of a match list equals ``candidate_dependencies`` over that list —
    *by construction*, because :func:`candidate_dependencies` itself now
    folds its evidence through this class.  ``merge`` is associative and
    commutative, so any unit partition of the match multiset (pivot
    candidates partition it exactly) aggregates to the same proposals;
    ``tests/test_discovery_aggregates.py`` locks both properties in.
    """

    #: the ``values`` state for "more than one distinct value seen" —
    #: must merge as an absorbing element, hence a sentinel rather than
    #: retained exemplars.
    MANY = None

    __slots__ = ("count", "attrs", "values")

    def __init__(self) -> None:
        self.count = 0
        self.attrs: Dict[str, Counter] = {}
        self.values: Dict[Tuple[str, str], Optional[Tuple]] = {}

    # -- folding -------------------------------------------------------
    def add(self, graph: PropertyGraph, match: Mapping) -> None:
        """Fold one match (``graph`` may be any block containing it)."""
        self.count += 1
        for var, node in match.items():
            node_attrs = graph.attrs(node)
            if not node_attrs:
                continue
            counter = self.attrs.get(var)
            if counter is None:
                counter = self.attrs.setdefault(var, Counter())
            counter.update(node_attrs.keys())
            for attr, value in node_attrs.items():
                key = (var, attr)
                current = self.values.get(key, ())
                if current == ():
                    self.values[key] = (value,)
                elif current is not self.MANY and current[0] != value:
                    self.values[key] = self.MANY

    @classmethod
    def from_matches(
        cls, graph: PropertyGraph, matches: Sequence[Mapping]
    ) -> "EvidenceAggregate":
        agg = cls()
        for match in matches:
            agg.add(graph, match)
        return agg

    # -- merging / renaming --------------------------------------------
    def merge(self, other: "EvidenceAggregate") -> "EvidenceAggregate":
        """Fold ``other`` in (associative, commutative); returns self."""
        self.count += other.count
        for var, counter in other.attrs.items():
            mine = self.attrs.get(var)
            if mine is None:
                self.attrs[var] = Counter(counter)
            else:
                mine.update(counter)
        for key, values in other.values.items():
            current = self.values.get(key, ())
            if current == ():
                self.values[key] = values
            elif current is not self.MANY and (
                values is self.MANY or values[0] != current[0]
            ):
                self.values[key] = self.MANY
        return self

    def rename(self, iso: Mapping[str, str]) -> "EvidenceAggregate":
        """The same evidence in another variable space (``var → iso[var]``).

        Isomorphism-group members see the leader's matches through their
        variable alignment; renaming the aggregate's keys is the
        aggregate-side image of translating every match.
        """
        renamed = EvidenceAggregate()
        renamed.count = self.count
        renamed.attrs = {
            iso[var]: Counter(counter) for var, counter in self.attrs.items()
        }
        renamed.values = {
            (iso[var], attr): values
            for (var, attr), values in self.values.items()
        }
        return renamed

    # -- wire format ---------------------------------------------------
    def to_payload(self) -> tuple:
        """A deterministic, value-comparable (and compact) wire form."""
        return (
            self.count,
            tuple(
                (var, tuple(sorted(counter.items())))
                for var, counter in sorted(self.attrs.items())
            ),
            tuple(sorted(self.values.items(), key=lambda kv: kv[0])),
        )

    @classmethod
    def from_payload(cls, payload: tuple) -> "EvidenceAggregate":
        agg = cls()
        count, attrs, values = payload
        agg.count = count
        agg.attrs = {var: Counter(dict(items)) for var, items in attrs}
        agg.values = dict(values)
        return agg

    # -- proposal ------------------------------------------------------
    def propose(
        self, pattern: GraphPattern, max_attrs: int = 4
    ) -> List[Tuple[Tuple[Literal, ...], Tuple[Literal, ...]]]:
        """``X → Y`` candidates from this evidence (canonical order)."""
        return self.propose_for_variables(pattern.variables, max_attrs)

    def propose_for_variables(
        self, variables: Sequence[str], max_attrs: int = 4
    ) -> List[Tuple[Tuple[Literal, ...], Tuple[Literal, ...]]]:
        """Propose over an explicit variable order.

        Exactly :func:`candidate_dependencies`' proposal loop, reading
        the aggregate tables instead of re-scanning matches.  Fully
        deterministic in ``(aggregate, variables, max_attrs)`` — which
        is what lets discovery's counting phase ship the aggregate and
        have workers *re-derive* the identical candidate list (same
        positions, same literals) instead of shipping ``O(proposals)``
        literal objects per work unit.
        """
        empty: Counter = Counter()
        out: List[Tuple[Tuple[Literal, ...], Tuple[Literal, ...]]] = []
        for var1 in variables:
            for var2 in variables:
                if var1 >= var2:
                    continue
                common = _ranked_attrs(
                    self.attrs.get(var1, empty) & self.attrs.get(var2, empty),
                    max_attrs,
                )
                for lhs_attr in common:
                    for rhs_attr in common:
                        if lhs_attr == rhs_attr:
                            continue
                        out.append(
                            (
                                (VariableLiteral(var1, lhs_attr, var2, lhs_attr),),
                                (VariableLiteral(var1, rhs_attr, var2, rhs_attr),),
                            )
                        )
        # Single-variable constant rules: X = ∅ → x.A = c (capital-style).
        for var in variables:
            for attr in _ranked_attrs(self.attrs.get(var, empty), max_attrs):
                values = self.values.get((var, attr), ())
                if values is not self.MANY and len(values) == 1:
                    out.append(((), (ConstantLiteral(var, attr, values[0]),)))
        return out


def candidate_dependencies(
    pattern: GraphPattern,
    graph: PropertyGraph,
    matches: Sequence[Mapping],
    max_attrs: int = 4,
    sample_size: Optional[int] = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
) -> List[Tuple[Tuple[Literal, ...], Tuple[Literal, ...]]]:
    """Propose ``X → Y`` candidates from attributes seen on the matches.

    Evidence is every match by default; ``sample_size`` makes the sample
    explicit and ``seed`` makes it reproducible — the sample is drawn
    from the canonically-ordered match list, so the proposed (and hence
    mined) rule set never depends on enumeration order or backend.  (The
    old implicit ``matches[:200]`` prefix did, and could differ between
    backends.)

    The evidence is folded through an :class:`EvidenceAggregate` — the
    same fold workers apply unit-locally in parallel mining — so
    aggregate-based and match-list-based proposal agree by construction.
    """
    evidence: Sequence[Mapping] = matches
    if sample_size is not None and len(matches) > sample_size:
        rng = random.Random(seed)
        evidence = rng.sample(canonical_matches(matches), sample_size)
    aggregate = EvidenceAggregate.from_matches(graph, evidence)
    return aggregate.propose(pattern, max_attrs)


def count_dependency(
    graph: PropertyGraph,
    matches: Sequence[Mapping],
    lhs: Tuple[Literal, ...],
    rhs: Tuple[Literal, ...],
) -> Tuple[int, int]:
    """``(supported, satisfied)`` for one candidate over ``matches``.

    ``supported`` counts matches whose premise ``X`` holds; ``satisfied``
    those that additionally satisfy the conclusion ``Y``.  ``graph`` may
    be the full graph or any subgraph containing the matched nodes (a
    data block) — attribute lookups agree either way.
    """
    supported = 0
    satisfied = 0
    for match in matches:
        if match_satisfies_all(graph, match, lhs):
            supported += 1
            if match_satisfies_all(graph, match, rhs):
                satisfied += 1
    return supported, satisfied


def select_rules(
    selected: Sequence[
        Tuple[GraphPattern, Tuple[Tuple[Literal, ...], Tuple[Literal, ...]], int, int]
    ],
    min_support: int,
    min_confidence: float,
) -> List[DiscoveredGFD]:
    """Apply the support/confidence thresholds and name the survivors.

    ``selected`` lists ``(pattern, (lhs, rhs), supported, satisfied)``
    in proposal order; names are assigned in that order (``mined0``,
    ``mined1``, …), exactly as the serial loop always did — shared so
    serial and session-backed discovery agree byte-for-byte.
    """
    results: List[DiscoveredGFD] = []
    for pattern, (lhs, rhs), supported, satisfied in selected:
        if supported < min_support or not supported:
            # The second clause matters only for min_support <= 0:
            # a premise no match satisfies has no confidence to speak
            # of (and would divide by zero), so it never survives.
            continue
        confidence = satisfied / supported
        if confidence < min_confidence:
            continue
        results.append(
            DiscoveredGFD(
                gfd=GFD(
                    pattern=pattern,
                    lhs=lhs,
                    rhs=rhs,
                    name=f"mined{len(results)}",
                ),
                support=supported,
                confidence=confidence,
            )
        )
    return results


def discover_gfds(
    graph: PropertyGraph,
    min_support: int = 5,
    min_confidence: float = 0.95,
    max_edges: int = 2,
    max_matches: int = 5000,
    top_edges: int = 5,
    max_attrs: int = 4,
    sample_size: Optional[int] = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
    backend: str = "auto",
    eval_mode: str = "auto",
) -> List[DiscoveredGFD]:
    """Mine GFDs from ``graph`` — the serial reference implementation.

    ``min_support`` counts matches whose premise holds; ``min_confidence``
    is the fraction of those that also satisfy the conclusion.
    ``max_matches`` caps the matches *counted* per candidate pattern; the
    cap selects a canonical prefix (see :func:`canonical_matches`), so
    the mined set is independent of enumeration order.  When the cap
    bites, support and confidence describe the canonical subset only —
    a confidence-1.0 rule may still be violated by uncounted matches
    (:attr:`repro.session.DiscoveryRun.capped_rules` flags these on the
    session path).  ``backend`` selects the matcher backend
    (``auto``/``legacy``/``snapshot``) — pinned by tests to be
    result-invisible.

    ``eval_mode`` selects how evidence and support/confidence tallies
    are computed (pinned by tests to be result-invisible too):
    ``"auto"`` answers the aggregate queries by factorised variable
    elimination — no match enumeration at all — whenever the pattern
    factorises, the cap does not bite, and no explicit evidence sample
    was requested; ``"enumerate"`` forces the match-list path;
    ``"factorised"`` forces elimination and raises when it cannot apply.

    For parallel, warm-engine mining over the same primitives use
    :meth:`repro.session.ValidationSession.discover`, which produces the
    identical mined rule set.
    """
    if eval_mode not in EVAL_MODES:
        raise ValueError(f"unknown eval mode {eval_mode!r}")
    if eval_mode == "factorised" and sample_size is not None:
        raise ValueError(
            "eval_mode='factorised' cannot honour an explicit evidence "
            "sample (sampling draws from materialised matches)"
        )
    tallies = []
    for pattern in candidate_patterns(
        graph, max_edges=max_edges, top_edges=top_edges
    ):
        matcher = SubgraphMatcher(pattern, graph, backend=backend)
        plan = None
        if eval_mode != "enumerate" and sample_size is None:
            plan = matcher.factorised_plan()
            if plan is None and eval_mode == "factorised":
                raise ValueError(
                    "eval_mode='factorised' but a candidate pattern does "
                    "not factorise (cyclic structure or legacy backend)"
                )
        if plan is not None:
            count, aggregate = matcher.evidence(eval_mode="factorised")
            if min(count, max_matches) < min_support:
                continue
            if count <= max_matches:
                deps = aggregate.propose(pattern, max_attrs)
                for (lhs, rhs), (supported, satisfied) in zip(
                    deps,
                    matcher.dependency_tallies(deps, eval_mode=eval_mode),
                ):
                    tallies.append(
                        (pattern, (lhs, rhs), supported, satisfied)
                    )
                continue
            # The cap bites: tallies are defined over the canonical
            # prefix of the match set, which factorised aggregates
            # cannot see — fall through to enumeration.
        # The lazy enumeration feeds a bounded heap: O(max_matches)
        # memory however many matches the pattern has.
        matches = canonical_matches(matcher.matches(), cap=max_matches)
        if len(matches) < min_support:
            continue
        for lhs, rhs in candidate_dependencies(
            pattern, graph, matches,
            max_attrs=max_attrs, sample_size=sample_size, seed=seed,
        ):
            supported, satisfied = count_dependency(graph, matches, lhs, rhs)
            tallies.append((pattern, (lhs, rhs), supported, satisfied))
    return select_rules(tallies, min_support, min_confidence)
