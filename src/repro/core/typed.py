"""Satisfiability and implication *in the presence of types* (§8).

The paper's third future-work topic: "re-investigate the satisfiability
and implication problems for GFDs in the presence of types and other
semantic constraints commonly found in knowledge bases".  Section 3 notes
that bare GFDs cannot enforce finite domains — and Section 4 stresses that
the CFD satisfiability lower bound needs exactly that power (finite-domain
attributes).  This module adds it:

A :class:`TypeSchema` declares, per (node label, attribute), a finite
domain of admissible values.  Under a schema, a set Σ can be unsatisfiable
even when classically satisfiable — e.g. rules forcing ``x.flag`` to a
value outside a Boolean domain, or CFD-style interactions where every
domain value triggers a clash (the relational lower-bound gadget).

The decision procedure extends the canonical-model construction: after
saturating the ground rules, every forced constant must sit inside its
attribute's domain; additionally, *case-split* rules fire — if attribute
``x.A`` ranges over ``{a, b}`` and both the ``x.A = a`` and ``x.A = b``
branches force a conflict, Σ is unsatisfiable under the schema.  The
split search is exponential in the number of constrained premise
attributes (satisfiability is already coNP-hard), but bounded by
``max_splits``.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.graph import PropertyGraph
from .closure import EqualityClosure, Rule, saturate
from .gfd import GFD
from .literals import ConstantLiteral, Literal
from .satisfiability import canonical_graph, _ground_rules


class TypeSchema:
    """Finite-domain declarations for (label, attribute) pairs.

    Example::

        schema = TypeSchema()
        schema.declare("account", "is_fake", {"true", "false"})
    """

    def __init__(self) -> None:
        self._domains: Dict[Tuple[str, str], FrozenSet[Any]] = {}

    def declare(self, label: str, attr: str, domain: Set[Any]) -> None:
        """Restrict attribute ``attr`` of ``label`` nodes to ``domain``."""
        if not domain:
            raise ValueError("domain must be non-empty")
        self._domains[(label, attr)] = frozenset(domain)

    def domain(self, label: str, attr: str) -> Optional[FrozenSet[Any]]:
        """The declared domain, or ``None`` when unconstrained."""
        return self._domains.get((label, attr))

    def __len__(self) -> int:
        return len(self._domains)

    def items(self):
        """Iterate over ``((label, attr), domain)`` declarations."""
        return self._domains.items()

    def conforms(self, graph: PropertyGraph) -> List[Tuple[Any, str, Any]]:
        """Violations of the schema in a graph: ``(node, attr, value)``."""
        out = []
        for (label, attr), domain in self._domains.items():
            for node in graph.nodes_with_label(label):
                value = graph.get_attr(node, attr)
                if value is not None and value not in domain:
                    out.append((node, attr, value))
        return out


def is_satisfiable_typed(
    sigma: Sequence[GFD],
    schema: TypeSchema,
    max_splits: int = 6,
) -> bool:
    """Whether Σ has a model that also conforms to ``schema``.

    Extends :func:`repro.core.satisfiability.is_satisfiable` with
    finite-domain reasoning (see the module docstring).  Without any
    declarations this coincides with the classical check.
    """
    sigma = list(sigma)
    if not sigma:
        return True
    graph, _ = canonical_graph(sigma)
    rules = _ground_rules(sigma, graph)
    node_labels = {str(node): graph.label(node) for node in graph.nodes()}
    return _branch_satisfiable(
        rules, node_labels, schema, seed=(), splits_left=max_splits
    )


def _branch_satisfiable(
    rules: Sequence[Rule],
    node_labels: Dict[str, str],
    schema: TypeSchema,
    seed: Tuple[Literal, ...],
    splits_left: int,
) -> bool:
    closure = saturate(rules, seed=seed)
    if closure.conflicting:
        return False
    if _domain_violation(closure, node_labels, schema):
        return False
    if splits_left <= 0:
        # Cannot refute by further case analysis: report satisfiable
        # (sound for SAT; may miss deeply-nested UNSAT interactions —
        # raise max_splits to push the frontier).
        return True

    split = _choose_split(rules, closure, node_labels, schema)
    if split is None:
        return True
    var, attr, domain = split
    return any(
        _branch_satisfiable(
            rules,
            node_labels,
            schema,
            seed=seed + (ConstantLiteral(var, attr, value),),
            splits_left=splits_left - 1,
        )
        for value in sorted(domain, key=repr)
    )


def _domain_violation(
    closure: EqualityClosure,
    node_labels: Dict[str, str],
    schema: TypeSchema,
) -> bool:
    """Whether any forced constant falls outside its declared domain."""
    for (label, attr), domain in schema.items():
        for var, node_label in node_labels.items():
            if node_label != label:
                continue
            constant = closure.constant_of(var, attr)
            if constant is not None and constant not in domain:
                return True
    return False


def _forced_terms(rules: Sequence[Rule], closure: EqualityClosure):
    """Attribute occurrences forced to *exist*: terms of fired conclusions.

    Domains constrain values, not existence — an attribute a model simply
    omits can never be case-split.  Only attributes some fired rule's RHS
    writes must carry a (domain) value.
    """
    forced: Set[Tuple[str, str]] = set()
    for rule in rules:
        if not closure.entails_all(rule.lhs):
            continue
        for literal in rule.rhs:
            if isinstance(literal, ConstantLiteral):
                forced.add((literal.var, literal.attr))
            else:
                forced.add((literal.var1, literal.attr1))
                forced.add((literal.var2, literal.attr2))
    return forced


def _choose_split(
    rules: Sequence[Rule],
    closure: EqualityClosure,
    node_labels: Dict[str, str],
    schema: TypeSchema,
) -> Optional[Tuple[str, str, FrozenSet[Any]]]:
    """A domain-constrained attribute forced to exist but not yet pinned.

    Case-splitting on such attributes is what lets the finite domain force
    rule firings — the essence of the CFD lower-bound gadget.  Returns
    ``None`` when no candidate exists (any other attribute may simply be
    absent in a model, so no further firing can be forced through it).
    """
    forced = _forced_terms(rules, closure)
    for rule in rules:
        if closure.entails_all(rule.lhs):
            continue  # already fired
        for literal in rule.lhs:
            if not isinstance(literal, ConstantLiteral):
                continue
            if closure.entails(literal):
                continue
            if (literal.var, literal.attr) not in forced:
                continue
            label = node_labels.get(literal.var)
            if label is None:
                continue
            domain = schema.domain(label, literal.attr)
            if domain is None:
                continue
            if closure.constant_of(literal.var, literal.attr) is not None:
                continue  # already pinned to some value
            return (literal.var, literal.attr, domain)
    return None


def type_conflicts(
    sigma: Sequence[GFD], schema: TypeSchema
) -> List[Tuple[str, str]]:
    """Rules whose RHS constants sit outside a declared domain.

    A cheap necessary check: ``(gfd name, literal repr)`` pairs for every
    conclusion that can never be written under the schema.
    """
    out: List[Tuple[str, str]] = []
    for gfd in sigma:
        for literal in gfd.rhs:
            if not isinstance(literal, ConstantLiteral):
                continue
            label = gfd.pattern.label(literal.var)
            domain = schema.domain(label, literal.attr)
            if domain is not None and literal.const not in domain:
                out.append((gfd.name or "gfd", str(literal)))
    return out
