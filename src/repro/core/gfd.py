"""GFDs — graph functional dependencies (Section 3).

A GFD is a pair ``φ = (Q[x̄], X → Y)``: a graph pattern imposing a
*topological constraint* (the scope of the dependency, playing the role a
relation schema plays for relational FDs) plus an *attribute dependency*
``X → Y`` over the pattern's variables.

GFDs subsume relational FDs and CFDs (see :mod:`repro.core.cfd`), and the
two syntactic fragments the paper singles out:

* **constant GFDs** — ``X`` and ``Y`` contain constant literals only
  (subsume constant CFDs);
* **variable GFDs** — ``X`` and ``Y`` contain variable literals only
  (analogous to traditional FDs).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, List, Tuple

from ..pattern.components import PivotVector, pivot_vector
from ..pattern.parser import parse_pattern
from ..pattern.pattern import GraphPattern
from .literals import (
    ConstantLiteral,
    Literal,
    is_constant_literal,
    is_variable_literal,
    parse_literals,
)


class GFDError(ValueError):
    """Raised for structurally invalid GFDs."""


@dataclass(frozen=True)
class GFD:
    """A graph functional dependency ``(Q[x̄], X → Y)``.

    ``X`` and ``Y`` are conjunctions (tuples) of literals over the
    pattern's variables; either may be empty.  ``name`` is an optional
    identifier used in violation reports.
    """

    pattern: GraphPattern
    lhs: Tuple[Literal, ...]
    rhs: Tuple[Literal, ...]
    name: str = ""

    def __post_init__(self) -> None:
        for literal in (*self.lhs, *self.rhs):
            for var in literal.variables():
                if var not in self.pattern:
                    raise GFDError(
                        f"literal {literal} uses variable {var!r} "
                        "not bound by the pattern"
                    )

    # ------------------------------------------------------------------
    # classification (Section 3, "Special cases")
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """Whether all literals are constant literals (a *constant GFD*)."""
        return all(
            is_constant_literal(l) for l in (*self.lhs, *self.rhs)
        )

    @property
    def is_variable(self) -> bool:
        """Whether all literals are variable literals (a *variable GFD*)."""
        return all(
            is_variable_literal(l) for l in (*self.lhs, *self.rhs)
        )

    @property
    def has_empty_lhs(self) -> bool:
        """Whether the GFD has the form ``(Q, ∅ → Y)`` (Corollary 4)."""
        return not self.lhs

    @property
    def is_tree_patterned(self) -> bool:
        """Whether ``Q`` is a forest (tractable cases, Cor. 4 and 8)."""
        return self.pattern.is_tree()

    # ------------------------------------------------------------------
    # derived forms
    # ------------------------------------------------------------------
    @cached_property
    def pivot(self) -> PivotVector:
        """The pivot vector ``PV(φ)`` (Section 5.2), computed once."""
        return pivot_vector(self.pattern)

    def normal_form(self) -> List["GFD"]:
        """Split into single-RHS-literal GFDs, dropping tautologies.

        Section 4.2: a GFD with ``|Y| > 1`` is equivalent to one GFD per
        literal of ``Y``; tautological literals (``x.A = x.A``) are
        trivially implied and removed.  An empty result means the GFD holds
        vacuously.
        """
        out = []
        for index, literal in enumerate(self.rhs):
            if literal.is_tautology():
                continue
            out.append(
                GFD(
                    pattern=self.pattern,
                    lhs=self.lhs,
                    rhs=(literal,),
                    name=f"{self.name or 'gfd'}#{index}",
                )
            )
        return out

    def rename(self, mapping: Dict[str, str]) -> "GFD":
        """The GFD with pattern variables and literals renamed by ``mapping``."""
        return GFD(
            pattern=self.pattern.rename(mapping),
            lhs=tuple(l.rename(mapping) for l in self.lhs),
            rhs=tuple(l.rename(mapping) for l in self.rhs),
            name=self.name,
        )

    @property
    def size(self) -> int:
        """``|φ|`` — pattern size plus literal count (complexity measure)."""
        return self.pattern.size + len(self.lhs) + len(self.rhs)

    def __str__(self) -> str:
        lhs = " & ".join(str(l) for l in self.lhs) or "∅"
        rhs = " & ".join(str(l) for l in self.rhs) or "∅"
        label = f"{self.name}: " if self.name else ""
        return f"{label}({self.pattern!r}, {lhs} → {rhs})"

    def __hash__(self) -> int:
        return hash((self.pattern.signature(), self.lhs, self.rhs))


def make_gfd(
    pattern: GraphPattern,
    lhs: Iterable[Literal] = (),
    rhs: Iterable[Literal] = (),
    name: str = "",
) -> GFD:
    """Construct a GFD from a pattern and literal iterables."""
    return GFD(pattern=pattern, lhs=tuple(lhs), rhs=tuple(rhs), name=name)


def denial(pattern: GraphPattern, name: str = "") -> GFD:
    """A denial constraint: the pattern must not match at all.

    The paper's GFD 1 (Fig. 7) encodes "a person cannot have y as both a
    child and a parent" as ``(Q, ∅ → x.val = c ∧ y.val = d)`` for distinct
    ``c, d`` — an unsatisfiable conclusion, so *every* match is a
    violation.  We use reserved constants no real data carries.
    """
    variables = pattern.variables
    first = variables[0]
    return GFD(
        pattern=pattern,
        lhs=(),
        rhs=(
            ConstantLiteral(first, "val", "⊤impossible"),
            ConstantLiteral(first, "val", "⊥impossible"),
        ),
        name=name or "denial",
    )


def parse_gfd(pattern_text: str, dependency_text: str, name: str = "") -> GFD:
    """Parse a GFD from the pattern DSL plus a dependency string.

    ``dependency_text`` has the form ``"X => Y"`` where each side is a
    comma-separated conjunction of literals (empty side = ∅)::

        parse_gfd("x:flight -from-> x2:city; y:flight -from-> y2:city; "
                  "x -number-> x1:id; y -number-> y1:id",
                  "x1.val = y1.val => x2.val = y2.val",
                  name="flight")
    """
    if "=>" not in dependency_text:
        raise GFDError(f"dependency needs '=>': {dependency_text!r}")
    lhs_text, rhs_text = dependency_text.split("=>", 1)
    return GFD(
        pattern=parse_pattern(pattern_text),
        lhs=parse_literals(lhs_text),
        rhs=parse_literals(rhs_text),
        name=name,
    )
