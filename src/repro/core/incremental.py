"""Incremental violation maintenance under graph updates.

The paper's related work ([17, 18]) maintains CFD violations under
relational updates; the GFD workload model makes the graph analogue
natural: by the locality of subgraph isomorphism (Section 5.2), a match of
``φ``'s pattern that gains or loses violation status after an update must
lie within ``c_Q`` hops of the touched nodes — so only the affected data
blocks need re-validation, not the whole graph.

:class:`IncrementalValidator` keeps ``Vio(Σ, G)`` current under four update
kinds — attribute set, edge insertion, edge deletion, node insertion.
Only matches *containing* a touched node can change status (an attribute
flip changes their literal values; an edge change creates or destroys them
through its endpoints), so maintenance drops exactly those stale verdicts
and re-enumerates exactly those matches — by pinning each pattern variable
to each touched node and letting the matcher's adjacency-driven search
complete the rest.  Cost is proportional to the match volume around the
touched nodes, independent of ``|G|`` (the ``test_incremental`` suite
asserts equality with from-scratch detection after every update, and
``bench_ablation`` measures the gap).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Set

from ..graph.graph import NodeId, PropertyGraph
from ..matching.vf2 import SubgraphMatcher
from .gfd import GFD
from .satisfaction import match_satisfies_all
from .validation import Violation, det_vio, make_violation


class UpdateDiff(set):
    """The violation delta of one update (or batch): added and removed.

    The set content *is* the added violations — callers that treat the
    return of :meth:`IncrementalValidator.set_attr` /
    :func:`apply_updates` as "the new violations" keep working verbatim —
    and :attr:`removed` carries the violations the update resolved.
    Both sides are exact deltas against the pre-update state:
    ``added ⊆ Vio_after - Vio_before`` and ``removed ⊆ Vio_before -
    Vio_after`` hold with equality, so ``added & removed == set()`` by
    construction and an add-then-remove of the same edge inside one
    batch folds to the empty diff.
    """

    __slots__ = ("removed",)

    def __init__(
        self,
        added: Iterable[Violation] = (),
        removed: Iterable[Violation] = (),
    ) -> None:
        super().__init__(added)
        self.removed: Set[Violation] = set(removed)

    @property
    def added(self) -> Set[Violation]:
        """The added violations as a plain set (== ``set(self)``)."""
        return set(self)

    def then(self, other: "UpdateDiff") -> "UpdateDiff":
        """Sequential composition: this diff, then ``other``.

        With ``(A, R)`` exact against state ``V0`` (giving ``V1``) and
        ``(a, r)`` exact against ``V1`` (giving ``V2``), the composition
        is exact against ``V0``::

            added   = (A - r) | (a - R)
            removed = (R - a) | (r - A)

        A violation introduced then resolved (or resolved then
        re-introduced) inside the window cancels out entirely, so
        telescoping a diff stream always reproduces ``V_final - V_0`` /
        ``V_0 - V_final`` exactly.
        """
        return UpdateDiff(
            (self - other.removed) | (set(other) - self.removed),
            (self.removed - set(other)) | (other.removed - self),
        )

    def apply(self, violations: Set[Violation]) -> Set[Violation]:
        """The violation set after this diff: ``(V - removed) | added``."""
        return (set(violations) - self.removed) | set(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UpdateDiff(added={len(self)}, removed={len(self.removed)})"


class IncrementalValidator:
    """Maintains ``Vio(Σ, G)`` while ``G`` is updated in place.

    Construct over a graph and rule set (pays one full ``detVio``), then
    route every update through the mutator methods::

        validator = IncrementalValidator(sigma, graph)
        validator.set_attr(node, "city", "Edi")
        validator.add_edge(u, v, "capital")
        print(validator.violations)

    The graph object is shared — do not mutate it behind the validator's
    back, or call :meth:`rebuild` afterwards.

    ``backend`` selects the matching backend for the update path.  The
    default ``"auto"`` runs on the indexed :class:`GraphSnapshot`: since
    snapshots became delta-maintained (``GraphSnapshot.apply_delta``),
    re-indexing after an update costs ``O(|Δ| · deg)`` rather than
    ``O(|G|)``, so the locality bound this class honours survives the
    indexed backend.  ``"legacy"`` forces the original dict-of-dicts
    walk (the differential suite pins both to identical violation sets).

    ``violations`` seeds the maintained set when the caller has already
    computed ``Vio(Σ, G)`` for the *current* graph (e.g. a
    :class:`~repro.session.ValidationSession` run), skipping the
    constructor's full ``detVio`` pass.
    """

    def __init__(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        backend: str = "auto",
        violations: Optional[Set[Violation]] = None,
    ) -> None:
        from ..matching.vf2 import BACKENDS

        if backend not in BACKENDS:
            raise ValueError(f"unknown matcher backend {backend!r}")
        self.sigma = list(sigma)
        names = [gfd.name or "gfd" for gfd in self.sigma]
        if len(set(names)) != len(names):
            # Stale-violation removal is keyed by GFD name.
            raise ValueError("incremental validation requires unique GFD names")
        self.graph = graph
        self.backend = backend
        self.violations: Set[Violation] = (
            set(violations)
            if violations is not None
            else det_vio(self.sigma, graph, backend=backend)
        )
        # Matchers are cached across updates: their candidate sets depend
        # only on labels and degrees, so attribute updates reuse them and
        # structural updates invalidate the cache.
        self._matchers: Dict[int, SubgraphMatcher] = {}

    # ------------------------------------------------------------------
    # update API
    # ------------------------------------------------------------------
    def set_attr(self, node: NodeId, attr: str, value: Any) -> UpdateDiff:
        """Set an attribute and refresh affected violations.

        Returns the update's :class:`UpdateDiff` — the set content is
        the newly-introduced violations, ``.removed`` the resolved ones.
        """
        self.graph.set_attr(node, attr, value)
        return self._refresh({node}, structural=False)

    def add_edge(self, src: NodeId, dst: NodeId, label: str) -> UpdateDiff:
        """Insert an edge and refresh affected violations."""
        self.graph.add_edge(src, dst, label)
        return self._refresh({src, dst}, structural=True)

    def remove_edge(self, src: NodeId, dst: NodeId, label: str) -> UpdateDiff:
        """Delete an edge and refresh affected violations."""
        self.graph.remove_edge(src, dst, label)
        return self._refresh({src, dst}, structural=True)

    def add_node(
        self, node: NodeId, label: str, attrs: Optional[Dict[str, Any]] = None
    ) -> UpdateDiff:
        """Insert a node (with attributes) and refresh affected violations."""
        self.graph.add_node(node, label, attrs)
        return self._refresh({node}, structural=True)

    def rebuild(self) -> None:
        """Recompute from scratch (after out-of-band mutations)."""
        self._matchers.clear()
        self.violations = det_vio(self.sigma, self.graph, backend=self.backend)

    def invalidate_matchers(self) -> None:
        """Drop cached matchers (their candidate sets went stale).

        For callers that already know the correct violation set for the
        current graph (e.g. a session reconciling after a full run) and
        only need the matcher caches refreshed, without paying
        :meth:`rebuild`'s full ``detVio``.
        """
        self._matchers.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _refresh(
        self, touched: Set[NodeId], structural: bool
    ) -> UpdateDiff:
        """Re-validate every GFD around the touched nodes.

        Only matches *containing* a touched node can change status (an
        attribute flip changes their literals; an edge change creates or
        destroys them through its endpoints), so exactly those verdicts
        are dropped and exactly those matches re-checked.  Returns the
        exact :class:`UpdateDiff`: ``fresh - stale`` appeared with this
        update, ``stale - fresh`` disappeared.
        """
        if structural:
            self._matchers.clear()
        diff = UpdateDiff()
        for index, gfd in enumerate(self.sigma):
            stale = {
                v
                for v in self.violations
                if v.gfd_name == (gfd.name or "gfd") and (v.nodes() & touched)
            }
            self.violations -= stale
            fresh = self._violations_touching(index, gfd, touched)
            self.violations |= fresh
            diff |= fresh - stale
            diff.removed |= stale - fresh
        return diff

    def _violations_touching(
        self, index: int, gfd: GFD, touched: Set[NodeId]
    ) -> Set[Violation]:
        """Violating matches containing at least one touched node.

        Every such match maps *some* pattern variable onto a touched node,
        so pinning each (label-compatible) variable to each touched node
        and letting the matcher's adjacency-driven search complete the
        rest enumerates them all — no data block is materialised, and the
        cost is proportional to the matches around the touched nodes
        rather than to any neighbourhood's size.
        """
        out: Set[Violation] = set()
        matcher = self._matchers.get(index)
        if matcher is None:
            # With backend="auto" this resolves to the graph's cached
            # snapshot, which apply_delta keeps current in O(|Δ| · deg)
            # per update — matcher construction (candidate seeding over
            # the warm index) is the only per-update rebuild cost.
            matcher = SubgraphMatcher(
                gfd.pattern, self.graph, backend=self.backend
            )
            self._matchers[index] = matcher
        graph = self.graph
        for node in touched:
            if node not in graph:
                continue  # e.g. endpoint of a removed structure
            for var in gfd.pattern.variables:
                for match in matcher.matches(fixed={var: node}):
                    if match_satisfies_all(graph, match, gfd.lhs) and not \
                            match_satisfies_all(graph, match, gfd.rhs):
                        out.add(make_violation(gfd, match))
        return out


def apply_updates(
    validator: IncrementalValidator,
    updates: Iterable[tuple],
) -> UpdateDiff:
    """Apply a batch of updates; returns the batch's :class:`UpdateDiff`.

    Update tuples: ``("attr", node, attr, value)``, ``("edge+", src, dst,
    label)``, ``("edge-", src, dst, label)``, ``("node", node, label,
    attrs)``.

    The per-op diffs are folded with :meth:`UpdateDiff.then`, so the
    result is exact against the *pre-batch* state: the set content is
    the violations the whole batch introduced, ``.removed`` the ones it
    resolved, and a violation that flickered inside the batch appears in
    neither.  Iterating the return as a plain set (the historical
    behaviour) still yields exactly the newly-introduced violations.
    """
    diff = UpdateDiff()
    for update in updates:
        kind = update[0]
        if kind == "attr":
            step = validator.set_attr(*update[1:])
        elif kind == "edge+":
            step = validator.add_edge(*update[1:])
        elif kind == "edge-":
            step = validator.remove_edge(*update[1:])
        elif kind == "node":
            step = validator.add_node(*update[1:])
        else:
            raise ValueError(f"unknown update kind {kind!r}")
        diff = diff.then(step)
    return diff
