"""GFD satisfaction semantics (Section 3).

A match ``h(x̄)`` *satisfies* a literal when the referenced attributes
exist and are equal:

* ``x.A = c`` — node ``h(x)`` has attribute ``A`` with value ``c``;
* ``x.A = y.B`` — both attributes exist and agree.

``h(x̄) ⊨ X → Y`` iff ``h(x̄) ⊨ Y`` whenever ``h(x̄) ⊨ X``.  Note the
asymmetry the paper stresses: a *missing* attribute in ``X`` makes the
premise fail, so the match trivially satisfies the GFD (accommodating
schemaless graphs), whereas a literal of ``Y`` *requires* the attribute to
exist.  ``G ⊨ φ`` iff every match of ``Q`` in ``G`` satisfies ``X → Y``.
"""

from __future__ import annotations

from typing import Iterable

from ..graph.graph import PropertyGraph
from ..matching.vf2 import Match
from .gfd import GFD
from .literals import ConstantLiteral, Literal, VariableLiteral

_MISSING = object()


def match_satisfies_literal(
    graph: PropertyGraph, match: Match, literal: Literal
) -> bool:
    """Whether ``h(x̄) ⊨ literal`` (attributes must exist and be equal)."""
    if isinstance(literal, ConstantLiteral):
        value = graph.get_attr(match[literal.var], literal.attr, _MISSING)
        return value is not _MISSING and value == literal.const
    value1 = graph.get_attr(match[literal.var1], literal.attr1, _MISSING)
    if value1 is _MISSING:
        return False
    value2 = graph.get_attr(match[literal.var2], literal.attr2, _MISSING)
    return value2 is not _MISSING and value1 == value2


def match_satisfies_all(
    graph: PropertyGraph, match: Match, literals: Iterable[Literal]
) -> bool:
    """Whether ``h(x̄) ⊨ Z`` for a conjunction ``Z`` (``∅`` holds trivially)."""
    return all(match_satisfies_literal(graph, match, l) for l in literals)


def match_satisfies(graph: PropertyGraph, match: Match, gfd: GFD) -> bool:
    """Whether ``h(x̄) ⊨ X → Y`` for the given match of the GFD's pattern."""
    if not match_satisfies_all(graph, match, gfd.lhs):
        return True
    return match_satisfies_all(graph, match, gfd.rhs)


def is_violation(graph: PropertyGraph, match: Match, gfd: GFD) -> bool:
    """Whether the match is a violation: ``h(x̄) ⊨ X`` but ``h(x̄) ⊭ Y``."""
    return not match_satisfies(graph, match, gfd)


def wildcard_attribute_literals(
    graph: PropertyGraph, match: Match, var1: str, var2: str
) -> Iterable[VariableLiteral]:
    """Expand a *generic* literal ``x.A = y.A`` over all attributes of ``h(x)``.

    Supports the paper's φ3 (is_a inheritance): "for any property A of x,
    x.A = y.A".  A GFD using attribute name ``'*'`` on both sides of a
    variable literal is interpreted by :func:`satisfies_generic` as ranging
    over every attribute the *first* node actually carries.
    """
    for attr in graph.attrs(match[var1]):
        yield VariableLiteral(var1, attr, var2, attr)


GENERIC_ATTR = "*"


def satisfies_generic(graph: PropertyGraph, match: Match, gfd: GFD) -> bool:
    """Satisfaction with ``'*'`` attribute expansion (Example 5(3)).

    Falls back to :func:`match_satisfies` when no generic literal occurs.
    """
    lhs = _expand(graph, match, gfd.lhs)
    if not all(match_satisfies_literal(graph, match, l) for l in lhs):
        return True
    rhs = _expand(graph, match, gfd.rhs)
    return all(match_satisfies_literal(graph, match, l) for l in rhs)


def _expand(graph: PropertyGraph, match: Match, literals: Iterable[Literal]):
    out = []
    for literal in literals:
        if (
            isinstance(literal, VariableLiteral)
            and literal.attr1 == GENERIC_ATTR
            and literal.attr2 == GENERIC_ATTR
        ):
            out.extend(
                wildcard_attribute_literals(graph, match, literal.var1, literal.var2)
            )
        else:
            out.append(literal)
    return out
