"""The implication problem for GFDs (Section 4.2).

``Σ ⊨ φ`` iff every graph satisfying Σ also satisfies φ.  Implication lets
a rule engine drop redundant data-quality rules before validation (the
Appendix's *workload reduction*); the problem is NP-complete (Theorem 5).

Lemma 7 characterises implication through deducibility: writing φ in
normal form ``(Q, X → l)`` per conclusion literal ``l``, ``Σ ⊨ φ`` iff
``l ∈ closure(Σ_Q, X)`` where ``Σ_Q`` is the set of GFDs embedded in
``Q`` and derived from Σ.  Taking the *maximal* embedded set (every
embedding of every pattern of Σ into ``Q``) maximises the closure, so the
existential over embedded sets reduces to a single saturation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..graph.graph import PropertyGraph
from .closure import literals_conflict, saturate
from .embedded import embedded_rule_set
from .gfd import GFD
from .satisfiability import is_satisfiable


def implies(
    sigma: Sequence[GFD],
    gfd: GFD,
    check_satisfiability: bool = False,
) -> bool:
    """Decide ``Σ ⊨ φ`` (Theorem 5 / Lemma 7).

    The paper's convention: when Σ is unsatisfiable the question is
    meaningless (every graph violating Σ makes the implication vacuous);
    pass ``check_satisfiability=True`` to get that preamble — unsatisfiable
    Σ then yields ``True`` vacuously, mirroring the extended algorithm in
    the proof of Theorem 5.  When the premise ``X`` of φ is itself
    unsatisfiable, φ holds trivially and we return ``True``.
    """
    sigma = list(sigma)
    if literals_conflict(gfd.lhs):
        return True
    if check_satisfiability and not is_satisfiable(sigma):
        return True

    targets = [l for l in gfd.rhs if not l.is_tautology()]
    if not targets:
        return True

    rules = embedded_rule_set(sigma, gfd.pattern)
    closure = saturate(rules, seed=gfd.lhs)
    if closure.conflicting:
        # X together with Σ's embedded consequences is contradictory: no
        # match of Q in any G ⊨ Σ can satisfy X, so φ holds vacuously.
        return True
    return all(closure.entails(l) for l in targets)


def minimal_cover(sigma: Sequence[GFD]) -> List[GFD]:
    """A non-redundant subset of Σ with the same logical consequences.

    Greedily removes each GFD implied by the remaining ones (Appendix,
    *workload reduction*: "if Σ \\ {φ} ⊨ φ, we can safely remove φ from Σ
    without impacting Vio(Σ, G)").  The result depends on iteration order,
    as for relational covers; any output is a valid cover.
    """
    cover = list(sigma)
    index = 0
    while index < len(cover):
        candidate = cover[index]
        rest = cover[:index] + cover[index + 1:]
        if rest and all(
            implies(rest, single) for single in candidate.normal_form()
        ):
            cover.pop(index)
        else:
            index += 1
    return cover


def counterexample(
    sigma: Sequence[GFD], gfd: GFD
) -> Optional[PropertyGraph]:
    """A witness graph for ``Σ ⊭ φ``: satisfies Σ but violates φ.

    Returns ``None`` when ``Σ ⊨ φ``.  Construction mirrors the Lemma 7
    completeness argument: instantiate φ's pattern, seed the premise ``X``
    as attribute values, saturate Σ's embedded consequences, and leave the
    conclusion's attributes absent (or distinct) — used by the property
    tests to cross-validate :func:`implies`.
    """

    from ..matching.vf2 import SubgraphMatcher
    from .closure import ConstantLiteral, Rule
    from .satisfiability import canonical_graph

    if implies(sigma, gfd):
        return None

    # Instantiate Q alone; ground every GFD of Σ over it; fire to fixpoint
    # with X seeded; assign values per class.
    graph, instantiations = canonical_graph([gfd])
    mapping = instantiations[0]
    str_map = {var: str(node) for var, node in mapping.items()}
    seed = [l.rename(str_map) for l in gfd.lhs]

    rules: List[Rule] = []
    for member in sigma:
        matcher = SubgraphMatcher(member.pattern, graph)
        for match in matcher.matches():
            ground = {var: str(node) for var, node in match.items()}
            rules.append(
                Rule(
                    lhs=tuple(l.rename(ground) for l in member.lhs),
                    rhs=tuple(l.rename(ground) for l in member.rhs),
                )
            )
    closure = saturate(rules, seed=seed)
    if closure.conflicting:
        return None  # defensive: implies() should have caught this

    required = set()
    for literal in seed:
        required.update(_terms(literal))
    for rule in rules:
        if closure.entails_all(rule.lhs):
            for literal in rule.rhs:
                required.update(_terms(literal))

    fresh: dict = {}
    for node_str, attr in required:
        node = int(node_str)
        constant = closure.constant_of(node_str, attr)
        if constant is not None:
            graph.set_attr(node, attr, constant)
        else:
            root = closure.find(("v", node_str, attr))
            value = fresh.setdefault(root, f"•{len(fresh)}")
            graph.set_attr(node, attr, value)
    return graph


def _terms(literal) -> list:
    from .literals import ConstantLiteral

    if isinstance(literal, ConstantLiteral):
        return [(literal.var, literal.attr)]
    return [(literal.var1, literal.attr1), (literal.var2, literal.attr2)]
