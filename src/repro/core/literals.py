"""GFD literals (Section 3).

A literal of ``x̄`` is either a *constant literal* ``x.A = c`` binding an
attribute to a constant, or a *variable literal* ``x.A = y.B`` equating two
attributes.  Constant literals give GFDs the semantic value-binding power
of CFDs; variable literals generalise traditional FDs.

Text syntax (used by the GFD DSL and ``repr``)::

    x.city = 'Edi'        constant literal (quoted constant)
    x.zip = y.zip         variable literal
    x.count = 44          unquoted ints/floats parse as numbers
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Tuple, Union


@dataclass(frozen=True)
class ConstantLiteral:
    """``x.A = c`` — attribute ``A`` of the entity bound to ``x`` equals ``c``."""

    var: str
    attr: str
    const: Any

    def variables(self) -> FrozenSet[str]:
        """Pattern variables mentioned by the literal."""
        return frozenset((self.var,))

    def rename(self, mapping: Dict[str, str]) -> "ConstantLiteral":
        """Apply an embedding ``f`` — the literal ``f(x).A = c``."""
        return ConstantLiteral(mapping.get(self.var, self.var), self.attr, self.const)

    def is_tautology(self) -> bool:
        """Constant literals are never tautologies."""
        return False

    def __str__(self) -> str:
        return f"{self.var}.{self.attr} = {_format_const(self.const)}"


@dataclass(frozen=True)
class VariableLiteral:
    """``x.A = y.B`` — two attributes of (possibly different) entities agree."""

    var1: str
    attr1: str
    var2: str
    attr2: str

    def variables(self) -> FrozenSet[str]:
        """Pattern variables mentioned by the literal."""
        return frozenset((self.var1, self.var2))

    def rename(self, mapping: Dict[str, str]) -> "VariableLiteral":
        """Apply an embedding ``f`` — the literal ``f(x).A = f(y).B``."""
        return VariableLiteral(
            mapping.get(self.var1, self.var1),
            self.attr1,
            mapping.get(self.var2, self.var2),
            self.attr2,
        )

    def is_tautology(self) -> bool:
        """``x.A = x.A`` holds vacuously (Section 4.2 normal form)."""
        return self.var1 == self.var2 and self.attr1 == self.attr2

    def normalized(self) -> "VariableLiteral":
        """Order the two sides canonically so symmetric pairs compare equal."""
        if (self.var2, self.attr2) < (self.var1, self.attr1):
            return VariableLiteral(self.var2, self.attr2, self.var1, self.attr1)
        return self

    def __str__(self) -> str:
        return f"{self.var1}.{self.attr1} = {self.var2}.{self.attr2}"


Literal = Union[ConstantLiteral, VariableLiteral]


def is_constant_literal(literal: Literal) -> bool:
    """Whether ``literal`` is of the form ``x.A = c``."""
    return isinstance(literal, ConstantLiteral)


def is_variable_literal(literal: Literal) -> bool:
    """Whether ``literal`` is of the form ``x.A = y.B``."""
    return isinstance(literal, VariableLiteral)


def literal_variables(literals: Iterable[Literal]) -> FrozenSet[str]:
    """Union of variables mentioned by ``literals``."""
    out: FrozenSet[str] = frozenset()
    for literal in literals:
        out |= literal.variables()
    return out


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
# Variable names may carry primes (z') to mirror the paper's notation.
_TERM_RE = re.compile(r"^\s*([A-Za-z_][\w']*)\s*\.\s*([\w ]+?)\s*$")
_QUOTED_RE = re.compile(r"""^\s*(['"])(.*)\1\s*$""")
_NUMBER_RE = re.compile(r"^\s*-?\d+(\.\d+)?\s*$")


class LiteralParseError(ValueError):
    """Raised when a literal string cannot be parsed."""


def parse_literal(text: str) -> Literal:
    """Parse ``"x.A = 'c'"`` or ``"x.A = y.B"`` into a literal object."""
    if "=" not in text:
        raise LiteralParseError(f"literal needs '=': {text!r}")
    left, right = text.split("=", 1)
    left_match = _TERM_RE.match(left)
    if not left_match:
        raise LiteralParseError(f"left side must be var.attr: {left!r}")
    var, attr = left_match.group(1), left_match.group(2)

    right_term = _TERM_RE.match(right)
    if right_term:
        return VariableLiteral(var, attr, right_term.group(1), right_term.group(2))
    quoted = _QUOTED_RE.match(right)
    if quoted:
        return ConstantLiteral(var, attr, quoted.group(2))
    if _NUMBER_RE.match(right):
        value = right.strip()
        return ConstantLiteral(var, attr, float(value) if "." in value else int(value))
    # Bare words are treated as string constants (e.g. ``x.is_fake = true``).
    word = right.strip()
    if not word:
        raise LiteralParseError(f"empty right side: {text!r}")
    return ConstantLiteral(var, attr, word)


def parse_literals(text: str) -> Tuple[Literal, ...]:
    """Parse a comma/``&``-separated conjunction of literals.

    An empty/whitespace string (or the keyword ``true``) is the empty set —
    the GFD DSL uses it for ``X = ∅``.
    """
    stripped = text.strip()
    if not stripped or stripped.lower() == "true":
        return ()
    parts = re.split(r"[,&]| and ", stripped)
    return tuple(parse_literal(part) for part in parts if part.strip())


def _format_const(value: Any) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)
