"""GFD validation and sequential error detection (Section 5.1).

Given Σ and ``G``, a match ``h(x̄)`` of ``φ``'s pattern is a *violation*
when ``h(x̄) ⊭ X → Y``; ``Vio(Σ, G)`` collects every violation of every
GFD.  Deciding emptiness (the validation problem) is coNP-complete
(Proposition 9) — the sequential algorithm ``detVio`` below simply
enumerates matches per GFD, which is what the paper reports "does not
terminate within 6000 seconds" on its real-life graphs, motivating the
parallel algorithms of Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..graph.graph import NodeId, PropertyGraph
from ..matching.vf2 import Match, MatchStats, SubgraphMatcher
from .gfd import GFD
from .satisfaction import match_satisfies_all


@dataclass(frozen=True)
class Violation:
    """One violating match: the GFD's name and the bound entities ``h(x̄)``.

    ``assignment`` is an ordered tuple following the pattern's variable
    list, making violations hashable and set-friendly (``Vio(Σ, G)`` is a
    set in the paper).
    """

    gfd_name: str
    assignment: Tuple[Tuple[str, NodeId], ...]

    @property
    def match(self) -> Dict[str, NodeId]:
        """The match as a dict ``variable -> node``."""
        return dict(self.assignment)

    def nodes(self) -> FrozenSet[NodeId]:
        """The entities involved in the violation."""
        return frozenset(node for _, node in self.assignment)

    def __str__(self) -> str:
        binding = ", ".join(f"{var}↦{node}" for var, node in self.assignment)
        return f"Violation({self.gfd_name}: {binding})"


def make_violation(gfd: GFD, match: Match) -> Violation:
    """Build a :class:`Violation` with canonical variable ordering."""
    ordered = tuple((var, match[var]) for var in gfd.pattern.variables)
    return Violation(gfd_name=gfd.name or "gfd", assignment=ordered)


def violations_of(
    gfd: GFD,
    graph: PropertyGraph,
    limit: Optional[int] = None,
    stats: Optional[MatchStats] = None,
    backend: str = "auto",
) -> Iterator[Violation]:
    """Enumerate violations of a single GFD in ``graph``.

    A match violates when it satisfies ``X`` but not ``Y``; matching and
    the two literal checks follow Section 3's semantics exactly.
    ``backend`` selects the matching backend (``"auto"`` shares the
    graph's cached snapshot across the rule set; ``"legacy"`` forces the
    dict-backed path — see :mod:`repro.graph.snapshot`).
    """
    matcher = SubgraphMatcher(gfd.pattern, graph, backend=backend)
    emitted = 0
    for match in matcher.matches(stats=stats):
        if not match_satisfies_all(graph, match, gfd.lhs):
            continue
        if match_satisfies_all(graph, match, gfd.rhs):
            continue
        yield make_violation(gfd, match)
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def det_vio(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    stats: Optional[MatchStats] = None,
    backend: str = "auto",
) -> Set[Violation]:
    """The sequential algorithm ``detVio``: compute ``Vio(Σ, G)`` directly.

    Enumerates all matches of every GFD's pattern and filters violators.
    Exponential in pattern size — "prohibitive for big G" (Section 5.1) —
    but the ground truth the parallel algorithms are tested against.
    The graph's snapshot is built once and reused across all of Σ.
    """
    out: Set[Violation] = set()
    for gfd in sigma:
        out.update(violations_of(gfd, graph, stats=stats, backend=backend))
    return out


def satisfies(sigma: Sequence[GFD], graph: PropertyGraph) -> bool:
    """``G ⊨ Σ`` — the validation problem (Proposition 9).

    Short-circuits on the first violation found.
    """
    for gfd in sigma:
        if next(violations_of(gfd, graph, limit=1), None) is not None:
            return False
    return True


def violation_entities(violations: Iterable[Violation]) -> Set[NodeId]:
    """All entities involved in any violation (for precision/recall)."""
    out: Set[NodeId] = set()
    for violation in violations:
        out |= violation.nodes()
    return out
