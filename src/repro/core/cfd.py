"""Relational FDs and CFDs as special cases of GFDs (Section 3, Example 5).

When an instance of a relation schema ``R`` is represented as a graph with
one ``R``-labelled node per tuple (attributes carried on the node), a
relational FD ``R(X → Y)`` becomes a *variable* GFD over the two-node
pattern ``Q4``, and a CFD ``(R: X → Y, tp)`` becomes a GFD whose constant
literals encode the pattern tuple ``tp`` — the paper's ``φ4``, ``φ'4`` and
``φ''4``.  This module provides those encodings plus the tuple-to-node
graph representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Sequence, Tuple

from ..graph.graph import PropertyGraph
from ..pattern.pattern import GraphPattern
from .gfd import GFD
from .literals import ConstantLiteral, Literal, VariableLiteral

#: The tableau wildcard: an unconstrained attribute in a CFD pattern tuple.
UNCONSTRAINED = "_"


def relation_to_graph(
    name: str, rows: Sequence[Mapping[str, Any]], start_id: int = 0
) -> PropertyGraph:
    """Represent a relation instance as a graph: one node per tuple.

    Every node is labelled with the relation name and carries the tuple's
    attributes, which is exactly the encoding Example 5(4) assumes.
    """
    graph = PropertyGraph()
    for offset, row in enumerate(rows):
        graph.add_node(start_id + offset, name, dict(row))
    return graph


def two_tuple_pattern(relation: str) -> GraphPattern:
    """The pattern ``Q4``: two (edge-free) nodes denoting tuples of ``R``."""
    pattern = GraphPattern()
    pattern.add_node("x", relation)
    pattern.add_node("y", relation)
    return pattern


def single_tuple_pattern(relation: str) -> GraphPattern:
    """The pattern ``Q''4``: a single node denoting one tuple of ``R``."""
    pattern = GraphPattern()
    pattern.add_node("x", relation)
    return pattern


@dataclass(frozen=True)
class FD:
    """A relational functional dependency ``R(X → Y)``."""

    relation: str
    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]

    def to_gfd(self, name: str = "") -> GFD:
        """The variable GFD ``φ4``: agree on ``X`` ⟹ agree on ``Y``."""
        lhs: List[Literal] = [
            VariableLiteral("x", attr, "y", attr) for attr in self.lhs
        ]
        rhs: List[Literal] = [
            VariableLiteral("x", attr, "y", attr) for attr in self.rhs
        ]
        return GFD(
            pattern=two_tuple_pattern(self.relation),
            lhs=tuple(lhs),
            rhs=tuple(rhs),
            name=name or f"FD:{self.relation}({','.join(self.lhs)}"
                         f"->{','.join(self.rhs)})",
        )


@dataclass(frozen=True)
class CFD:
    """A conditional functional dependency ``(R: X → Y, tp)`` [16].

    ``pattern_tuple`` maps each attribute of ``X ∪ Y`` to a constant or to
    :data:`UNCONSTRAINED`.  Semantics (and hence the GFD encoding) split on
    the right-hand side:

    * ``tp[Y]`` a constant — a *constant CFD*: any single tuple matching
      the constant part of ``tp[X]`` must have ``t[Y] = tp[Y]`` (``φ''4``);
    * ``tp[Y] = '_'`` — a *variable CFD*: two tuples agreeing on ``X`` and
      matching ``tp[X]`` must agree on ``Y`` (``φ'4``).
    """

    relation: str
    lhs: Tuple[str, ...]
    rhs: str
    pattern_tuple: Mapping[str, Any] = field(default_factory=dict)

    def is_constant(self) -> bool:
        """Whether the RHS is bound to a constant in the pattern tuple."""
        return self.pattern_tuple.get(self.rhs, UNCONSTRAINED) != UNCONSTRAINED

    def to_gfd(self, name: str = "") -> GFD:
        """Encode as a GFD per Example 5(4)."""
        if self.is_constant():
            lhs: List[Literal] = [
                ConstantLiteral("x", attr, value)
                for attr, value in self.pattern_tuple.items()
                if attr != self.rhs and value != UNCONSTRAINED
            ]
            rhs: List[Literal] = [
                ConstantLiteral("x", self.rhs, self.pattern_tuple[self.rhs])
            ]
            return GFD(
                pattern=single_tuple_pattern(self.relation),
                lhs=tuple(lhs),
                rhs=tuple(rhs),
                name=name or f"CFD:{self.relation}",
            )
        lhs = []
        for attr in self.lhs:
            value = self.pattern_tuple.get(attr, UNCONSTRAINED)
            if value == UNCONSTRAINED:
                lhs.append(VariableLiteral("x", attr, "y", attr))
            else:
                lhs.append(ConstantLiteral("x", attr, value))
                lhs.append(ConstantLiteral("y", attr, value))
        rhs = [VariableLiteral("x", self.rhs, "y", self.rhs)]
        return GFD(
            pattern=two_tuple_pattern(self.relation),
            lhs=tuple(lhs),
            rhs=tuple(rhs),
            name=name or f"CFD:{self.relation}",
        )


def type_requirement(label: str, attr: str, name: str = "") -> GFD:
    """The type-information GFD of Section 3(3): ``(Q[x], ∅ → x.A = x.A)``.

    Under satisfaction semantics a ``Y``-literal requires its attributes to
    *exist*, so this GFD enforces that every ``label`` node carries
    attribute ``A``.  (For the *reasoning* analyses the same literal is a
    tautology and trivially implied — the paper uses both readings, and so
    do we: validation checks existence, ``normal_form``/closures treat it
    as vacuous.)
    """
    pattern = GraphPattern()
    pattern.add_node("x", label)
    return GFD(
        pattern=pattern,
        lhs=(),
        rhs=(VariableLiteral("x", attr, "x", attr),),
        name=name or f"requires:{label}.{attr}",
    )
