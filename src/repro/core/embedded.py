"""Embedded GFDs (Section 4).

If pattern ``Q'`` is embeddable in ``Q`` via ``f``, then for any GFD
``φ' = (Q'[x̄'], X' → Y')``, the GFD ``(Q[x̄], f(X') → f(Y'))`` is an
*embedded GFD* of ``φ'`` in ``Q``.  The sets ``Σ_Q`` used by both static
analyses collect the embedded GFDs of every member of Σ over a common host
pattern; we materialise them as :class:`repro.core.closure.Rule` objects
(the host pattern is implicit — all literals speak about host variables).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from ..pattern.embedding import embeddings
from ..pattern.pattern import GraphPattern
from .closure import Rule
from .gfd import GFD


def embedded_rules(gfd: GFD, host: GraphPattern) -> Iterator[Rule]:
    """All embedded GFDs of ``gfd`` in ``host``, one per embedding."""
    for f in embeddings(gfd.pattern, host):
        yield Rule(
            lhs=tuple(l.rename(f) for l in gfd.lhs),
            rhs=tuple(l.rename(f) for l in gfd.rhs),
        )


def embedded_rule_set(sigma: Iterable[GFD], host: GraphPattern) -> List[Rule]:
    """The maximal ``Σ_Q`` for host ``Q``: every embedding of every GFD.

    Using the maximal set is complete — larger embedded sets only grow the
    closure, and Lemmas 3/7 quantify existentially over embedded sets.
    """
    rules: List[Rule] = []
    seen = set()
    for gfd in sigma:
        for rule in embedded_rules(gfd, host):
            key = (rule.lhs, rule.rhs)
            if key not in seen:
                seen.add(key)
                rules.append(rule)
    return rules
