"""Random GFD workload generation (Section 7, "GFDs generator").

The paper generates evaluation rule sets by (1) mining frequent features —
edges and paths of length up to 3 — taking the most frequent as *seeds*,
(2) combining seeds into patterns of a target size with 1 or 2 connected
components, and (3) building dependencies ``X → Y`` from literals over the
node attributes.  This module reproduces that pipeline so the benchmarks
can sweep ``‖Σ‖`` and ``|Q|`` on any graph.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.graph import NodeId, PropertyGraph
from ..pattern.pattern import GraphPattern
from .gfd import GFD
from .literals import ConstantLiteral, Literal, VariableLiteral

EdgeType = Tuple[str, str, str]  # (source label, edge label, target label)


def mine_frequent_edges(graph: PropertyGraph, top: int = 5) -> List[EdgeType]:
    """The ``top`` most frequent edge types (the paper's seed features)."""
    counts: Counter = Counter()
    for src, dst, elabel in graph.edges():
        counts[(graph.label(src), elabel, graph.label(dst))] += 1
    return [etype for etype, _ in counts.most_common(top)]


def mine_frequent_paths(
    graph: PropertyGraph,
    length: int = 3,
    top: int = 5,
    sample: int = 2000,
    seed: int = 0,
) -> List[Tuple[EdgeType, ...]]:
    """Frequent directed paths of up to ``length`` edges, by sampled walks.

    Exact path counting is quadratic-plus; the paper mines features as a
    preprocessing step, and sampled random walks preserve the frequency
    ranking that seed selection needs.
    """
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    if not nodes:
        return []
    counts: Counter = Counter()
    for _ in range(sample):
        node = rng.choice(nodes)
        path: List[EdgeType] = []
        for _ in range(length):
            nbrs = graph.out_neighbors(node)
            if not nbrs:
                break
            nxt = rng.choice(list(nbrs))
            elabel = rng.choice(sorted(nbrs[nxt]))
            path.append((graph.label(node), elabel, graph.label(nxt)))
            counts[tuple(path)] += 1
            node = nxt
    return [path for path, _ in counts.most_common(top)]


class GFDGenerator:
    """Generates rule sets ``Σ`` controlled by ``‖Σ‖`` and ``|Q|``.

    ``|Q|`` is interpreted as the number of pattern *edges* (node count is
    ``|Q| + #components``), matching the paper's sweep of 2–6.  Patterns
    have 1 or 2 connected components, grown from frequent-edge seeds;
    dependencies mix variable literals (attribute agreement between two
    pattern nodes) with constant literals drawn from observed values.
    """

    #: cap on the pivot-candidate tuples a single pattern may induce
    max_units = 20_000

    def __init__(
        self,
        graph: PropertyGraph,
        attributes: Optional[Sequence[str]] = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.rng = random.Random(seed)
        self.seeds = mine_frequent_edges(graph, top=5)
        if not self.seeds:
            raise ValueError("graph has no edges to mine seeds from")
        self.attributes = list(attributes) if attributes else self._infer_attributes()

    def _candidate_product(self, pattern: GraphPattern) -> int:
        """Estimated number of pivot candidate tuples for ``pattern``."""
        from ..pattern.components import pivot_vector

        product = 1
        for entry in pivot_vector(pattern):
            label = pattern.label(entry.variable)
            pool = self.graph.nodes_with_label(label)
            product *= max(1, len(pool))
            if product > 10 * self.max_units:
                break
        return product

    def _infer_attributes(self) -> List[str]:
        counts: Counter = Counter()
        for index, node in enumerate(self.graph.nodes()):
            counts.update(self.graph.attrs(node).keys())
            if index >= 1000:
                break
        return [attr for attr, _ in counts.most_common(5)] or ["val"]

    # ------------------------------------------------------------------
    def generate(
        self,
        count: int,
        pattern_edges: int = 3,
        two_component_fraction: float = 0.3,
        constant_fraction: float = 0.25,
        pattern_reuse: int = 3,
    ) -> List[GFD]:
        """Generate ``count`` GFDs with ``pattern_edges`` edges on average.

        ``pattern_reuse`` controls how many GFDs share each distinct
        pattern (with different dependencies).  The paper derives 50–100
        rules from the top-5 frequent features, so real workloads are
        pattern-heavy — this is what the multi-query optimisation of
        ``repVal``/``disVal`` exploits.
        """
        pool_size = max(1, count // max(1, pattern_reuse))
        pool = []
        for _ in range(pool_size):
            components = 2 if self.rng.random() < two_component_fraction else 1
            pattern = self._build_pattern(pattern_edges, components)
            if components > 1 and self._candidate_product(pattern) > self.max_units:
                # |candidates|^k work units would swamp any processor set;
                # real mined rules are selective, so fall back to one
                # component (cf. Section 5.2: ‖z̄‖ is "typically 1 or 2").
                pattern = self._build_pattern(pattern_edges, 1)
            pool.append(pattern)
        out: List[GFD] = []
        for index in range(count):
            pattern = self.rng.choice(pool)
            lhs, rhs = self._build_dependency(pattern, constant_fraction)
            out.append(
                GFD(pattern=pattern, lhs=lhs, rhs=rhs, name=f"gen{index}")
            )
        return out

    def _build_pattern(self, edges: int, components: int) -> GraphPattern:
        """Build a pattern by *sampling graph instances*.

        Each connected component is a randomly-grown connected subgraph of
        the data graph, converted to a pattern by keeping labels and
        forgetting node identities — so every generated pattern is
        guaranteed at least one match, just as the paper's frequent-feature
        mining guarantees.  Multi-component patterns sample regions rooted
        at the *least frequent* labels to keep the pivot candidate product
        manageable (|candidates|^k tuples for k components).
        """
        pattern = GraphPattern()
        counter = 0

        def fresh(label: str) -> str:
            nonlocal counter
            var = f"v{counter}"
            counter += 1
            pattern.add_node(var, label)
            return var

        # Distribute the edge budget over components (e.g. |Q|=3 with two
        # components yields sizes 2 and 1, not 1 and 1).
        base, extra = divmod(edges, components)
        sizes = [max(1, base + (1 if i < extra else 0)) for i in range(components)]
        selective = components > 1
        for component_edges in sizes:
            instance = self._sample_instance(component_edges, selective)
            mapping: Dict[NodeId, str] = {}
            for src, dst, elabel in instance:
                if src not in mapping:
                    mapping[src] = fresh(self.graph.label(src))
                if dst not in mapping:
                    mapping[dst] = fresh(self.graph.label(dst))
                pattern.add_edge(mapping[src], mapping[dst], elabel)
        return pattern

    def _sample_instance(self, edges: int, selective: bool):
        """A connected set of up to ``edges`` real graph edges.

        Grown by BFS from a random seed edge (drawn from the seed features,
        biased towards rare source labels when ``selective``); retries a
        few times and settles for the largest instance found.
        """
        rng = self.rng
        seeds = self.seeds
        if selective:
            ranked = sorted(
                seeds, key=lambda s: len(self.graph.nodes_with_label(s[0]))
            )
            seeds = ranked[: max(1, len(ranked) // 2)]
        best: List = []
        for _ in range(8):
            src_label, _, _ = rng.choice(seeds)
            candidates = sorted(self.graph.nodes_with_label(src_label), key=repr)
            if not candidates:
                continue
            start = rng.choice(candidates)
            collected: List = []
            seen_edges = set()
            frontier = [start]
            visited = {start}
            while len(collected) < edges and frontier:
                # Walk-biased growth: extending from the newest endpoint
                # keeps the pattern's diameter (hence the data blocks the
                # paper's |Q| sweep measures) growing with the edge count;
                # occasional random re-anchoring still yields branching.
                node = frontier[-1] if rng.random() < 0.7 else rng.choice(frontier)
                incident = [
                    (node, dst, label)
                    for dst, labels in self.graph.out_neighbors(node).items()
                    for label in labels
                ] + [
                    (src, node, label)
                    for src, labels in self.graph.in_neighbors(node).items()
                    for label in labels
                ]
                incident = [e for e in incident if e not in seen_edges]
                if not incident:
                    frontier.remove(node)
                    continue
                edge = rng.choice(incident)
                seen_edges.add(edge)
                collected.append(edge)
                for endpoint in (edge[0], edge[1]):
                    if endpoint not in visited:
                        visited.add(endpoint)
                        frontier.append(endpoint)
            if len(collected) >= edges:
                return collected
            if len(collected) > len(best):
                best = collected
        return best or [next(iter(self.graph.edges()))]

    def _build_dependency(
        self, pattern: GraphPattern, constant_fraction: float
    ) -> Tuple[Tuple[Literal, ...], Tuple[Literal, ...]]:
        variables = pattern.variables
        attrs = self.attributes
        rng = self.rng

        def variable_literal() -> VariableLiteral:
            # FD-style literals compare the *same* attribute across two
            # entities most of the time (x.A = y.A), like the paper's φ1/φ4;
            # occasionally attributes differ (x.text = y.desc, as in φ5).
            var1, var2 = rng.choice(variables), rng.choice(variables)
            attr1 = rng.choice(attrs)
            attr2 = attr1 if rng.random() < 0.8 else rng.choice(attrs)
            return VariableLiteral(var1, attr1, var2, attr2)

        def constant_literal() -> ConstantLiteral:
            var = rng.choice(variables)
            attr = rng.choice(attrs)
            value = self._sample_value(pattern.label(var), attr)
            return ConstantLiteral(var, attr, value)

        def literal() -> Literal:
            if rng.random() < constant_fraction:
                return constant_literal()
            lit = variable_literal()
            return lit if not lit.is_tautology() else constant_literal()

        if rng.random() < 0.15:
            # Capital-style rules (Q, ∅ → x.A = c): cheap to check and the
            # kind that actually fires on dirty data (Example 5(2)).
            lhs: Tuple[Literal, ...] = ()
            rhs: Tuple[Literal, ...] = (constant_literal(),)
        else:
            lhs = tuple(literal() for _ in range(rng.randint(1, 2)))
            rhs = (literal(),)
        return lhs, rhs

    def _sample_value(self, label: str, attr: str):
        pool = self.graph.nodes_with_label(label)
        for node in list(pool)[:50]:
            value = self.graph.get_attr(node, attr)
            if value is not None:
                return value
        return "v0"


def generate_gfds(
    graph: PropertyGraph,
    count: int,
    pattern_edges: int = 3,
    seed: int = 0,
    attributes: Optional[Sequence[str]] = None,
    two_component_fraction: float = 0.3,
) -> List[GFD]:
    """Convenience wrapper: one-shot workload generation for benchmarks."""
    generator = GFDGenerator(graph, attributes=attributes, seed=seed)
    return generator.generate(
        count,
        pattern_edges=pattern_edges,
        two_component_fraction=two_component_fraction,
    )
