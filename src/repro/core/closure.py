"""Equality-atom closures: ``enforced(Σ_Q)`` and ``closure(Σ_Q, X)`` (§4).

Both static analyses reduce to saturating a set of equality atoms under
(a) the transitivity of equality and (b) rule application: an embedded GFD
``X' → Y'`` contributes ``Y'`` once every literal of ``X'`` is derivable.
We represent atoms in a union-find over *terms* — attribute occurrences
``x.A`` and constants — where a class containing two distinct constants is
a **conflict** (the certificate of unsatisfiability in Lemma 3).

The paper notes both closures are computable in PTIME "along the same
lines as closures for traditional FDs"; the fixpoint below is the standard
O(rules × literals × α) construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .literals import ConstantLiteral, Literal

# A term is either an attribute occurrence ("v", var, attr) or a constant
# ("c", value).  Constants of equal value share a term, which is what makes
# the paper's transitivity example work: x.A = c and y.B = c put x.A and
# y.B in the same class, hence x.A = y.B is derived.
Term = Tuple


def attr_term(var: str, attr: str) -> Term:
    """The term for attribute occurrence ``var.attr``."""
    return ("v", var, attr)


def const_term(value: Any) -> Term:
    """The term for constant ``value``."""
    return ("c", type(value).__name__, value)


class EqualityClosure:
    """A union-find over terms with conflict detection.

    ``add_literal`` asserts an equality; ``entails`` tests derivability;
    ``conflicting`` reports whether two distinct constants were ever
    merged (directly or transitively).
    """

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._constant: Dict[Term, Optional[Term]] = {}
        self._conflict: Optional[Tuple[Term, Term]] = None

    # ------------------------------------------------------------------
    # union-find internals
    # ------------------------------------------------------------------
    def _ensure(self, term: Term) -> Term:
        if term not in self._parent:
            self._parent[term] = term
            self._constant[term] = term if term[0] == "c" else None
        return term

    def find(self, term: Term) -> Term:
        """Root of ``term``'s class (path-compressed)."""
        self._ensure(term)
        root = term
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[term] != root:
            self._parent[term], term = root, self._parent[term]
        return root

    def union(self, a: Term, b: Term) -> None:
        """Merge the classes of ``a`` and ``b``; record conflicts."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        ca, cb = self._constant[ra], self._constant[rb]
        if ca is not None and cb is not None and ca != cb:
            if self._conflict is None:
                self._conflict = (ca, cb)
            # Still merge, so saturation keeps going deterministically.
        self._parent[ra] = rb
        if cb is None:
            self._constant[rb] = ca

    # ------------------------------------------------------------------
    # literal-level API
    # ------------------------------------------------------------------
    def add_literal(self, literal: Literal) -> None:
        """Assert a literal as an equality atom."""
        if isinstance(literal, ConstantLiteral):
            self.union(
                attr_term(literal.var, literal.attr), const_term(literal.const)
            )
        else:
            self.union(
                attr_term(literal.var1, literal.attr1),
                attr_term(literal.var2, literal.attr2),
            )

    def add_all(self, literals: Iterable[Literal]) -> None:
        """Assert every literal of a conjunction."""
        for literal in literals:
            self.add_literal(literal)

    def entails(self, literal: Literal) -> bool:
        """Whether ``literal`` is derivable via transitivity of equality."""
        if isinstance(literal, ConstantLiteral):
            root = self.find(attr_term(literal.var, literal.attr))
            return self._constant[root] == const_term(literal.const)
        if literal.is_tautology():
            return True
        root1 = self.find(attr_term(literal.var1, literal.attr1))
        root2 = self.find(attr_term(literal.var2, literal.attr2))
        if root1 == root2:
            return True
        c1, c2 = self._constant[root1], self._constant[root2]
        return c1 is not None and c1 == c2

    def entails_all(self, literals: Iterable[Literal]) -> bool:
        """Whether every literal of the conjunction is derivable."""
        return all(self.entails(l) for l in literals)

    @property
    def conflicting(self) -> bool:
        """Whether two distinct constants were merged (``x.A = a ∧ x.A = b``)."""
        return self._conflict is not None

    @property
    def conflict_witness(self) -> Optional[Tuple[Term, Term]]:
        """The first pair of clashing constant terms, if any."""
        return self._conflict

    def constant_of(self, var: str, attr: str) -> Optional[Any]:
        """The constant forced on ``var.attr``, if any."""
        root = self.find(attr_term(var, attr))
        constant = self._constant[root]
        return constant[2] if constant is not None else None

    def copy(self) -> "EqualityClosure":
        """An independent copy of the current state."""
        clone = EqualityClosure()
        clone._parent = dict(self._parent)
        clone._constant = dict(self._constant)
        clone._conflict = self._conflict
        return clone


@dataclass(frozen=True)
class Rule:
    """An embedded dependency ``X' → Y'`` over a common host pattern."""

    lhs: Tuple[Literal, ...]
    rhs: Tuple[Literal, ...]


def saturate(
    rules: Sequence[Rule], seed: Iterable[Literal] = ()
) -> EqualityClosure:
    """Least fixpoint of rule application from ``seed``.

    With ``seed = ∅`` this computes ``enforced(Σ_Q)``: rules with an empty
    (or derivable) premise contribute their conclusions, transitively.
    With ``seed = X`` it computes ``closure(Σ_Q, X)`` (Section 4.2).
    """
    closure = EqualityClosure()
    closure.add_all(seed)
    pending: List[Rule] = list(rules)
    changed = True
    while changed and pending:
        changed = False
        still_pending: List[Rule] = []
        for rule in pending:
            if closure.entails_all(rule.lhs):
                closure.add_all(rule.rhs)
                changed = True
            else:
                still_pending.append(rule)
        pending = still_pending
    return closure


def literals_conflict(literals: Iterable[Literal]) -> bool:
    """Whether a conjunction is unsatisfiable on its own.

    Used for the implication preamble (Section 4.2): if ``X`` is not
    satisfiable, ``Σ ⊨ φ`` holds trivially.
    """
    closure = EqualityClosure()
    closure.add_all(literals)
    return closure.conflicting
