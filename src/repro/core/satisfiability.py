"""The satisfiability problem for GFDs (Section 4.1).

A set Σ of GFDs is *satisfiable* iff it has a model: a graph ``G`` with
``G ⊨ Σ`` in which **every** pattern of Σ has a match.  Satisfiability
checks whether the GFDs are "dirty" themselves before they are used as
data-quality rules; the problem is coNP-complete (Theorem 1) and remains
so for constant GFDs over DAG patterns (Corollary 2).

Decision procedure
------------------
We decide satisfiability exactly by building the **canonical model**: the
disjoint union of one fresh instance of every pattern in Σ (wildcard
labels instantiated with fresh private labels, so they never collide with
concrete ones).  The canonical graph contains a match of every pattern by
construction and is the *freest* such graph; every equality atom it is
forced to carry is forced in every model.  So:

* enumerate every match of every pattern of Σ in the canonical graph
  (matches of disconnected patterns may straddle instances — this is what
  makes GFDs with different patterns interact, cf. Example 7);
* saturate the induced ground rules (:func:`repro.core.closure.saturate`);
* Σ is satisfiable iff the saturation is conflict-free, in which case a
  concrete model is assembled by assigning each forced equivalence class
  its constant (or a fresh value) — see :func:`build_model`.

This realises Lemma 3 ("Σ is satisfiable iff Σ is not conflicting") with
the conflict check performed on the canonical structure.  The paper's
host-pattern formulation is also provided (:func:`find_conflicting_host`)
as a diagnostic that pinpoints *which* patterns clash (Example 7), but the
canonical-model check is the decision procedure: guessing hosts that no
model is forced to realise can over-report conflicts for patterns that
only overlap optionally.

The always-satisfiable fast paths of Corollary 4 are checked first.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.graph import PropertyGraph, WILDCARD
from ..matching.vf2 import SubgraphMatcher
from ..pattern.embedding import embeddings
from ..pattern.pattern import GraphPattern
from .closure import Rule, saturate
from .embedded import embedded_rule_set
from .gfd import GFD
from .literals import ConstantLiteral, Literal


# ----------------------------------------------------------------------
# fast paths (Corollary 4)
# ----------------------------------------------------------------------
def trivially_satisfiable(sigma: Sequence[GFD]) -> bool:
    """The two syntactic always-satisfiable cases of Corollary 4.

    (1) Σ consists of variable GFDs only — no constants can clash.
    (2) No GFD has the form ``(Q, ∅ → Y)`` (after stripping tautological
        premise literals): nothing ever fires on an attribute-free graph.
    """
    if all(gfd.is_variable for gfd in sigma):
        return True
    if all(_nontrivial_lhs(gfd) for gfd in sigma):
        return True
    return False


def _nontrivial_lhs(gfd: GFD) -> bool:
    """Whether the premise has at least one non-tautological literal."""
    return any(not l.is_tautology() for l in gfd.lhs)


# ----------------------------------------------------------------------
# canonical model
# ----------------------------------------------------------------------
def canonical_graph(sigma: Sequence[GFD]) -> Tuple[PropertyGraph, List[Dict[str, int]]]:
    """The disjoint union of one instance per GFD pattern.

    Returns the graph and, per GFD, the instantiation map from pattern
    variables to node ids.  Wildcard node labels become fresh private
    labels (``'⊥0'``, ``'⊥1'``, ...) and wildcard edge labels likewise, so
    instantiated wildcards match only pattern wildcards, never concrete
    labels — the least-constrained instantiation.
    """
    graph = PropertyGraph()
    instantiations: List[Dict[str, int]] = []
    next_id = 0
    fresh = itertools.count()
    for gfd in sigma:
        mapping: Dict[str, int] = {}
        for var in gfd.pattern.nodes():
            label = gfd.pattern.label(var)
            if label == WILDCARD:
                label = f"⊥{next(fresh)}"
            graph.add_node(next_id, label)
            mapping[var] = next_id
            next_id += 1
        for src, dst, elabel in gfd.pattern.edges():
            if elabel == WILDCARD:
                elabel = f"⊥e{next(fresh)}"
            graph.add_edge(mapping[src], mapping[dst], elabel)
        instantiations.append(mapping)
    return graph, instantiations


def _ground_rules(sigma: Sequence[GFD], graph: PropertyGraph) -> List[Rule]:
    """Ground every GFD over every match of its pattern in ``graph``.

    Ground literals reuse the literal classes with node ids in variable
    position — the closure engine only needs hashable terms.
    """
    rules: List[Rule] = []
    for gfd in sigma:
        matcher = SubgraphMatcher(gfd.pattern, graph)
        for match in matcher.matches():
            mapping = {var: str(node) for var, node in match.items()}
            rules.append(
                Rule(
                    lhs=tuple(l.rename(mapping) for l in gfd.lhs),
                    rhs=tuple(l.rename(mapping) for l in gfd.rhs),
                )
            )
    return rules


def is_satisfiable(sigma: Sequence[GFD]) -> bool:
    """Decide whether Σ has a model (Theorem 1 semantics, exactly)."""
    sigma = list(sigma)
    if not sigma:
        return True
    if trivially_satisfiable(sigma):
        return True
    graph, _ = canonical_graph(sigma)
    closure = saturate(_ground_rules(sigma, graph))
    return not closure.conflicting


def build_model(sigma: Sequence[GFD]) -> Optional[PropertyGraph]:
    """A concrete model of Σ, or ``None`` when Σ is unsatisfiable.

    Assigns every attribute term that a fired rule's conclusion mentions:
    its class constant when one is forced, otherwise a fresh value shared
    by the class.  The result satisfies every GFD and contains a match of
    every pattern (used by the property tests as a certificate).
    """
    sigma = list(sigma)
    graph, _ = canonical_graph(sigma)
    if not sigma:
        return graph
    rules = _ground_rules(sigma, graph)
    closure = saturate(rules)
    if closure.conflicting:
        return None

    # Terms needing a value: everything a *fired* conclusion mentions.
    required: Set[Tuple[str, str]] = set()
    for rule in rules:
        if closure.entails_all(rule.lhs):
            for literal in rule.rhs:
                for term in _literal_terms(literal):
                    required.add(term)

    fresh_values: Dict[Tuple, str] = {}
    for node_str, attr in required:
        node = int(node_str)
        constant = closure.constant_of(node_str, attr)
        if constant is not None:
            graph.set_attr(node, attr, constant)
        else:
            root = closure.find(("v", node_str, attr))
            value = fresh_values.setdefault(root, f"•{len(fresh_values)}")
            graph.set_attr(node, attr, value)
    return graph


def _literal_terms(literal: Literal) -> List[Tuple[str, str]]:
    if isinstance(literal, ConstantLiteral):
        return [(literal.var, literal.attr)]
    return [(literal.var1, literal.attr1), (literal.var2, literal.attr2)]


# ----------------------------------------------------------------------
# paper-style conflicting-host diagnostic
# ----------------------------------------------------------------------
def find_conflicting_host(
    sigma: Sequence[GFD],
    max_host_size: Optional[int] = None,
) -> Optional[Tuple[GraphPattern, List[int]]]:
    """Search for a host pattern with a conflicting embedded set (Lemma 3).

    Hosts range over the patterns of Σ themselves plus pairwise overlays
    (patterns merged under every label-compatible partial identification
    sharing at least one node), bounded by ``max_host_size`` (default:
    the paper's bound — the size of the largest pattern in Σ).

    Returns ``(host, indices of GFDs whose embeddings participate)`` for
    the first conflicting host found, or ``None``.  This is a *diagnostic*
    explaining clashes such as Example 7's φ8/φ9; see the module docstring
    for why :func:`is_satisfiable` is the decision procedure.
    """
    sigma = list(sigma)
    if not sigma:
        return None
    patterns = [gfd.pattern for gfd in sigma]
    if max_host_size is None:
        max_host_size = max(p.size for p in patterns)

    hosts: List[GraphPattern] = []
    seen_signatures = set()

    def push(host: GraphPattern) -> None:
        sig = host.signature()
        if sig not in seen_signatures and host.size <= max_host_size:
            seen_signatures.add(sig)
            hosts.append(host)

    for pattern in patterns:
        push(_standardise(pattern))
    # Pairwise overlays (one round is enough for the two-pattern clashes
    # the bound admits; deeper overlays exceed it).
    base = list(hosts)
    for first, second in itertools.combinations(base, 2):
        for overlay in _overlays(first, second, max_host_size):
            push(overlay)

    for host in hosts:
        rules = embedded_rule_set(sigma, host)
        if not rules:
            continue
        closure = saturate(rules)
        if closure.conflicting:
            participants = [
                index
                for index, gfd in enumerate(sigma)
                if next(embeddings(gfd.pattern, host), None) is not None
            ]
            return host, participants
    return None


def _standardise(pattern: GraphPattern) -> GraphPattern:
    """Rename variables to a host-private namespace."""
    mapping = {var: f"h{i}" for i, var in enumerate(pattern.variables)}
    return pattern.rename(mapping)


def _overlays(
    first: GraphPattern, second: GraphPattern, max_size: int
) -> Iterable[GraphPattern]:
    """All merges of two patterns under partial node identification.

    Each overlay identifies a non-empty, label-compatible partial matching
    between the node sets; compatible labels merge (wildcard yields to the
    concrete label).  Oversized overlays are skipped.
    """
    first_vars = first.variables
    second_vars = second.variables

    def compatible(a: str, b: str) -> Optional[str]:
        la, lb = first.label(a), second.label(b)
        if la == WILDCARD:
            return lb
        if lb == WILDCARD or la == lb:
            return la
        return None

    pairs = [
        (a, b) for a in first_vars for b in second_vars
        if compatible(a, b) is not None
    ]
    for r in range(1, min(len(first_vars), len(second_vars)) + 1):
        for chosen in itertools.combinations(pairs, r):
            a_side = [a for a, _ in chosen]
            b_side = [b for _, b in chosen]
            if len(set(a_side)) != r or len(set(b_side)) != r:
                continue
            overlay = _merge(first, second, dict(chosen), compatible)
            if overlay is not None and overlay.size <= max_size:
                yield overlay


def _merge(
    first: GraphPattern,
    second: GraphPattern,
    identify: Dict[str, str],
    compatible,
) -> Optional[GraphPattern]:
    inverse = {b: a for a, b in identify.items()}
    merged = GraphPattern()
    for var in first.variables:
        label = first.label(var)
        if var in identify:
            label = compatible(var, identify[var])
        merged.add_node(f"m.{var}", label)
    for var in second.variables:
        if var not in inverse:
            merged.add_node(f"n.{var}", second.label(var))

    def second_name(var: str) -> str:
        return f"m.{inverse[var]}" if var in inverse else f"n.{var}"

    for src, dst, elabel in first.edges():
        merged.add_edge(f"m.{src}", f"m.{dst}", elabel)
    for src, dst, elabel in second.edges():
        merged.add_edge(second_name(src), second_name(dst), elabel)
    return merged
