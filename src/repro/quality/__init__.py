"""Data-quality tooling: noise injection, accuracy metrics, and the two
comparison baselines of the Appendix (GCFDs and BigDansing-style plans)."""

from .noise import NoiseRecord, NoiseReport, inject_noise
from .metrics import Accuracy, accuracy
from .gcfd import (
    expressible_as_gcfd,
    gfds_to_gcfds,
    is_path_pattern,
    validate_gcfd,
)
from .bigdansing import validate_bigdansing
from .repair import (
    AttributeWrite,
    Fix,
    RepairPlan,
    apply_repairs,
    candidate_fixes,
    repair_plan,
)

__all__ = [
    "NoiseRecord",
    "NoiseReport",
    "inject_noise",
    "Accuracy",
    "accuracy",
    "expressible_as_gcfd",
    "gfds_to_gcfds",
    "is_path_pattern",
    "validate_gcfd",
    "validate_bigdansing",
    "AttributeWrite",
    "Fix",
    "RepairPlan",
    "apply_repairs",
    "candidate_fixes",
    "repair_plan",
]
