"""Repair suggestions for GFD violations.

The paper positions GFDs as data-quality rules whose violations are the
errors to fix; the follow-on literature (graph repair à la Fan et al.)
derives minimal *fixes*.  This module implements the value-modification
fragment: for each violating match ``h(x̄)`` of ``φ = (Q, X → Y)`` there
are two ways to restore ``h ⊨ X → Y``:

* **satisfy Y** — set the attributes Y equates to a common value (for a
  variable literal, copy one side onto the other; for a constant literal,
  write the constant); or
* **break X** — retract one premise literal by clearing an attribute it
  reads (sound because a missing X-attribute trivially satisfies the GFD,
  Section 3).

Each candidate fix is scored by the number of attribute writes it needs;
:func:`repair_plan` greedily picks, per violation, a cheapest fix that
does not undo an earlier one, and :func:`apply_repairs` executes and
re-validates.  This is a heuristic (optimal graph repair is intractable),
but it terminates and never increases the violation count of the rules it
touched — both properties are asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..graph.graph import NodeId, PropertyGraph
from ..core.gfd import GFD
from ..core.literals import ConstantLiteral, Literal
from ..core.validation import Violation, det_vio


@dataclass(frozen=True)
class AttributeWrite:
    """One attribute assignment; ``value=None`` clears the attribute."""

    node: NodeId
    attr: str
    value: Optional[Any]

    def describe(self) -> str:
        if self.value is None:
            return f"clear {self.node}.{self.attr}"
        return f"set {self.node}.{self.attr} = {self.value!r}"


@dataclass(frozen=True)
class Fix:
    """A candidate repair for one violation."""

    violation: Violation
    writes: Tuple[AttributeWrite, ...]
    kind: str  # 'satisfy-rhs' | 'break-lhs'

    @property
    def cost(self) -> int:
        """Number of attribute writes."""
        return len(self.writes)


def candidate_fixes(
    gfd: GFD, graph: PropertyGraph, violation: Violation
) -> List[Fix]:
    """All single-literal fixes for one violating match."""
    match = violation.match
    fixes: List[Fix] = []

    # Option A: make every failing RHS literal hold.
    writes: List[AttributeWrite] = []
    targets: Dict[Tuple[NodeId, str], Any] = {}
    feasible = True
    for literal in gfd.rhs:
        write = _satisfy_write(graph, match, literal)
        if write is None:
            continue  # already satisfied
        key = (write.node, write.attr)
        if key in targets and targets[key] != write.value:
            # Two RHS literals demand different values for one attribute
            # (e.g. a denial constraint) — no value fix exists.
            feasible = False
            break
        targets[key] = write.value
        writes.append(write)
    if feasible and writes:
        fixes.append(
            Fix(violation=violation, writes=tuple(writes), kind="satisfy-rhs")
        )

    # Option B: retract one LHS literal (constant GFD denials — where the
    # RHS is unsatisfiable — have no option A, so this is the fallback).
    for literal in gfd.lhs:
        for node, attr in _read_terms(match, literal):
            if graph.has_attr(node, attr):
                fixes.append(
                    Fix(
                        violation=violation,
                        writes=(AttributeWrite(node, attr, None),),
                        kind="break-lhs",
                    )
                )
    return fixes


def _satisfy_write(graph, match, literal: Literal):
    """A write making ``literal`` hold, or ``None`` if it already does.

    For a variable literal the value is copied from the side with the
    *smaller* node id (by repr); the canonical direction makes the fixes
    chosen for symmetric violations (``h`` and its variable swap) agree,
    so repair converges instead of oscillating between the two copies.
    """
    if isinstance(literal, ConstantLiteral):
        node = match[literal.var]
        if graph.get_attr(node, literal.attr) == literal.const:
            return None
        return AttributeWrite(node, literal.attr, literal.const)
    node1, node2 = match[literal.var1], match[literal.var2]
    attr1, attr2 = literal.attr1, literal.attr2
    value1 = graph.get_attr(node1, attr1)
    value2 = graph.get_attr(node2, attr2)
    if value1 is not None and value1 == value2:
        return None
    if (repr(node2), attr2) < (repr(node1), attr1):
        node1, attr1, value1, node2, attr2, value2 = (
            node2, attr2, value2, node1, attr1, value1
        )
    if value1 is not None:
        return AttributeWrite(node2, attr2, value1)
    if value2 is not None:
        return AttributeWrite(node1, attr1, value2)
    # Both absent: invent a shared placeholder.
    return AttributeWrite(node1, attr1, "•repair")


def _read_terms(match, literal: Literal):
    if isinstance(literal, ConstantLiteral):
        return [(match[literal.var], literal.attr)]
    return [
        (match[literal.var1], literal.attr1),
        (match[literal.var2], literal.attr2),
    ]


@dataclass
class RepairPlan:
    """The chosen fixes plus bookkeeping for :func:`apply_repairs`."""

    fixes: List[Fix] = field(default_factory=list)
    unfixable: List[Violation] = field(default_factory=list)

    @property
    def total_writes(self) -> int:
        """Total attribute writes across all chosen fixes."""
        return sum(fix.cost for fix in self.fixes)


def repair_plan(
    sigma: Sequence[GFD], graph: PropertyGraph,
    violations: Optional[Set[Violation]] = None,
) -> RepairPlan:
    """Choose one cheapest non-conflicting fix per violation.

    A fix conflicts with an earlier choice when it writes a different
    value to an already-written (node, attr); such violations are usually
    resolved transitively by the earlier write, and any survivors are
    collected in ``unfixable`` for manual attention.
    """
    by_name: Dict[str, GFD] = {gfd.name or "gfd": gfd for gfd in sigma}
    if violations is None:
        violations = det_vio(sigma, graph)
    plan = RepairPlan()
    written: Dict[Tuple[NodeId, str], Optional[Any]] = {}
    for violation in sorted(violations, key=str):
        gfd = by_name.get(violation.gfd_name)
        if gfd is None:
            plan.unfixable.append(violation)
            continue
        options = sorted(
            candidate_fixes(gfd, graph, violation),
            key=lambda fix: (fix.cost, fix.kind != "satisfy-rhs"),
        )
        chosen = None
        for fix in options:
            clash = any(
                (write.node, write.attr) in written
                and written[(write.node, write.attr)] != write.value
                for write in fix.writes
            )
            if not clash:
                chosen = fix
                break
        if chosen is None:
            plan.unfixable.append(violation)
            continue
        for write in chosen.writes:
            written[(write.node, write.attr)] = write.value
        plan.fixes.append(chosen)
    return plan


def apply_repairs(
    sigma: Sequence[GFD], graph: PropertyGraph, max_rounds: int = 5
) -> Tuple[int, Set[Violation]]:
    """Repair until clean (or ``max_rounds``); mutates ``graph`` in place.

    Returns ``(rounds used, remaining violations)``.  Multiple rounds are
    needed because a fix can create fresh matches of other rules; each
    round strictly reduces or re-plans, and the loop stops early once
    ``G ⊨ Σ``.
    """
    for round_index in range(max_rounds):
        violations = det_vio(sigma, graph)
        if not violations:
            return round_index, set()
        plan = repair_plan(sigma, graph, violations)
        if not plan.fixes:
            return round_index, violations
        for fix in plan.fixes:
            for write in fix.writes:
                if write.value is None:
                    graph.attrs(write.node).pop(write.attr, None)
                else:
                    graph.set_attr(write.node, write.attr, write.value)
    return max_rounds, det_vio(sigma, graph)
