"""BigDansing-style baseline (Appendix, [28]).

BigDansing is a relational data-cleansing system; to check GFDs it must
(a) encode the graph as tables and (b) hard-code each GFD — including the
subgraph-isomorphism test — as user-defined functions over join plans.
This module reproduces that architecture: per pattern edge, a join over
the ``edges`` table with label selections; injectivity and the dependency
``X → Y`` as UDF filters.  Violations come out *identical* to the native
algorithms (the paper reports the same accuracy) but the row volume the
plan touches is far larger, which is the 4.6× slowdown of Fig. 9.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from ..graph.graph import PropertyGraph, WILDCARD
from ..core.gfd import GFD
from ..core.literals import ConstantLiteral
from ..core.validation import Violation, make_violation
from ..relational.encode import attribute_lookup, graph_to_tables
from ..relational.table import (
    EngineStats,
    Table,
    cross_product,
    hash_join,
    project,
    rename,
    select,
)


def validate_bigdansing(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    stats: Optional[EngineStats] = None,
) -> Set[Violation]:
    """Detect ``Vio(Σ, G)`` via relational plans (the baseline's UDF path)."""
    stats = stats if stats is not None else EngineStats()
    tables = graph_to_tables(graph)
    attrs = attribute_lookup(tables)
    violations: Set[Violation] = set()
    for gfd in sigma:
        violations |= _violations_for(gfd, tables, attrs, stats)
    return violations


def _violations_for(
    gfd: GFD,
    tables: Dict[str, Table],
    attrs: Dict[Tuple, object],
    stats: EngineStats,
) -> Set[Violation]:
    bindings = _match_bindings(gfd, tables, stats)
    violations: Set[Violation] = set()
    for row in bindings.rows:
        match = {var: row[f"v_{var}"] for var in gfd.pattern.variables}
        if not _satisfies(gfd.lhs, match, attrs):
            continue
        if _satisfies(gfd.rhs, match, attrs):
            continue
        violations.add(make_violation(gfd, match))
    return violations


def _match_bindings(
    gfd: GFD, tables: Dict[str, Table], stats: EngineStats
) -> Table:
    """A table with one column ``v_<var>`` per pattern variable, one row
    per isomorphic match — built from joins only (the UDF encoding)."""
    pattern = gfd.pattern
    plan: Optional[Table] = None
    bound: Set[str] = set()

    # One join (or cross product) per pattern edge.
    for src, dst, elabel in pattern.edges():
        edge_table = select(
            tables["edges"],
            _edge_predicate(elabel),
            stats,
        )
        if src == dst:  # pattern self-loop: keep only graph self-loops
            edge_table = select(edge_table, lambda r: r["src"] == r["dst"], stats)
            edge_table = rename(edge_table, {"src": f"v_{src}", "elabel": "el"})
            edge_table = project(edge_table, [f"v_{src}", "el"], stats)
        else:
            edge_table = rename(
                edge_table, {"src": f"v_{src}", "dst": f"v_{dst}", "elabel": "el"}
            )
        edge_table = _label_filter(edge_table, f"v_{src}", pattern.label(src), tables, stats)
        if src != dst:
            edge_table = _label_filter(edge_table, f"v_{dst}", pattern.label(dst), tables, stats)
        edge_table = project(
            edge_table,
            [col for col in edge_table.columns if col.startswith("v_")],
            stats,
        )
        edge_table.name = f"e.{src}.{dst}.{elabel}"

        if plan is None:
            plan = edge_table
            bound |= {f"v_{src}", f"v_{dst}"}
            continue
        shared = [
            (col, col)
            for col in (f"v_{src}", f"v_{dst}")
            if col in bound
        ]
        if shared:
            plan = hash_join(plan, edge_table, on=shared, stats=stats)
        else:
            plan = cross_product(plan, edge_table, stats=stats)
        bound |= {f"v_{src}", f"v_{dst}"}

    # Isolated pattern nodes bind against the nodes table.
    for var in pattern.variables:
        if f"v_{var}" in bound:
            continue
        node_table = tables["nodes"]
        label = pattern.label(var)
        if label != WILDCARD:
            node_table = select(node_table, lambda r, l=label: r["label"] == l, stats)
        node_table = rename(node_table, {"id": f"v_{var}", "label": f"l_{var}"})
        node_table.name = f"n{var}"
        plan = (
            node_table
            if plan is None
            else cross_product(plan, node_table, stats=stats)
        )
        bound.add(f"v_{var}")

    if plan is None:
        return Table("empty", [])

    # Injectivity as a final UDF filter (not expressible as equi-joins).
    variables = [f"v_{var}" for var in pattern.variables]

    def injective(row) -> bool:
        values = [row[col] for col in variables]
        return len(set(values)) == len(values)

    return select(plan, injective, stats)


def _edge_predicate(elabel: str):
    if elabel == WILDCARD:
        return lambda row: True
    return lambda row: row["elabel"] == elabel


def _label_filter(
    table: Table, column: str, label: str, tables: Dict[str, Table],
    stats: EngineStats,
) -> Table:
    if label == WILDCARD:
        return table
    labelled = {
        row["id"] for row in tables["nodes"].rows if row["label"] == label
    }
    return select(table, lambda row: row[column] in labelled, stats)


def _satisfies(literals, match: Dict[str, object], attrs: Dict[Tuple, object]) -> bool:
    missing = object()
    for literal in literals:
        if isinstance(literal, ConstantLiteral):
            value = attrs.get((match[literal.var], literal.attr), missing)
            if value is missing or value != literal.const:
                return False
        else:
            value1 = attrs.get((match[literal.var1], literal.attr1), missing)
            value2 = attrs.get((match[literal.var2], literal.attr2), missing)
            if value1 is missing or value2 is missing or value1 != value2:
                return False
    return True
