"""Accuracy metrics for error detection (Appendix).

The paper defines, for a detector ``A`` with detected inconsistent entity
set ``Vio(A)`` against ground truth ``Vio``::

    precision = |Vio ∩ Vio(A)| / |Vio(A)|
    recall    = |Vio ∩ Vio(A)| / |Vio|
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set


@dataclass(frozen=True)
class Accuracy:
    """Precision / recall / F1 of a detector."""

    precision: float
    recall: float
    true_positives: int
    detected: int
    actual: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def accuracy(detected: Iterable, actual: Iterable) -> Accuracy:
    """Compute accuracy of ``detected`` entities against ``actual`` truth."""
    detected_set: Set = set(detected)
    actual_set: Set = set(actual)
    tp = len(detected_set & actual_set)
    return Accuracy(
        precision=tp / len(detected_set) if detected_set else 1.0,
        recall=tp / len(actual_set) if actual_set else 1.0,
        true_positives=tp,
        detected=len(detected_set),
        actual=len(actual_set),
    )
