"""The GCFD baseline (Appendix; [23] — CFDs extended to RDF).

GCFDs constrain values along *conjunctive path patterns*: every pattern
component must be a directed path (no branching, no cycles, no converging
edges), and the dependencies cannot test node identity (the paper's GFD 3
in Fig. 7 needs ``z.id = z'.id`` and is inexpressible; GFDs 1–2 need
cyclic / converging patterns and are likewise out).

We model a GCFD as a GFD whose pattern passes :func:`is_path_pattern`.
``gfds_to_gcfds`` keeps the expressible subset of a GFD set — the source
of the recall gap in Fig. 9 (0.57 vs 0.91): rules that would have caught
errors simply cannot be written.  Validation reuses the native engine
(the comparison is about expressivity, and the paper reports comparable
running times for the two models).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..pattern.components import connected_components
from ..pattern.pattern import GraphPattern
from ..core.gfd import GFD


def is_path_pattern(pattern: GraphPattern) -> bool:
    """Whether the pattern is a conjunction of paths (an out-forest).

    GCFD patterns are conjunctive paths from entity variables, i.e. every
    component is an out-branching tree: no node has two incoming edges (no
    converging paths — Fig. 7's Q10/Q11 fail here) and no component has an
    undirected cycle.  Fig. 7's Q12 *is* such a tree; GFD 3 is rejected by
    the id-test rule instead (see :func:`expressible_as_gcfd`).
    """
    for var in pattern.nodes():
        if len(pattern.in_edges(var)) > 1:
            return False
    for component in connected_components(pattern):
        edges = sum(
            1 for src, dst, _ in pattern.edges()
            if src in component and dst in component
        )
        if edges != len(component) - 1:
            return False
    return True


def expressible_as_gcfd(gfd: GFD) -> bool:
    """Whether ``gfd`` can be written as a GCFD.

    Requires a conjunctive-path pattern and no literal over the reserved
    identity attribute ``id`` across two different variables (GCFDs cannot
    join entities on identity, cf. GFD 3 of Fig. 7).
    """
    if not is_path_pattern(gfd.pattern):
        return False
    from ..core.literals import VariableLiteral

    for literal in (*gfd.lhs, *gfd.rhs):
        if (
            isinstance(literal, VariableLiteral)
            and literal.var1 != literal.var2
            and literal.attr1 == literal.attr2 == "id"
        ):
            return False
    return True


def gfds_to_gcfds(sigma: Sequence[GFD]) -> Tuple[List[GFD], List[GFD]]:
    """Split Σ into (expressible as GCFDs, inexpressible remainder)."""
    expressible: List[GFD] = []
    rejected: List[GFD] = []
    for gfd in sigma:
        (expressible if expressible_as_gcfd(gfd) else rejected).append(gfd)
    return expressible, rejected


def validate_gcfd(sigma: Sequence[GFD], graph) -> Set:
    """Run the GCFD-expressible subset of Σ through the native engine."""
    from ..core.validation import det_vio

    expressible, _ = gfds_to_gcfds(sigma)
    return det_vio(expressible, graph)
