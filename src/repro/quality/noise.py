"""Noise injection (Appendix, "GFDs vs. other models").

The accuracy experiment seeds a clean graph with 2% noise of the three
kinds suggested by the DBpedia quality study [50]:

* **attribute inconsistency** — change the value of some ``x.A``;
* **type inconsistency** — revise the type (label) of an entity;
* **representational inconsistency** — given ``x.A = x'.A`` on two
  same-type entities, revise one side.

The injector records the ground truth ``Vio`` (the entity set it dirtied)
so precision/recall can be computed for any detector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Set

from ..graph.graph import NodeId, PropertyGraph


@dataclass(frozen=True)
class NoiseRecord:
    """One injected error."""

    kind: str  # 'attribute' | 'type' | 'representational'
    node: NodeId
    attr: Optional[str]
    old_value: Any
    new_value: Any


@dataclass
class NoiseReport:
    """Everything the injector did; ``entities`` is the ground-truth Vio."""

    records: List[NoiseRecord] = field(default_factory=list)

    @property
    def entities(self) -> Set[NodeId]:
        """The set of entities noise was injected into."""
        return {record.node for record in self.records}

    def __len__(self) -> int:
        return len(self.records)


def inject_noise(
    graph: PropertyGraph,
    probability: float = 0.02,
    seed: int = 0,
    kinds: Sequence[str] = ("attribute", "type", "representational"),
    corrupt_value: str = "<dirty>",
) -> NoiseReport:
    """Inject noise in place; each node is dirtied with ``probability``.

    The corruption flips the chosen attribute to a value guaranteed absent
    from the clean data (``corrupt_value`` + a counter) — matching the
    paper's protocol of revising values away from the originals.
    """
    rng = random.Random(seed)
    report = NoiseReport()
    counter = 0
    nodes = sorted(graph.nodes(), key=repr)
    label_pool = sorted(graph.labels())
    for node in nodes:
        if rng.random() >= probability:
            continue
        kind = rng.choice(list(kinds))
        if kind == "type" and len(label_pool) > 1:
            old = graph.label(node)
            new = rng.choice([l for l in label_pool if l != old])
            graph.add_node(node, new, None)
            report.records.append(
                NoiseRecord(kind="type", node=node, attr=None,
                            old_value=old, new_value=new)
            )
            continue
        attrs = sorted(graph.attrs(node))
        if not attrs:
            continue
        attr = rng.choice(attrs)
        old = graph.get_attr(node, attr)
        new = f"{corrupt_value}{counter}"
        counter += 1
        graph.set_attr(node, attr, new)
        effective = "attribute" if kind == "type" else kind
        report.records.append(
            NoiseRecord(kind=effective, node=node, attr=attr,
                        old_value=old, new_value=new)
        )
    return report
