"""Continuous validation: concurrent update streams over a warm session.

The batch API (:meth:`~repro.session.ValidationSession.update`) applies
one op batch synchronously in the caller's thread.  Production traffic is
not shaped like that: many producers emit small mutations continuously,
and consumers want to know *what changed* about ``Vio(Σ, G)``, not to
re-diff full violation sets.  :class:`ValidationService` is the streaming
front end the ROADMAP's north star implies:

* **concurrent ingestion** — any number of threads call
  :meth:`ValidationService.submit` with update ops (the
  ``session.update()`` tuple format); a bounded queue applies producer
  backpressure when the appliers falls behind;
* **bounded delta batching** — one applier thread owns the session and
  cuts batches at a size watermark (``max_batch_ops``) or an age
  watermark (``max_batch_age`` seconds measured on the oldest queued
  op), whichever trips first — latency stays bounded under trickle
  load, throughput stays batched under burst load;
* **per-batch op coalescing** — a batch is folded to a final-state
  equivalent op list before it touches the session
  (:func:`coalesce_ops`): redundant attribute writes collapse to the
  last one, an ``edge+`` followed by ``edge-`` of the same edge (or the
  reverse, when the final state matches the graph) cancels outright;
* **violation diffs** — each applied batch advances the service *epoch*
  and emits a :class:`ViolationDiff` ``(epoch, added, removed)`` to
  every subscriber.  Diffs are exact and compose
  (:meth:`ViolationDiff.then`), so any telescoped diff stream
  reproduces the batch-computed violation set precisely;
* **per-subscriber backpressure** — each :class:`Subscription` holds a
  bounded pending queue; when a slow consumer overflows it, the two
  *oldest* diffs are merged into one (composition, not drop), so a lagging
  subscriber loses granularity, never correctness.

The theory anchor is Berkholz, Keppeler and Schweikardt ("Answering
FO+MOD queries under updates on bounded degree databases", PAPERS.md):
for bounded-shape patterns, near-constant delay per update is
achievable.  The engineering counterpart here is that the whole warm
path is O(|Δ|) per batch — the incremental validator re-checks only
matches around the touched nodes, the session's caches take *targeted*
invalidation (``BlockMaterialiser.apply_ops`` / ``MatchStore.
apply_ops``), and process-backed runs forward the same ops to worker
shards, which patch their materialised blocks in place.

Example::

    from repro import ValidationService, ValidationSession

    with ValidationSession(graph, sigma, executor="process") as session:
        session.validate(n=4)                      # warm the engine
        with ValidationService(session) as service:
            sub = service.subscribe()
            service.submit([("attr", "c1", "val", "Sydney")])
            service.flush()
            diff = sub.next(timeout=1.0)           # ViolationDiff or None
        session.validate(n=4)                      # delta-shipped, warm
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .core.incremental import UpdateDiff
from .core.validation import Violation
from .graph.graph import PropertyGraph
from .parallel.faults import FaultPolicy, FaultStats, resolve_fault_policy
from .session import ValidationSession

#: update-op kinds the service accepts (the ``session.update()`` format)
OP_KINDS = ("attr", "edge+", "edge-", "node")

#: default batch-size watermark: apply once this many ops are queued
DEFAULT_MAX_BATCH_OPS = 256

#: default batch-age watermark (seconds): apply once the oldest queued op
#: has waited this long, however few ops are pending
DEFAULT_MAX_BATCH_AGE = 0.05

#: default producer-side queue bound (ops): ``submit`` blocks past this
DEFAULT_MAX_PENDING_OPS = 16_384

#: default per-subscriber pending-diff bound before coalescing kicks in
DEFAULT_SUBSCRIBER_PENDING = 256

#: per-op apply-latency samples retained for the quantile estimate
LATENCY_WINDOW = 65_536


@dataclass(frozen=True)
class ViolationDiff:
    """What one applied batch changed about ``Vio(Σ, G)``.

    ``epoch`` is the service's batch counter (monotonic from 1);
    ``added`` / ``removed`` are exact deltas against the epoch before,
    so ``added & removed == frozenset()`` and applying the diff to the
    previous violation set (:meth:`apply`) yields the next one.
    """

    epoch: int
    added: frozenset
    removed: frozenset

    @property
    def empty(self) -> bool:
        """Whether this diff changes nothing (kept for epoch bookkeeping)."""
        return not self.added and not self.removed

    def apply(self, violations: Iterable[Violation]) -> Set[Violation]:
        """The violation set after this diff: ``(V - removed) | added``."""
        return (set(violations) - set(self.removed)) | set(self.added)

    def then(self, other: "ViolationDiff") -> "ViolationDiff":
        """Sequential composition (same algebra as ``UpdateDiff.then``).

        The result spans both windows and carries the later epoch; a
        violation introduced then resolved (or vice versa) inside the
        combined window cancels out, so coalesced diff streams telescope
        to exactly the same final set as the originals.
        """
        return ViolationDiff(
            epoch=other.epoch,
            added=frozenset(
                (self.added - other.removed) | (other.added - self.removed)
            ),
            removed=frozenset(
                (self.removed - other.added) | (other.removed - self.added)
            ),
        )


@dataclass
class ServiceStats:
    """Counters of one :class:`ValidationService`'s lifetime.

    ``submitted`` counts ops accepted by :meth:`~ValidationService.
    submit`; ``applied`` the ops that reached ``session.update()`` after
    coalescing; ``cancelled`` the ops coalescing folded away
    (``submitted == applied + cancelled`` once the queue is drained).
    ``batches`` counts applied batches (== the current epoch),
    ``diffs_emitted`` non-empty diffs fanned out to subscribers, and
    ``diffs_merged`` the backpressure coalescing events on slow
    subscribers.

    ``faults`` is the applier's fault-handling slice (see
    :class:`~repro.parallel.faults.FaultStats`): an applier exception
    absorbed by restart-with-replay counts one ``worker_errors``, each
    replay counts one ``respawns`` and its surviving ops count toward
    ``retried_units``.  ``failure`` is the terminal applier exception
    once the retry budget is exhausted (the cause chained onto the
    ``RuntimeError`` that ``submit``/``flush``/``close`` raise) —
    ``None`` while the service is healthy.
    """

    submitted: int = 0
    applied: int = 0
    cancelled: int = 0
    batches: int = 0
    diffs_emitted: int = 0
    diffs_merged: int = 0
    faults: FaultStats = field(default_factory=FaultStats)
    failure: Optional[BaseException] = None


def coalesce_ops(
    ops: Sequence[tuple], graph: PropertyGraph
) -> Tuple[List[tuple], int]:
    """Fold a batch of update ops to a final-state-equivalent op list.

    ``Vio(Σ, G)`` depends only on the final graph state, and diffs are
    emitted per *batch* — so any folding that preserves the batch's net
    effect on the graph is semantically free.  Three rules, each safe by
    construction:

    * **attr last-wins**: repeated writes to one ``(node, attr)`` keep
      only the final value;
    * **edge final-state**: repeated ``edge+``/``edge-`` ops on one
      ``(src, dst, label)`` key reduce to the *last* op's desired state,
      compared against the graph's current state (the applier thread
      owns the graph, so the read is race-free): if they already agree —
      an add-then-remove round trip, or a remove-then-re-add of an
      existing edge — the ops cancel entirely, otherwise exactly one op
      survives;
    * **node ops pass through**: ``("node", ...)`` insertions are kept
      verbatim *and* disable both foldings for ops naming their node —
      an edge op can be valid only after its endpoint's insertion, and
      a node re-add may reset state an attr fold would misorder, so ops
      entangled with a node op keep their original relative order.

    Folded attr/edge ops commute with everything else left in the batch
    (they share no node with any node op, and ops on distinct keys are
    independent), so they are emitted after the pass-through ops.
    Returns ``(ops, cancelled)`` where ``cancelled`` is the number of
    ops folded away.
    """
    ops = [tuple(op) for op in ops]
    node_opped = {op[1] for op in ops if op[0] == "node"}
    out: List[tuple] = []
    attr_final: dict = {}
    edge_final: dict = {}
    for op in ops:
        kind = op[0]
        if kind == "node":
            out.append(op)
        elif kind == "attr":
            if op[1] in node_opped:
                out.append(op)
            else:
                attr_final[(op[1], op[2])] = op[3]
        elif kind in ("edge+", "edge-"):
            if op[1] in node_opped or op[2] in node_opped:
                out.append(op)
            else:
                edge_final[(op[1], op[2], op[3])] = kind
        else:
            raise ValueError(
                f"unknown update kind {kind!r}; expected one of {OP_KINDS}"
            )
    for (node, attr), value in attr_final.items():
        out.append(("attr", node, attr, value))
    for (src, dst, label), kind in edge_final.items():
        present = graph.has_edge(src, dst, label)
        if kind == "edge+" and not present:
            out.append(("edge+", src, dst, label))
        elif kind == "edge-" and present:
            out.append(("edge-", src, dst, label))
        # else: the graph already holds the desired final state — the
        # batch's ops on this edge cancelled each other out.
    return out, len(ops) - len(out)


class Subscription:
    """One consumer's view of the service's violation-diff stream.

    Created via :meth:`ValidationService.subscribe`.  ``baseline`` is
    the (frozen) violation set at subscription time; applying every
    received diff to it in order — or any coalesced telescoping of them
    — reproduces the service's current violation set exactly.

    ``max_pending`` bounds the pending queue: past it, the two oldest
    undelivered diffs are merged into one (:meth:`ViolationDiff.then`),
    so a slow consumer degrades to coarser diffs instead of unbounded
    memory or lost changes.
    """

    def __init__(
        self,
        service: "ValidationService",
        max_pending: int = DEFAULT_SUBSCRIBER_PENDING,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._service = service
        self.max_pending = max_pending
        self.baseline: frozenset = frozenset()
        self._pending: "deque[ViolationDiff]" = deque()  #: guarded-by: _service._cond
        #: backpressure coalescing events on this consumer
        self.merged = 0  #: guarded-by: _service._cond
        self.closed = False  #: guarded-by: _service._cond

    def _offer(self, diff: ViolationDiff) -> None:  #: holds: _service._cond
        """Enqueue one diff (called under the service lock)."""
        self._pending.append(diff)
        while len(self._pending) > self.max_pending:
            first = self._pending.popleft()
            second = self._pending.popleft()
            self._pending.appendleft(first.then(second))
            self.merged += 1
            self._service._stats.diffs_merged += 1

    def next(self, timeout: Optional[float] = None) -> Optional[ViolationDiff]:
        """The next pending diff, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout, or — once the service is closed —
        when no diffs remain.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        # lexically `self._service._cond` (no local alias) so the
        # lock-discipline lint can see the guarded accesses below
        with self._service._cond:
            while not self._pending:
                if self.closed or self._service._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._service._cond.wait(remaining)
            return self._pending.popleft()

    def drain(self) -> List[ViolationDiff]:
        """All pending diffs, without blocking."""
        with self._service._cond:
            out = list(self._pending)
            self._pending.clear()
            return out

    def close(self) -> None:
        """Detach from the service; pending diffs are discarded."""
        with self._service._cond:
            self.closed = True
            self._pending.clear()
            self._service._subs = [
                sub for sub in self._service._subs if sub is not self
            ]
            self._service._cond.notify_all()


class ValidationService:
    """Streaming violation maintenance over a pinned warm session.

    One applier thread owns the ``session`` (and therefore its graph)
    for the service's lifetime: producers never touch shared state
    beyond the ingestion queue, so ``submit`` is safe from any thread.
    Do not call ``session.update()``/``validate()`` (or mutate the
    graph) from outside while the service is open, except between a
    :meth:`flush` and the next :meth:`submit` — the applier only runs
    when ops are queued.

    ``max_batch_ops`` / ``max_batch_age`` are the batching watermarks
    (size and seconds); ``max_pending_ops`` bounds the ingestion queue
    (producer backpressure); ``clock`` is injectable for tests.

    Closing (:meth:`close`, or leaving the context) drains the queue,
    applies what remains, stops the applier thread and wakes every
    subscriber; the underlying session stays open and warm — worker
    pools and resident shards survive for the next ``validate()``.

    The applier is supervised, not fail-stop: an exception while
    applying a batch is retried up to ``fault_policy.max_retries``
    times (exponential backoff), replaying only the ops the failed
    attempt did not get through (:meth:`_surviving_ops` — replay is
    idempotent against a half-applied graph) and recomputing the
    emitted :class:`ViolationDiff` from the violation *sets*, so a
    recovered stream carries exactly the diffs and epoch numbers a
    fault-free run would have.  Only an exhausted retry budget closes
    the stream, with the original cause chained
    (``ServiceStats.failure``).
    """

    def __init__(
        self,
        session: ValidationSession,
        max_batch_ops: int = DEFAULT_MAX_BATCH_OPS,
        max_batch_age: float = DEFAULT_MAX_BATCH_AGE,
        max_pending_ops: int = DEFAULT_MAX_PENDING_OPS,
        clock: Callable[[], float] = time.monotonic,
        fault_policy: Optional[FaultPolicy] = None,
    ) -> None:
        if max_batch_ops < 1:
            raise ValueError("max_batch_ops must be >= 1")
        if max_batch_age < 0:
            raise ValueError("max_batch_age must be >= 0")
        if max_pending_ops < max_batch_ops:
            raise ValueError("max_pending_ops must be >= max_batch_ops")
        self.session = session
        #: resolved applier-supervision knobs (retry budget, backoff and
        #: — for tests/CI — the injection plan; see ``parallel/faults.py``)
        self.fault_policy = resolve_fault_policy(fault_policy)
        self.max_batch_ops = max_batch_ops
        self.max_batch_age = max_batch_age
        self.max_pending_ops = max_pending_ops
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # _cond wraps _lock, so holding either means holding the same
        # mutex; the annotations list both to accept either spelling.
        #: queued (submit_seq, op, enqueue_time) triples
        self._queue: "deque[Tuple[int, tuple, float]]" = deque()  #: guarded-by: _lock, _cond
        self._subs: List[Subscription] = []  #: guarded-by: _lock, _cond
        self._closed = False  #: guarded-by: _lock, _cond
        self._error: Optional[BaseException] = None  #: guarded-by: _lock, _cond
        self._epoch = 0  #: guarded-by: _lock, _cond
        self._submit_seq = 0  #: guarded-by: _lock, _cond
        self._applied_seq = 0  #: guarded-by: _lock, _cond
        self._stats = ServiceStats()  #: guarded-by: _lock, _cond
        self._latencies: "deque[float]" = deque(maxlen=LATENCY_WINDOW)  #: guarded-by: _lock, _cond
        # The applier owns the session from here on; seed the current
        # violation set before it starts (the one safe moment).
        self._current: frozenset = frozenset(session.violations)  #: guarded-by: _lock, _cond
        self._thread = threading.Thread(
            target=self._run, name="validation-service-applier", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # producer API
    # ------------------------------------------------------------------
    def submit(self, ops: Iterable[tuple]) -> int:
        """Queue update ops for application; returns the last submit seq.

        Thread-safe; callable from any number of producers.  Blocks when
        the ingestion queue is full (producer backpressure) until the
        applier drains it.  Op kinds are validated here so a malformed
        op raises in the *producer's* thread, not the applier's.
        """
        ops = [tuple(op) for op in ops]
        for op in ops:
            if not op or op[0] not in OP_KINDS:
                raise ValueError(
                    f"unknown update kind {op[0] if op else op!r}; "
                    f"expected one of {OP_KINDS}"
                )
        with self._cond:
            for op in ops:
                self._raise_if_failed()
                if self._closed:
                    raise RuntimeError("service is closed")
                while len(self._queue) >= self.max_pending_ops:
                    self._cond.wait()
                    self._raise_if_failed()
                    if self._closed:
                        raise RuntimeError("service is closed")
                self._submit_seq += 1
                self._stats.submitted += 1
                self._queue.append((self._submit_seq, op, self._clock()))
            self._cond.notify_all()
            return self._submit_seq

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until everything submitted so far has been applied.

        Returns ``False`` on timeout.  After a successful flush (with no
        concurrent producers) the session's violation set reflects every
        submitted op, and it is safe to call ``session.validate()``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            target = self._submit_seq
            while self._applied_seq < target:
                self._raise_if_failed()
                if self._closed and not self._queue:
                    return self._applied_seq >= target
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            self._raise_if_failed()
            return True

    # ------------------------------------------------------------------
    # consumer API
    # ------------------------------------------------------------------
    def subscribe(
        self, max_pending: int = DEFAULT_SUBSCRIBER_PENDING
    ) -> Subscription:
        """Register a diff consumer; see :class:`Subscription`.

        The subscription's ``baseline`` is the violation set as of the
        last applied batch — diffs received afterwards telescope from it.
        """
        sub = Subscription(self, max_pending=max_pending)
        with self._cond:
            if self._closed:
                raise RuntimeError("service is closed")
            sub.baseline = self._current
            self._subs.append(sub)
        return sub

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The number of batches applied so far."""
        with self._lock:
            return self._epoch

    def stats(self) -> ServiceStats:
        """A snapshot of the service's counters."""
        with self._lock:
            return replace(
                self._stats, faults=replace(self._stats.faults)
            )

    def latency_quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of per-op apply latency (seconds).

        Measured submit-to-applied per op over a sliding window of
        :data:`LATENCY_WINDOW` samples; ``None`` before the first batch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return None
        index = min(len(samples) - 1, int(q * len(samples)))
        return samples[index]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ValidationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, drain: bool = True) -> None:
        """Stop the applier (idempotent); the session stays open.

        With ``drain=True`` (default) queued ops are applied before the
        thread exits; ``drain=False`` discards them.  If the applier
        died (retry budget exhausted), the failure is re-raised here
        with its original cause chained.
        """
        with self._cond:
            if not drain:
                self._queue.clear()
            self._closed = True
            self._cond.notify_all()
        self._thread.join()
        with self._cond:
            for sub in self._subs:
                sub.closed = True
            self._cond.notify_all()
            self._raise_if_failed()

    def _raise_if_failed(self) -> None:  #: holds: _lock, _cond
        if self._error is not None:
            # Not consumed: every blocked producer/flusher/closer gets
            # the same failure, with the applier's original exception
            # chained as the cause (it also stays readable on
            # ``stats().failure``).
            raise RuntimeError(
                "validation-service applier failed; the service is closed "
                "and the session may need a full validate() to reconcile"
            ) from self._error

    # ------------------------------------------------------------------
    # the applier thread
    # ------------------------------------------------------------------
    def _cut_batch(self) -> Optional[List[Tuple[int, tuple, float]]]:
        """Wait for a watermark and slice one batch off the queue.

        Returns ``None`` when the service is closed and drained.  Must
        be called from the applier thread only.
        """
        with self._cond:
            while True:
                if self._queue:
                    if (
                        self._closed
                        or len(self._queue) >= self.max_batch_ops
                    ):
                        break
                    age = self._clock() - self._queue[0][2]
                    if age >= self.max_batch_age:
                        break
                    self._cond.wait(self.max_batch_age - age)
                elif self._closed:
                    return None
                else:
                    self._cond.wait()
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), self.max_batch_ops))
            ]
            self._cond.notify_all()  # wake producers blocked on the bound
            return batch

    def _surviving_ops(self, ops: Sequence[tuple]) -> List[tuple]:
        """The ops a failed apply attempt did not get through.

        Replay after a mid-batch failure must be idempotent: the failed
        attempt may have applied any prefix of the batch before raising,
        and ``Vio(Σ, G)`` depends only on the final graph state — so an
        op whose effect is already the graph's current state is dropped
        rather than re-applied (a re-add of a present edge or a re-remove
        of an absent one would raise; a re-write of an attr is a no-op
        the session would still pay for).  Node insertions of
        already-present nodes are likewise dropped.  Runs in the applier
        thread, which owns the graph — the reads are race-free.
        """
        graph = self.session.graph
        out: List[tuple] = []
        for op in ops:
            kind = op[0]
            if kind == "attr":
                if op[1] not in graph or graph.attrs(op[1]).get(op[2]) != op[3]:
                    out.append(op)
            elif kind == "edge+":
                if not graph.has_edge(op[1], op[2], op[3]):
                    out.append(op)
            elif kind == "edge-":
                if graph.has_edge(op[1], op[2], op[3]):
                    out.append(op)
            elif op[1] not in graph:  # node insertion
                out.append(op)
        return out

    def _apply_with_retry(
        self,
        ops: List[tuple],
        epoch: int,
        before: frozenset,
        fired: Dict[int, int],
    ) -> Tuple[frozenset, frozenset, int, int]:
        """Apply one batch, surviving applier faults by replay.

        ``epoch`` is the epoch this batch becomes when it lands;
        ``before`` is the violation set of the epoch before; ``fired``
        tracks injected applier failures already delivered (applier-
        local state, threaded through by :meth:`_run`).  Returns
        ``(added, removed, failures, retried_ops)``: the batch's exact
        violation delta plus the fault accounting.  The fault-free path
        is byte-for-byte the old fail-stop apply; a retried batch
        recomputes its delta from the violation *sets*, which is exact
        whatever prefix of the ops the failed attempts applied.  Raises
        once ``fault_policy.max_retries`` replays are exhausted.
        """
        policy = self.fault_policy
        plan = policy.plan
        failures = 0
        retried_ops = 0
        attempt = 0
        while True:
            try:
                if plan is not None:
                    for at_epoch, times in plan.applier_failures:
                        if at_epoch == epoch and fired.get(epoch, 0) < times:
                            fired[epoch] = fired.get(epoch, 0) + 1
                            raise RuntimeError(
                                f"injected applier failure at epoch {epoch}"
                            )
                if attempt == 0:
                    diff = self.session.update(ops) if ops else UpdateDiff()
                    return (
                        frozenset(diff), frozenset(diff.removed),
                        failures, retried_ops,
                    )
                survivors = self._surviving_ops(ops)
                retried_ops += len(survivors)
                if survivors:
                    self.session.update(survivors)
                after = frozenset(self.session.violations)
                return after - before, before - after, failures, retried_ops
            except BaseException:
                failures += 1
                attempt += 1
                if attempt > policy.max_retries:
                    # Terminal: the retry accounting must still land on
                    # the stats channel before the failure surfaces —
                    # a fault that kills the service is a fault that
                    # fired.  (The last failure aborts rather than
                    # replays, hence one fewer respawn than error.)
                    with self._cond:
                        self._stats.faults.worker_errors += failures
                        self._stats.faults.respawns += failures - 1
                        self._stats.faults.retried_units += retried_ops
                    raise
                time.sleep(policy.retry_wait(attempt))

    def _run(self) -> None:
        with self._cond:
            current = self._current
            epoch = self._epoch
        fired: Dict[int, int] = {}
        while True:
            try:
                batch = self._cut_batch()
            except BaseException as exc:  # pragma: no cover - clock bugs
                self._fail(exc)
                return
            if batch is None:
                return
            try:
                ops, cancelled = coalesce_ops(
                    [op for _, op, _ in batch], self.session.graph
                )
                added, removed, failures, retried_ops = (
                    self._apply_with_retry(ops, epoch + 1, current, fired)
                )
            except BaseException as exc:
                self._fail(exc)
                return
            now = self._clock()
            current = (current - removed) | added
            epoch += 1
            with self._cond:
                self._epoch = epoch
                self._applied_seq = batch[-1][0]
                self._stats.batches += 1
                self._stats.applied += len(ops)
                self._stats.cancelled += cancelled
                if failures:
                    self._stats.faults.worker_errors += failures
                    self._stats.faults.respawns += failures
                    self._stats.faults.retried_units += retried_ops
                self._latencies.extend(
                    now - enqueued for _, _, enqueued in batch
                )
                self._current = current
                if added or removed:
                    emitted = ViolationDiff(
                        epoch=epoch, added=added, removed=removed
                    )
                    for sub in self._subs:
                        sub._offer(emitted)
                    self._stats.diffs_emitted += 1
                self._cond.notify_all()

    def _fail(self, exc: BaseException) -> None:
        with self._cond:
            self._error = exc
            self._stats.failure = exc
            self._closed = True
            for sub in self._subs:
                sub.closed = True
            self._cond.notify_all()


# re-exported for convenience alongside the service front end
__all__ = [
    "ValidationService",
    "Subscription",
    "ViolationDiff",
    "ServiceStats",
    "coalesce_ops",
    "DEFAULT_MAX_BATCH_OPS",
    "DEFAULT_MAX_BATCH_AGE",
    "DEFAULT_MAX_PENDING_OPS",
    "DEFAULT_SUBSCRIBER_PENDING",
]
