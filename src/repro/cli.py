"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main entry points for shell use:

* ``validate``   — detect GFD violations in a graph file
* ``reason``     — satisfiability / implication / cover analysis of a rule file
* ``generate``   — emit a synthetic graph (and optionally a rule set)
* ``bench``      — a one-shot repVal/disVal comparison on a graph file
* ``discover``   — mine GFDs from a graph file
* ``serve``      — continuous validation: stream update ops, emit
  violation diffs

Graphs use the line-JSON format of :mod:`repro.graph.io`.  Rules use a
small text format, one GFD per ``[name]`` section::

    [unique-capital]
    pattern: x:country -capital-> y:city; x -capital-> z:city
    when:
    then: y.val = z.val

(an empty/omitted ``when`` is ``X = ∅``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from .core import GFD, det_vio, generate_gfds, is_satisfiable, parse_gfd
from .core.implication import minimal_cover
from .graph import load_graph, power_law_graph, save_graph
from .graph.partition import greedy_edge_cut_partition
from .matching import EVAL_MODES
from .session import ValidationSession


# ----------------------------------------------------------------------
# rule files
# ----------------------------------------------------------------------
def parse_rule_file(text: str) -> List[GFD]:
    """Parse the ``[name] / pattern: / when: / then:`` rule format."""
    rules: List[GFD] = []
    name: Optional[str] = None
    fields = {}

    def flush() -> None:
        if name is None:
            return
        if "pattern" not in fields or "then" not in fields:
            raise ValueError(f"rule [{name}] needs 'pattern:' and 'then:'")
        rules.append(
            parse_gfd(
                fields["pattern"],
                f"{fields.get('when', '')} => {fields['then']}",
                name=name,
            )
        )

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            flush()
            name = line[1:-1].strip()
            fields = {}
        elif ":" in line:
            key, value = line.split(":", 1)
            fields[key.strip()] = value.strip()
        else:
            raise ValueError(f"line {line_no}: unrecognised rule syntax {raw!r}")
    flush()
    return rules


def format_rule_file(rules: Sequence[GFD]) -> str:
    """Inverse of :func:`parse_rule_file` (used by ``discover``)."""
    from .pattern.parser import format_pattern

    blocks = []
    for index, gfd in enumerate(rules):
        lines = [f"[{gfd.name or f'rule{index}'}]"]
        lines.append(f"pattern: {format_pattern(gfd.pattern)}")
        if gfd.lhs:
            lines.append("when: " + ", ".join(str(l) for l in gfd.lhs))
        lines.append("then: " + ", ".join(str(l) for l in gfd.rhs))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def _detect(graph, rules, args):
    """Violations with the chosen backend.

    The default (``--executor simulated``, no ``--processes``) is direct
    sequential ``detVio`` — one indexed pass, no per-pivot data-block
    materialisation, same cost as before the session layer.  The flags
    opt into a session-backed parallel run; without an explicit
    ``--processes`` cap, a process/auto run is sized to the usable CPUs
    (one worker slot per process).
    """
    if args.executor == "simulated" and not args.processes:
        return det_vio(rules, graph)
    from .parallel.executors import usable_cpus

    n = args.processes or max(1, usable_cpus())
    with ValidationSession(
        graph, rules, executor=args.executor, processes=args.processes,
        persistent=False, ship_mode=args.ship_mode,
        fault_policy=_fault_policy(args),
    ) as session:
        return session.validate(n=n).violations


def cmd_validate(args, out: TextIO) -> int:
    graph = load_graph(args.graph)
    rules = parse_rule_file(Path(args.rules).read_text())
    violations = _detect(graph, rules, args)
    if args.json:
        payload = [
            {"rule": v.gfd_name, "match": {k: str(n) for k, n in v.assignment}}
            for v in sorted(violations, key=str)
        ]
        json.dump(payload, out, indent=2)
        out.write("\n")
    else:
        out.write(f"{len(violations)} violation(s) of {len(rules)} rule(s) "
                  f"in {args.graph}\n")
        for violation in sorted(violations, key=str)[: args.limit]:
            out.write(f"  {violation}\n")
        if len(violations) > args.limit:
            out.write(f"  ... and {len(violations) - args.limit} more\n")
    return 1 if violations else 0


def cmd_reason(args, out: TextIO) -> int:
    rules = parse_rule_file(Path(args.rules).read_text())
    satisfiable = is_satisfiable(rules)
    out.write(f"rules: {len(rules)}\n")
    out.write(f"satisfiable: {satisfiable}\n")
    if satisfiable:
        cover = minimal_cover(rules)
        removed = len(rules) - len(cover)
        out.write(f"minimal cover: {len(cover)} rule(s) "
                  f"({removed} implied by the rest)\n")
        for gfd in rules:
            if all(gfd.name != kept.name for kept in cover):
                out.write(f"  redundant: {gfd.name}\n")
    return 0 if satisfiable else 1


def cmd_generate(args, out: TextIO) -> int:
    graph = power_law_graph(
        args.nodes, args.edges, alpha=args.alpha, seed=args.seed,
        domain_size=args.domain,
    )
    save_graph(graph, args.output)
    out.write(f"wrote {args.output}: |V|={graph.num_nodes}, "
              f"|E|={graph.num_edges}\n")
    if args.rules_output:
        sigma = generate_gfds(graph, count=args.rules, seed=args.seed)
        Path(args.rules_output).write_text(format_rule_file(sigma))
        out.write(f"wrote {args.rules_output}: {len(sigma)} rule(s)\n")
    return 0


def cmd_bench(args, out: TextIO) -> int:
    graph = load_graph(args.graph)
    rules = parse_rule_file(Path(args.rules).read_text())
    fragmentation = greedy_edge_cut_partition(graph, args.workers, seed=0)
    with ValidationSession(
        graph, rules, executor=args.executor, processes=args.processes,
        ship_mode=args.ship_mode, fault_policy=_fault_policy(args),
    ) as session:
        for iteration in range(args.repeat):
            started = time.perf_counter()
            rep = session.validate(n=args.workers)
            rep_wall = time.perf_counter() - started
            started = time.perf_counter()
            dis = session.validate(fragmentation=fragmentation)
            dis_wall = time.perf_counter() - started
            if args.repeat > 1:
                out.write(
                    f"iteration {iteration + 1}: repVal {rep_wall:.3f}s  "
                    f"disVal {dis_wall:.3f}s\n"
                )
    out.write(f"{'algorithm':8s} {'T(cost)':>12s} {'makespan':>10s} "
              f"{'comm%':>6s} {'|Vio|':>6s}  executor\n")
    for run in (rep, dis):
        out.write(
            f"{run.algorithm:8s} {run.parallel_time:12,.0f} "
            f"{run.report.makespan:10,.0f} "
            f"{run.report.communication_share * 100:5.1f}% "
            f"{len(run.violations):6d}  {run.executor}\n"
        )
    # The final iteration's shipping is always reported (not only on
    # --repeat > 1): it is how a user verifies the warm path engaged.
    stats = [s for s in (rep.shipping, dis.shipping) if s]
    if stats:
        out.write(
            f"shipping (final iteration): {sum(s.full for s in stats)} "
            f"full, {sum(s.delta for s in stats)} delta, "
            f"{sum(s.reused for s in stats)} reused shard(s), "
            f"{sum(s.shipped_nodes for s in stats)} node(s) shipped\n"
        )
        out.write(
            f"shipped bytes (final iteration): "
            f"{sum(s.shard_bytes for s in stats)} shard, "
            f"{sum(s.sigma_bytes for s in stats)} sigma, "
            f"{sum(s.payload_bytes for s in stats)} unit payload\n"
        )
        if any(s.mapped for s in stats):
            out.write(
                f"mapped via shared memory (final iteration): "
                f"{sum(s.mapped for s in stats)} shard(s), "
                f"{sum(s.mapped_bytes for s in stats)} byte(s) "
                "(zero-copy, not shipped)\n"
            )
    else:
        out.write("shipping (final iteration): none "
                  "(simulated executor ships nothing)\n")
    if rep.violations != dis.violations:
        out.write("WARNING: algorithms disagree on Vio — this is a bug\n")
        return 2
    return 0


def cmd_serve(args, out: TextIO) -> int:
    """Continuous validation over a stream of update ops.

    Ops arrive as JSON lines — one op ``["attr", node, attr, value]`` or
    one batch ``[["edge+", u, v, label], ...]`` per line — from
    ``--replay FILE`` or stdin.  Each applied batch's violation diff is
    written as it is emitted; a summary (service counters, final
    violation count, p99 apply latency) closes the stream.  Exit code 0
    when the final graph satisfies every rule, 1 otherwise.
    """
    from .parallel.executors import usable_cpus
    from .service import ValidationService

    graph = load_graph(args.graph)
    rules = parse_rule_file(Path(args.rules).read_text())
    workers = args.processes or max(1, usable_cpus())
    source = open(args.replay) if args.replay else sys.stdin
    try:
        fault_policy = _fault_policy(args)
        with ValidationSession(
            graph, rules, executor=args.executor, processes=args.processes,
            ship_mode=args.ship_mode, fault_policy=fault_policy,
        ) as session:
            session.validate(n=workers)  # warm pool, shards and caches
            with ValidationService(
                session,
                max_batch_ops=args.batch_ops,
                max_batch_age=args.batch_age,
                fault_policy=fault_policy,
            ) as service:
                subscriber = service.subscribe()
                for raw in source:
                    raw = raw.strip()
                    if not raw or raw.startswith("#"):
                        continue
                    payload = json.loads(raw)
                    if payload and isinstance(payload[0], str):
                        payload = [payload]  # a single op line
                    service.submit(tuple(op) for op in payload)
                    for diff in subscriber.drain():
                        _write_diff(diff, args.json, out)
                service.flush()
                for diff in subscriber.drain():
                    _write_diff(diff, args.json, out)
                stats = service.stats()
                p99 = service.latency_quantile(0.99)
            violations = session.violations
        summary = {
            "submitted": stats.submitted,
            "applied": stats.applied,
            "cancelled": stats.cancelled,
            "batches": stats.batches,
            "diffs": stats.diffs_emitted,
            "violations": len(violations),
            "p99_apply_seconds": p99,
        }
        if args.json:
            json.dump({"summary": summary}, out)
            out.write("\n")
        else:
            out.write(
                "# served {submitted} op(s) in {batches} batch(es) "
                "({cancelled} coalesced away): {diffs} diff(s), "
                "{violations} final violation(s)".format(**summary)
            )
            if p99 is not None:
                out.write(f", p99 apply {p99 * 1e3:.2f}ms")
            out.write("\n")
        return 1 if violations else 0
    finally:
        if args.replay:
            source.close()


def _write_diff(diff, as_json: bool, out: TextIO) -> None:
    if as_json:
        json.dump(
            {
                "epoch": diff.epoch,
                "added": [str(v) for v in sorted(diff.added, key=str)],
                "removed": [str(v) for v in sorted(diff.removed, key=str)],
            },
            out,
        )
        out.write("\n")
    else:
        out.write(
            f"epoch {diff.epoch}: +{len(diff.added)} -{len(diff.removed)}\n"
        )
        for violation in sorted(diff.added, key=str):
            out.write(f"  + {violation}\n")
        for violation in sorted(diff.removed, key=str):
            out.write(f"  - {violation}\n")


def cmd_discover(args, out: TextIO) -> int:
    graph = load_graph(args.graph)
    from .parallel.executors import usable_cpus

    workers = args.workers or args.processes or max(1, usable_cpus())
    # Mining itself runs session-backed: enumeration and counting are
    # work units over the chosen execution backend, and the mined-Σ
    # confirmation pass reuses the same warm worker shards.
    session_options = {}
    if args.match_budget is not None:
        session_options["match_store_budget"] = args.match_budget
    with ValidationSession(
        graph, [], executor=args.executor, processes=args.processes,
        ship_mode=args.ship_mode, fault_policy=_fault_policy(args),
        **session_options,
    ) as session:
        run = session.discover(
            min_support=args.support,
            min_confidence=args.confidence,
            max_edges=args.max_edges,
            max_matches=args.max_matches,
            n=workers,
            eval_mode=args.eval_mode,
        )
    rules = run.sigma
    text = format_rule_file(rules) if rules else "# nothing discovered\n"
    if args.output:
        Path(args.output).write_text(text)
        out.write(f"wrote {args.output}: {len(rules)} rule(s)\n")
    else:
        out.write(text)
    # Data-path accounting per mining phase: shipped byte volume (the
    # aggregate-payload win as a number, not a claim) and how many units
    # replayed worker-resident matches instead of re-running VF2.
    for phase in run.phases:
        shipping = phase.shipping
        line = f"# {phase.phase}: {phase.wall_seconds:.3f}s wall"
        if shipping is not None:
            line += (
                f", {shipping.full} full / {shipping.delta} delta / "
                f"{shipping.reused} reused shard(s), "
                f"{shipping.shard_bytes + shipping.sigma_bytes} shard+sigma "
                f"byte(s), {shipping.payload_bytes} unit-payload byte(s)"
            )
            if shipping.mapped:
                line += (
                    f", {shipping.mapped_bytes} byte(s) shm-mapped "
                    f"({shipping.mapped} shard(s))"
                )
        store = phase.match_store
        if store is not None and (store.hits or store.misses):
            line += (
                f", {store.hits}/{store.hits + store.misses} unit(s) "
                "replayed resident matches"
            )
        if phase.phase in ("enumerate", "count", "confirm"):
            line += f", {phase.vf2_units} unit(s) ran VF2 enumeration"
        out.write(line + "\n")
    if rules:
        # Confirmation pass (rules mined below confidence 1.0
        # legitimately carry violations).
        violations = run.violations if run.violations is not None else set()
        out.write(
            f"# verified ({run.executor}): {len(violations)} "
            f"violation(s) across {len(rules)} rule(s)\n"
        )
        # A confidence-1.0 rule from an *uncapped* pattern holds on every
        # match, so a confirmation violation means mining and validation
        # disagree — the same internal-inconsistency contract cmd_bench
        # enforces.  Capped rules are excluded: their confidence covers
        # only the canonical counted subset, so confirmation violations
        # from uncounted matches are legitimate.
        exact = {
            m.gfd.name
            for m in run.rules
            if m.confidence == 1.0 and m.gfd.name not in run.capped_rules
        }
        broken = sorted(exact & {v.gfd_name for v in violations})
        if broken:
            out.write(
                "ERROR: rule(s) mined at confidence 1.0 still report "
                f"violations: {', '.join(broken)}\n"
            )
            return 2
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def _positive_int(text: str) -> int:
    """Argparse type for counts that must be ≥ 1 (workers, repeats, …).

    Rejecting at parse time beats silent clamping: ``--repeat 0`` used to
    be quietly promoted to one iteration.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _fault_plan_spec(text: str):
    """Argparse type for ``--fault-plan``: parse at the CLI boundary so
    a malformed plan fails loudly on *every* subcommand, including runs
    that end up on the sequential backend and would never consult it."""
    from .parallel.faults import FaultPlan

    try:
        return FaultPlan.from_spec(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _nonnegative_int(text: str) -> int:
    """Argparse type for budgets where 0 is meaningful (disables)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}"
        )
    return value


def _unit_float(text: str) -> float:
    """Argparse type for ratios that must lie in [0, 1] (confidence)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be between 0 and 1, got {value}"
        )
    return value


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    """The execution-backend switches every validating command accepts."""
    parser.add_argument("--executor", choices=["simulated", "process", "auto"],
                        default="simulated",
                        help="execution backend: cost-simulated serial run, "
                             "a real process pool, or auto-selection")
    parser.add_argument("--processes", type=_positive_int, default=None,
                        help="size the real process pool "
                             "(executor=process/auto; oversubscribing the "
                             "CPUs is honoured with a warning)")
    parser.add_argument("--ship-mode", choices=["pickle", "shm", "auto"],
                        default="auto", dest="ship_mode",
                        help="how full shards reach worker processes: "
                             "pickled blobs over the pipe, zero-copy "
                             "shared-memory arenas, or size-based "
                             "auto-selection")
    parser.add_argument("--fault-retries", type=_nonnegative_int,
                        default=None, dest="fault_retries",
                        help="per-batch retry budget after a worker "
                             "crash/stall before the run fails "
                             "(default: 2)")
    parser.add_argument("--fault-backoff", type=float, default=None,
                        dest="fault_backoff",
                        help="base pre-retry backoff in seconds, doubled "
                             "per attempt (default: 0.05)")
    parser.add_argument("--heartbeat-interval", type=float, default=None,
                        dest="heartbeat_interval",
                        help="worker liveness beat cadence in seconds; "
                             "silence past 10 intervals means dead "
                             "(default: 0.5)")
    parser.add_argument("--unit-deadline", type=float, default=None,
                        dest="unit_deadline",
                        help="declare a worker stalled when one unit "
                             "makes no progress for this many seconds "
                             "(default: off)")
    parser.add_argument("--degrade-floor", type=_positive_int,
                        default=None, dest="degrade_floor",
                        help="minimum live pool slots before a "
                             "degrading run fails outright (default: 1)")
    parser.add_argument("--fault-plan", type=_fault_plan_spec,
                        default=None, dest="fault_plan",
                        help="JSON fault-injection plan (the "
                             "REPRO_FAULT_PLAN format) — deterministic "
                             "crash/stall/drop/applier faults for "
                             "recovery testing")


def _fault_policy(args):
    """The explicit FaultPolicy the flags describe, or ``None``.

    ``None`` (no flag given) lets the library resolve defaults plus any
    ``REPRO_FAULT_PLAN`` environment plan; any explicit flag builds a
    full policy (unset fields keep their defaults).  ``--fault-plan``
    arrives already parsed (see :func:`_fault_plan_spec`).
    """
    from .parallel.faults import FaultPolicy

    plan = args.fault_plan
    overrides = {
        name: value
        for name, value in (
            ("max_retries", args.fault_retries),
            ("backoff", args.fault_backoff),
            ("heartbeat_interval", args.heartbeat_interval),
            ("unit_deadline", args.unit_deadline),
            ("degrade_floor", args.degrade_floor),
            ("plan", plan),
        )
        if value is not None
    }
    if not overrides:
        return None
    return FaultPolicy(**overrides)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GFDs: functional dependencies for graphs "
                    "(Fan, Wu, Xu — SIGMOD 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="detect GFD violations")
    validate.add_argument("graph", help="graph file (line-JSON)")
    validate.add_argument("rules", help="rule file")
    validate.add_argument("--json", action="store_true",
                          help="machine-readable output")
    validate.add_argument("--limit", type=_nonnegative_int, default=20,
                          help="max violations to print")
    _add_executor_flags(validate)
    validate.set_defaults(func=cmd_validate)

    reason = sub.add_parser("reason", help="satisfiability / cover analysis")
    reason.add_argument("rules", help="rule file")
    reason.set_defaults(func=cmd_reason)

    generate = sub.add_parser("generate", help="emit a synthetic graph")
    generate.add_argument("output", help="graph file to write")
    generate.add_argument("--nodes", type=int, default=1000)
    generate.add_argument("--edges", type=int, default=2000)
    generate.add_argument("--alpha", type=float, default=1.0,
                          help="power-law skew exponent")
    generate.add_argument("--domain", type=int, default=100,
                          help="attribute active-domain size")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--rules", type=int, default=10,
                          help="rules to generate with --rules-output")
    generate.add_argument("--rules-output", help="also write a rule file")
    generate.set_defaults(func=cmd_generate)

    bench = sub.add_parser("bench", help="repVal/disVal comparison "
                                         "(optionally repeated warm)")
    bench.add_argument("graph", help="graph file")
    bench.add_argument("rules", help="rule file")
    bench.add_argument("--workers", type=_positive_int, default=8)
    bench.add_argument("--repeat", type=_positive_int, default=1,
                       help="run the comparison N times inside one warm "
                            "ValidationSession (pool + shards reused)")
    _add_executor_flags(bench)
    bench.set_defaults(func=cmd_bench)

    discover = sub.add_parser("discover", help="mine GFDs from a graph "
                                               "(session-backed, parallel)")
    discover.add_argument("graph", help="graph file")
    discover.add_argument("--support", type=_positive_int, default=5)
    discover.add_argument("--confidence", type=_unit_float, default=0.95)
    discover.add_argument("--output", help="rule file to write")
    discover.add_argument("--workers", type=_positive_int, default=None,
                          help="worker slots for the mining plan "
                               "(default: --processes or the usable CPUs)")
    discover.add_argument("--max-edges", type=_positive_int, default=2,
                          help="largest candidate pattern, in edges")
    discover.add_argument("--max-matches", type=_positive_int, default=5000,
                          help="matches counted per candidate pattern "
                               "(canonical selection)")
    discover.add_argument("--match-budget", type=_nonnegative_int,
                          default=None,
                          help="matches kept resident per worker match "
                               "store for count/confirm replay "
                               "(0 disables; default: library budget)")
    discover.add_argument("--eval-mode", choices=list(EVAL_MODES),
                          default="auto",
                          help="how mine/count units answer aggregate "
                               "queries: factorise acyclic patterns, "
                               "enumerate matches, or pick automatically")
    _add_executor_flags(discover)
    discover.set_defaults(func=cmd_discover)

    serve = sub.add_parser("serve", help="continuous validation: stream "
                                         "update ops, emit violation diffs")
    serve.add_argument("graph", help="graph file (line-JSON)")
    serve.add_argument("rules", help="rule file")
    serve.add_argument("--replay", help="read op JSON-lines from a file "
                                        "instead of stdin")
    serve.add_argument("--json", action="store_true",
                       help="machine-readable diffs and summary")
    serve.add_argument("--batch-ops", type=_positive_int, default=256,
                       dest="batch_ops",
                       help="batch-size watermark: apply once this many "
                            "ops are queued")
    serve.add_argument("--batch-age", type=float, default=0.05,
                       dest="batch_age",
                       help="batch-age watermark in seconds: apply once "
                            "the oldest queued op has waited this long")
    _add_executor_flags(serve)
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None, out: TextIO = sys.stdout) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
