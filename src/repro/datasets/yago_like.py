"""A YAGO2-like knowledge graph (stand-in for [44]).

Covers every structure the paper's YAGO2 experiments touch:

* **flights** — entities with id / departure / destination / times,
  exactly the shape of ``G1`` and pattern ``Q1`` (Fig. 1/2), including
  seeded pairs that share a flight id but disagree on the destination
  (the Paris→NYC vs Paris→Singapore inconsistency);
* **countries and capitals** — ``Q2``/φ2, with seeded two-capital
  countries (the Canberra/Melbourne inconsistency);
* **families** — ``hasChild``/``hasParent`` edges, with seeded
  child-and-parent cycles for Fig. 7's GFD 1;
* **mayors and parties** — ``mayorOf``/``memberOf``/``locatedIn``, with
  seeded cross-country mayor/party pairs for Fig. 7's GFD 3 (the NYC /
  Democratic Party error).

``scale`` controls entity counts; all seeded errors are recorded as
ground truth.
"""

from __future__ import annotations

import random
from typing import List, Set

from ..graph.graph import PropertyGraph
from ..pattern.parser import parse_pattern
from ..core.gfd import GFD, denial, parse_gfd
from .base import Dataset


def build(
    scale: int = 200,
    seed: int = 0,
    flight_errors: int = 5,
    capital_errors: int = 3,
    family_errors: int = 4,
    mayor_errors: int = 3,
) -> Dataset:
    """Build the YAGO2-like dataset at the given ``scale``.

    ``scale`` is the approximate number of *top-level* entities per
    domain (flights, people, cities); total node count is roughly
    ``7 × scale``.  Error counts are hard seeds recorded as truth.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    truth: Set = set()
    uid = _IdGen()

    cities = _build_places(graph, rng, uid, scale)
    _build_flights(graph, rng, uid, scale, cities, flight_errors, truth)
    _seed_capital_errors(graph, rng, uid, capital_errors, truth)
    _build_families(graph, rng, uid, scale, family_errors, truth)
    _build_mayors(graph, rng, uid, scale, cities, mayor_errors, truth)

    return Dataset(
        name="yago2-like",
        graph=graph,
        gfds=curated_gfds(),
        truth_entities=truth,
    )


class _IdGen:
    def __init__(self) -> None:
        self._next = 0

    def __call__(self, prefix: str) -> str:
        self._next += 1
        return f"{prefix}{self._next}"


# ----------------------------------------------------------------------
# places
# ----------------------------------------------------------------------
def _build_places(graph, rng, uid, scale) -> List[str]:
    countries = []
    cities = []
    for i in range(max(3, scale // 20)):
        country = uid("country")
        graph.add_node(country, "country", {"val": f"Country{i}", "id": country})
        countries.append(country)
    for i in range(max(6, scale // 4)):
        city = uid("city")
        country = rng.choice(countries)
        graph.add_node(city, "city", {"val": f"City{i}", "id": city})
        graph.add_edge(city, country, "locatedIn")
        cities.append(city)
    # One legitimate capital per country.
    for country in countries:
        graph.add_edge(country, rng.choice(cities), "capital")
    return cities


# ----------------------------------------------------------------------
# flights (G1 / Q1 / φ1)
# ----------------------------------------------------------------------
def _build_flights(graph, rng, uid, scale, cities, errors, truth) -> None:
    # Each flight carries its *own* id/city/time value nodes, exactly as in
    # the paper's G1 (Fig. 1): the two DL1 entries have separate "Paris"
    # nodes.  City names come from the place entities built above.
    city_names = [graph.get_attr(city, "val") for city in cities]
    flight_count = max(4, scale // 2)
    for i in range(flight_count):
        _add_flight(graph, uid, f"FL{i}",
                    rng.choice(city_names), rng.choice(city_names),
                    f"{rng.randrange(24):02d}:{rng.randrange(60):02d}",
                    f"{rng.randrange(24):02d}:{rng.randrange(60):02d}")
    # Seeded errors: two entries with the same id but different destination
    # (the Paris→NYC vs Paris→Singapore case).
    for e in range(errors):
        depart = rng.choice(city_names)
        dest_a, dest_b = rng.sample(city_names, 2)
        good = _add_flight(graph, uid, f"DL{e}", depart, dest_a, "14:50", "22:35")
        bad = _add_flight(graph, uid, f"DL{e}", depart, dest_b, "14:50", "22:35")
        # Ground truth covers every entity φ1's violating matches bind:
        # the flights plus their id / from / to value nodes.
        for flight in (good, bad):
            truth.add(flight)
            for dst, labels in graph.out_neighbors(flight).items():
                if labels & {"number", "from", "to"}:
                    truth.add(dst)


def _add_flight(graph, uid, flight_id, from_name, to_name, dep, arr) -> str:
    flight = uid("flight")
    graph.add_node(flight, "flight", {"val": flight_id})
    id_node = uid("fid")
    graph.add_node(id_node, "id", {"val": flight_id})
    graph.add_edge(flight, id_node, "number")
    for role, label, value in (("from", "city", from_name), ("to", "city", to_name)):
        value_node = uid("fcity")
        graph.add_node(value_node, label, {"val": value})
        graph.add_edge(flight, value_node, role)
    for role, value in (("depart", dep), ("arrive", arr)):
        time_node = uid("time")
        graph.add_node(time_node, "time", {"val": value})
        graph.add_edge(flight, time_node, role)
    return flight


# ----------------------------------------------------------------------
# capitals (Q2 / φ2)
# ----------------------------------------------------------------------
def _seed_capital_errors(graph, rng, uid, errors, truth) -> None:
    for e in range(errors):
        country = uid("country")
        graph.add_node(country, "country", {"val": f"ErrCountry{e}", "id": country})
        first = uid("city")
        second = uid("city")
        graph.add_node(first, "city", {"val": f"CapA{e}", "id": first})
        graph.add_node(second, "city", {"val": f"CapB{e}", "id": second})
        graph.add_edge(country, first, "capital")
        graph.add_edge(country, second, "capital")
        truth.add(country)
        truth.add(first)
        truth.add(second)


# ----------------------------------------------------------------------
# families (Fig. 7 GFD 1)
# ----------------------------------------------------------------------
def _build_families(graph, rng, uid, scale, errors, truth) -> None:
    people = []
    for i in range(scale):
        person = uid("person")
        graph.add_node(person, "person", {"val": f"Person{i}", "id": person})
        people.append(person)
    linked = set()
    for _ in range(scale):
        parent, child = rng.sample(people, 2)
        if (child, parent) in linked:  # avoid accidental parent cycles
            continue
        linked.add((parent, child))
        graph.add_edge(parent, child, "hasChild")
        graph.add_edge(child, parent, "hasParent")
    # Seeded: y is both child and parent of x.
    for _ in range(errors):
        x, y = rng.sample(people, 2)
        graph.add_edge(x, y, "hasChild")
        graph.add_edge(x, y, "hasParent")
        truth.add(x)
        truth.add(y)


# ----------------------------------------------------------------------
# mayors and parties (Fig. 7 GFD 3)
# ----------------------------------------------------------------------
def _build_mayors(graph, rng, uid, scale, cities, errors, truth) -> None:
    parties = []
    for i in range(max(2, scale // 25)):
        party = uid("party")
        graph.add_node(party, "party", {"val": f"Party{i}", "id": party})
        # A party belongs to the country of a random city.
        city = rng.choice(cities)
        country = _country_of(graph, city)
        if country is not None:
            graph.add_edge(party, country, "locatedIn")
        parties.append(party)
    mayor_count = max(2, scale // 10)
    for i in range(mayor_count):
        mayor = uid("person")
        city = rng.choice(cities)
        graph.add_node(mayor, "person", {"val": f"Mayor{i}", "id": mayor})
        graph.add_edge(mayor, city, "mayorOf")
        # Consistent affiliation: a party in the same country.
        country = _country_of(graph, city)
        party = _party_in(graph, parties, country, rng)
        if party is not None:
            graph.add_edge(mayor, party, "memberOf")
    # Seeded: mayor of a city in one country, member of a party in another.
    for e in range(errors):
        mayor = uid("person")
        graph.add_node(mayor, "person", {"val": f"BadMayor{e}", "id": mayor})
        city = rng.choice(cities)
        graph.add_edge(mayor, city, "mayorOf")
        country = _country_of(graph, city)
        other = _party_in(graph, parties, country, rng, invert=True)
        if other is None:
            continue
        graph.add_edge(mayor, other, "memberOf")
        # GFD 3's matches bind mayor, city, party and both countries.
        truth.add(mayor)
        truth.add(city)
        truth.add(other)
        truth.add(country)
        truth.add(_country_of(graph, other))


def _country_of(graph, city):
    for dst, labels in graph.out_neighbors(city).items():
        if "locatedIn" in labels:
            return dst
    return None


def _party_in(graph, parties, country, rng, invert: bool = False):
    pool = []
    for party in parties:
        party_country = None
        for dst, labels in graph.out_neighbors(party).items():
            if "locatedIn" in labels:
                party_country = dst
        same = party_country == country
        if (same and not invert) or (not same and invert):
            pool.append(party)
    return rng.choice(pool) if pool else None


# ----------------------------------------------------------------------
# curated rules
# ----------------------------------------------------------------------
def curated_gfds() -> List[GFD]:
    """The paper's YAGO2 rules: φ1, φ2 and Fig. 7's GFD 1 and GFD 3."""
    phi1 = parse_gfd(
        "x:flight -number-> x1:id; x -from-> x2:city; x -to-> x3:city; "
        "y:flight -number-> y1:id; y -from-> y2:city; y -to-> y3:city",
        "x1.val = y1.val => x2.val = y2.val, x3.val = y3.val",
        name="phi1-flight",
    )
    phi2 = parse_gfd(
        "x:country -capital-> y:city; x -capital-> z:city",
        " => y.val = z.val",
        name="phi2-capital",
    )
    gfd1 = denial(
        parse_pattern("x:person -hasChild-> y:person; x -hasParent-> y"),
        name="gfd1-child-parent",
    )
    gfd3 = parse_gfd(
        "x:person -mayorOf-> y:city -locatedIn-> z:country; "
        "x -memberOf-> w:party -locatedIn-> z':country",
        " => z.id = z'.id",
        name="gfd3-mayor-party",
    )
    return [phi1, phi2, gfd1, gfd3]
