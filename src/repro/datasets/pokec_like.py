"""A Pokec-like social network (stand-in for [2]).

Pokec supplies the paper's social-graph workload: accounts with profile
attributes, friendships with power-law degrees, posted/liked blogs.  The
fake-account rule φ6 (Example 5(6)) needs its specific topology — two
accounts that both like ``k`` common blogs, each posting a blog with the
same peculiar keyword, one account already confirmed fake — so the builder
plants both *confirmed* rings (x' fake, x already marked fake: clean) and
*unconfirmed* rings (x not yet marked: the violations φ6 must catch).
"""

from __future__ import annotations

import random
from typing import List, Set

from ..graph.graph import PropertyGraph
from ..core.gfd import GFD, parse_gfd
from .base import Dataset

PECULIAR_KEYWORD = "free prize"


def build(
    scale: int = 400,
    fake_rings: int = 6,
    unmarked_rings: int = 5,
    seed: int = 0,
) -> Dataset:
    """Build the Pokec-like dataset.

    ``scale`` regular accounts plus ``fake_rings`` consistent fake pairs
    and ``unmarked_rings`` pairs where the second account is not yet
    marked — those are φ6's violations and the ground truth.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    truth: Set = set()
    uid = [0]

    def fresh(prefix: str) -> str:
        uid[0] += 1
        return f"{prefix}{uid[0]}"

    accounts = []
    for i in range(scale):
        account = fresh("acct")
        graph.add_node(
            account,
            "account",
            {
                "val": f"user{i}",
                "is_fake": "false",
                "age": str(18 + rng.randrange(50)),
                "region": f"region{rng.randrange(12)}",
            },
        )
        accounts.append(account)

    # Power-law-ish friendships: preferential attachment by index.
    for i, account in enumerate(accounts[1:], start=1):
        for _ in range(1 + rng.randrange(3)):
            target = accounts[int(rng.random() ** 2 * i)]
            if target != account:
                graph.add_edge(account, target, "friend")

    # Ordinary blog activity.
    blogs = []
    for _ in range(scale):
        author = rng.choice(accounts)
        blog = fresh("blog")
        graph.add_node(blog, "blog", {"keyword": f"topic{rng.randrange(40)}"})
        graph.add_edge(author, blog, "post")
        for _ in range(rng.randrange(4)):
            fan = rng.choice(accounts)
            graph.add_edge(fan, blog, "like")
        blogs.append(blog)

    # Fake rings: x' (confirmed fake) and x co-like two blogs; each posts a
    # blog with the peculiar keyword.
    def plant_ring(marked: bool) -> List[str]:
        x_prime = fresh("acct")
        x = fresh("acct")
        graph.add_node(x_prime, "account",
                       {"val": x_prime, "is_fake": "true"})
        graph.add_node(x, "account",
                       {"val": x, "is_fake": "true" if marked else "false"})
        shared = []
        for _ in range(2):
            blog = fresh("blog")
            graph.add_node(blog, "blog", {"keyword": f"topic{rng.randrange(40)}"})
            graph.add_edge(x, blog, "like")
            graph.add_edge(x_prime, blog, "like")
            shared.append(blog)
        posts = []
        for author in (x_prime, x):
            blog = fresh("blog")
            graph.add_node(blog, "blog", {"keyword": PECULIAR_KEYWORD})
            graph.add_edge(author, blog, "post")
            posts.append(blog)
        return [x_prime, x, *shared, *posts]

    for _ in range(fake_rings):
        plant_ring(marked=True)
    for _ in range(unmarked_rings):
        ring = plant_ring(marked=False)
        # φ6's violating matches bind the whole ring: both accounts, the
        # co-liked blogs and the two keyword posts.
        truth.update(ring)

    return Dataset(
        name="pokec-like",
        graph=graph,
        gfds=curated_gfds(),
        truth_entities=truth,
    )


def curated_gfds(k: int = 2) -> List[GFD]:
    """φ6 (fake accounts) with ``k`` co-liked blogs, plus a profile rule.

    φ6: if x' is confirmed fake, x and x' like blogs y1..yk, x' posts z1,
    x posts z2, and both z1 and z2 carry the peculiar keyword, then x is
    fake too.
    """
    like_clauses = "; ".join(
        f"x:account -like-> y{i}:blog; x':account -like-> y{i}" for i in range(1, k + 1)
    )
    phi6 = parse_gfd(
        f"{like_clauses}; x' -post-> z1:blog; x -post-> z2:blog",
        f"x'.is_fake = 'true', z1.keyword = '{PECULIAR_KEYWORD}', "
        f"z2.keyword = '{PECULIAR_KEYWORD}' => x.is_fake = 'true'",
        name="phi6-fake-account",
    )
    return [phi6]
