"""A DBpedia-like knowledge graph (stand-in for [1]).

DBpedia's distinguishing structure for this paper is its *ontology*:
entities link to type (class) nodes, classes form a subclass hierarchy,
and some classes are declared ``disjointWith`` each other.  Fig. 7's GFD 2
— "an entity cannot have two disjoint types" — lives at this schema level,
and the evaluation also sweeps DBpedia with generated GFDs, so the graph
carries generic attributes for the workload generator too.

Seeded errors: entities typed with two disjoint classes.
"""

from __future__ import annotations

import random
from typing import List, Set

from ..graph.graph import PropertyGraph
from ..core.gfd import GFD, parse_gfd
from .base import Dataset


def build(
    scale: int = 500,
    num_classes: int = 24,
    disjoint_pairs: int = 6,
    type_errors: int = 6,
    seed: int = 0,
) -> Dataset:
    """Build the DBpedia-like dataset.

    ``scale`` entities are typed against a ``num_classes``-class ontology
    (a forest of subclass trees); ``disjoint_pairs`` class pairs are
    declared disjoint, and ``type_errors`` entities are seeded with two
    disjoint types.
    """
    rng = random.Random(seed)
    graph = PropertyGraph()
    truth: Set = set()

    classes = [f"class{i}" for i in range(num_classes)]
    for i, cls in enumerate(classes):
        graph.add_node(cls, "class", {"val": f"Class{i}", "id": cls})
    # Subclass forest: every class except roots points to a parent.
    roots = max(2, num_classes // 6)
    for i in range(roots, num_classes):
        parent = classes[rng.randrange(i)]
        graph.add_edge(classes[i], parent, "subClassOf")

    # Disjointness between classes from different root subtrees.
    declared = set()
    attempts = 0
    while len(declared) < disjoint_pairs and attempts < 100:
        attempts += 1
        a, b = rng.sample(classes, 2)
        if (a, b) in declared or (b, a) in declared:
            continue
        declared.add((a, b))
        graph.add_edge(a, b, "disjointWith")
        graph.add_edge(b, a, "disjointWith")

    # Entities with one type each (clean) plus generic attributes so the
    # GFD generator has material to work with.  Node labels mirror a type
    # system — DBpedia has ~200 entity types, and label selectivity is
    # what keeps pivot candidate sets (and hence |W|) manageable.
    entity_labels = [
        "person", "place", "organisation", "work", "species", "event",
    ]
    entities = []
    for i in range(scale):
        entity = f"entity{i}"
        attrs = {
            "val": f"Entity{i}",
            "id": entity,
            **{f"A{k}": f"v{rng.randrange(50)}" for k in range(3)},
        }
        graph.add_node(entity, rng.choice(entity_labels), attrs)
        graph.add_edge(entity, rng.choice(classes), "type")
        entities.append(entity)
    # Relationships between entities (for generated pattern workloads).
    for _ in range(scale * 2):
        src, dst = rng.sample(entities, 2)
        graph.add_edge(src, dst, rng.choice(["relatedTo", "links", "sameAs"]))

    # Seeded: an entity typed with two disjoint classes.
    disjoint_list = sorted(declared)
    for e in range(type_errors):
        if not disjoint_list:
            break
        a, b = disjoint_list[e % len(disjoint_list)]
        entity = f"bad_entity{e}"
        graph.add_node(entity, rng.choice(entity_labels),
                       {"val": f"BadEntity{e}", "id": entity})
        graph.add_edge(entity, a, "type")
        graph.add_edge(entity, b, "type")
        truth.add(entity)
        truth.add(a)
        truth.add(b)

    return Dataset(
        name="dbpedia-like",
        graph=graph,
        gfds=curated_gfds(),
        truth_entities=truth,
    )


def curated_gfds() -> List[GFD]:
    """Fig. 7's GFD 2: no entity may carry two disjoint types.

    ``x`` is a wildcard — the rule quantifies over entities of *any* type,
    exactly the schema-level flavour of the paper's Q11.
    """
    gfd2 = parse_gfd(
        "x -type-> y:class; x -type-> y':class; y -disjointWith-> y'",
        " => y.val = y'.val",
        name="gfd2-disjoint-types",
    )
    return [gfd2]
