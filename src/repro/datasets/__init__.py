"""Synthetic stand-ins for the paper's three real-life graphs
(DESIGN.md §1.3 records the substitution)."""

from .base import Dataset
from . import dbpedia_like, pokec_like, yago_like

__all__ = ["Dataset", "dbpedia_like", "pokec_like", "yago_like"]
