"""Common shape for the dataset stand-ins.

The paper evaluates on DBpedia, YAGO2 and Pokec; offline we generate
synthetic graphs with the same *relevant* structure (DESIGN.md §1.3).
Every builder returns a :class:`Dataset`: the graph, a curated GFD set
matching the paper's examples, and the ground-truth entity set of seeded
inconsistencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from ..graph.graph import NodeId, PropertyGraph
from ..core.gfd import GFD


@dataclass
class Dataset:
    """A benchmark dataset: graph + curated rules + seeded ground truth."""

    name: str
    graph: PropertyGraph
    gfds: List[GFD] = field(default_factory=list)
    truth_entities: Set[NodeId] = field(default_factory=set)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Dataset({self.name}, |V|={self.graph.num_nodes}, "
            f"|E|={self.graph.num_edges}, ‖Σ‖={len(self.gfds)}, "
            f"|truth|={len(self.truth_entities)})"
        )
