"""Replicate-and-split for skewed graphs (Appendix, Fig. 8).

Power-law graphs concentrate edges on hub nodes, so a few data blocks
``G_z̄`` dwarf the rest and a single worker's unit dominates the makespan.
The paper's remedy: for units whose block exceeds a threshold θ, replicate
the unit ``k = ⌈|G_z̄| / θ⌉`` times with the same pivot, each replica
responsible for a θ-sized share; errors are then detected by shipping
partial matches between the replicas rather than whole blocks.

In this reproduction the *primary* sub-unit executes the detection once
(so ``Vio(Σ, G)`` stays exact) while the measured matching cost is shared
evenly across all ``k`` sub-units' workers, and each non-primary replica
is charged its partial-match shipment — the parallel-time effect of the
real sharded enumeration (DESIGN.md §1.3 records this substitution).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List, Sequence

from .workload import WorkUnit


def split_oversized(
    units: Sequence[WorkUnit], threshold: int
) -> List[WorkUnit]:
    """Apply replicate-and-split to every unit with ``block_size > θ``.

    Returns a new unit list; oversized units are replaced by ``k``
    sub-units sharing a ``split_id``, the first of which is the primary.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    out: List[WorkUnit] = []
    next_split = 0
    for unit in units:
        if unit.block_size <= threshold:
            out.append(unit)
            continue
        k = math.ceil(unit.block_size / threshold)
        for replica in range(k):
            out.append(
                replace(
                    unit,
                    weight=unit.weight,  # weight is pre-share; cost_share=1/k
                    split_id=next_split,
                    split_k=k,
                    primary=replica == 0,
                )
            )
        next_split += 1
    return out


def split_statistics(units: Sequence[WorkUnit]) -> dict:
    """Summary counters for reporting/benchmarks."""
    split_units = [u for u in units if u.split_id is not None]
    return {
        "total_units": len(units),
        "split_units": len(split_units),
        "split_groups": len({u.split_id for u in split_units}),
        "max_block": max((u.block_size for u in units), default=0),
    }
