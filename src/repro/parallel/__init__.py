"""Parallel-scalable GFD validation (Sections 5.2 and 6): the workload
model, balancing/assignment strategies, the simulated cost-accounted
cluster, and the repVal/disVal algorithm families with their ablation
variants."""

from .cluster import ClusterReport, CostModel, SimulatedCluster, run_concurrently
from .workload import WorkUnit, block_of, block_size_of, estimate_workload, total_weight, unit_weight
from .balancing import (
    lpt_partition,
    makespan,
    makespan_lower_bound,
    random_partition,
)
from .assignment import balance_only_assign, bicriteria_assign, random_assign
from .multiquery import (
    GroupMember,
    SharedGroup,
    build_shared_groups,
    singleton_groups,
)
from .skew import split_oversized, split_statistics
from .engine import (
    MaterialiserStats,
    UnitResult,
    ValidationRun,
    execute_unit,
    run_assignment,
    run_units,
    sequential_run,
)
from .executors import (
    EXECUTORS,
    SHIP_MODES,
    MatchStore,
    MatchStoreStats,
    MultiprocessExecutor,
    ShardCache,
    ShardPlane,
    ShippingStats,
    SimulatedExecutor,
    execute_plan,
    resolve_executor,
    shm_available,
    worker_graph,
)
from .faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultPolicy,
    FaultStats,
    resolve_fault_policy,
)
from .repval import rep_nop, rep_ran, rep_val
from .disval import dis_nop, dis_ran, dis_val
from .reduction import reduce_rules, reduction_ratio

__all__ = [
    "ClusterReport",
    "CostModel",
    "SimulatedCluster",
    "run_concurrently",
    "WorkUnit",
    "block_of",
    "block_size_of",
    "estimate_workload",
    "total_weight",
    "unit_weight",
    "lpt_partition",
    "makespan",
    "makespan_lower_bound",
    "random_partition",
    "balance_only_assign",
    "bicriteria_assign",
    "random_assign",
    "GroupMember",
    "SharedGroup",
    "build_shared_groups",
    "singleton_groups",
    "split_oversized",
    "split_statistics",
    "MatchStore",
    "MatchStoreStats",
    "MaterialiserStats",
    "UnitResult",
    "ValidationRun",
    "execute_unit",
    "run_assignment",
    "run_units",
    "sequential_run",
    "EXECUTORS",
    "SHIP_MODES",
    "MultiprocessExecutor",
    "ShardCache",
    "ShardPlane",
    "ShippingStats",
    "SimulatedExecutor",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultPolicy",
    "FaultStats",
    "resolve_fault_policy",
    "execute_plan",
    "resolve_executor",
    "shm_available",
    "worker_graph",
    "rep_nop",
    "rep_ran",
    "rep_val",
    "dis_nop",
    "dis_ran",
    "dis_val",
    "reduce_rules",
    "reduction_ratio",
]
