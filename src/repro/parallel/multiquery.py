"""Multi-query optimisation (Appendix: common sub-patterns, after [31]).

GFDs generated from the same frequent features routinely share a pattern
up to isomorphism (the paper's generator builds ``‖Σ‖`` rules from five
seed features).  For a group of GFDs with pairwise-isomorphic patterns:

* the pivot candidate space and every data block coincide, and
* one match enumeration serves the whole group — each member only re-checks
  its own literals on the shared match (translated into the group leader's
  variable space through the witnessing isomorphism).

So a *shared work unit* loads its block once and enumerates matches once
instead of ``|group|`` times.  Logical duplicates (identical literals under
the isomorphism) degenerate to members whose checks coincide; their
violations are still reported under their own GFD names and variables.
``repnop``/``disnop`` disable sharing, which is (part of) the 1.5–1.9×
optimisation gap of Exp-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..pattern.containment import isomorphism_fingerprint
from ..pattern.embedding import embeddings
from ..core.gfd import GFD
from ..core.literals import Literal


@dataclass(frozen=True)
class GroupMember:
    """One GFD of a shared group, aligned to the leader's variables.

    ``iso`` maps leader variables to this member's variables; ``lhs`` and
    ``rhs`` are the member's literals rewritten into leader space, so they
    evaluate directly on leader-pattern matches.
    """

    index: int
    iso: Dict[str, str]
    lhs: Tuple[Literal, ...]
    rhs: Tuple[Literal, ...]


@dataclass(frozen=True)
class SharedGroup:
    """A leader GFD plus all members sharing its (isomorphic) pattern."""

    leader_index: int
    members: Tuple[GroupMember, ...]

    @property
    def indices(self) -> Tuple[int, ...]:
        """All GFD indices served by this group."""
        return tuple(member.index for member in self.members)


def build_shared_groups(sigma: Sequence[GFD]) -> List[SharedGroup]:
    """Partition Σ into isomorphism groups with aligned literals.

    Every GFD lands in exactly one group (singleton groups are the common
    fallback); the leader is the group's first member with the identity
    alignment.
    """
    groups: List[Tuple[int, List[GroupMember]]] = []
    by_fingerprint: Dict[Tuple, List[int]] = {}
    for index, gfd in enumerate(sigma):
        fingerprint = isomorphism_fingerprint(gfd.pattern)
        placed = False
        for group_pos in by_fingerprint.get(fingerprint, []):
            leader_index, members = groups[group_pos]
            leader = sigma[leader_index]
            iso = _isomorphism(leader, gfd)
            if iso is not None:
                inverse = {v: k for k, v in iso.items()}
                members.append(
                    GroupMember(
                        index=index,
                        iso=iso,
                        lhs=tuple(l.rename(inverse) for l in gfd.lhs),
                        rhs=tuple(l.rename(inverse) for l in gfd.rhs),
                    )
                )
                placed = True
                break
        if not placed:
            identity = {v: v for v in gfd.pattern.variables}
            groups.append(
                (
                    index,
                    [
                        GroupMember(
                            index=index, iso=identity, lhs=gfd.lhs, rhs=gfd.rhs
                        )
                    ],
                )
            )
            by_fingerprint.setdefault(fingerprint, []).append(len(groups) - 1)
    return [
        SharedGroup(leader_index=leader, members=tuple(members))
        for leader, members in groups
    ]


def singleton_groups(sigma: Sequence[GFD]) -> List[SharedGroup]:
    """No sharing — one group per GFD (the ``*nop`` variants)."""
    out = []
    for index, gfd in enumerate(sigma):
        identity = {v: v for v in gfd.pattern.variables}
        out.append(
            SharedGroup(
                leader_index=index,
                members=(
                    GroupMember(
                        index=index, iso=identity, lhs=gfd.lhs, rhs=gfd.rhs
                    ),
                ),
            )
        )
    return out


def _isomorphism(leader: GFD, candidate: GFD) -> Optional[Dict[str, str]]:
    """An exact isomorphism leader-pattern → candidate-pattern, if any.

    Patterns must have equal node/edge counts; label compatibility must be
    exact in both directions (a wildcard only aligns with a wildcard), as
    the two GFDs must match identical candidate spaces.
    """
    lp, cp = leader.pattern, candidate.pattern
    if lp.num_nodes != cp.num_nodes or lp.num_edges != cp.num_edges:
        return None
    for iso in embeddings(lp, cp):
        if all(lp.label(v) == cp.label(iso[v]) for v in lp.variables):
            # Edge labels must also agree exactly (wildcard ↔ wildcard).
            if all(
                cp.has_edge(iso[src], iso[dst], elabel)
                for src, dst, elabel in lp.edges()
            ):
                return iso
    return None
