"""Workload partitioning (Section 6.1, Proposition 12).

The load balancing problem — split ``W(Σ, G)`` into ``n`` sets with
(approximately) equal cost — is NP-complete but admits the classical
greedy approximation: process units in descending weight and always give
the next unit to the least-loaded worker (LPT).  Graham's bound puts the
makespan within ``4/3 − 1/(3n)`` of optimal, comfortably inside the
paper's 2-approximation claim; the run time is
``O(n·|W| + |W| log |W|)``, matching Proposition 12(2).
"""

from __future__ import annotations

import heapq
import random
from typing import List, Sequence, Tuple

from .workload import WorkUnit


def lpt_partition(
    units: Sequence[WorkUnit], n: int, smallest_first: bool = False
) -> Tuple[List[List[WorkUnit]], List[float]]:
    """Greedy list scheduling: per-worker unit lists and their loads.

    The default processes units in *descending* weight (LPT, Graham's
    4/3-approximation).  ``smallest_first=True`` reproduces the paper's
    stated order ("greedily picks a work unit w with the smallest weight"),
    which is what Example 12's 76/78/82 partition comes from — still a
    2-approximation, just a weaker constant.
    """
    if n < 1:
        raise ValueError("need at least one worker")
    assignment: List[List[WorkUnit]] = [[] for _ in range(n)]
    loads = [0.0] * n
    # Heap of (load, worker); heapq breaks ties on worker index.
    heap: List[Tuple[float, int]] = [(0.0, i) for i in range(n)]
    heapq.heapify(heap)
    for unit in sorted(
        units, key=lambda u: u.weight * u.cost_share, reverse=not smallest_first
    ):
        load, worker = heapq.heappop(heap)
        assignment[worker].append(unit)
        load += unit.weight * unit.cost_share
        loads[worker] = load
        heapq.heappush(heap, (load, worker))
    return assignment, loads


def random_partition(
    units: Sequence[WorkUnit], n: int, seed: int = 0
) -> Tuple[List[List[WorkUnit]], List[float]]:
    """Uniform random assignment — the ``repran``/``disran`` baseline."""
    rng = random.Random(seed)
    assignment: List[List[WorkUnit]] = [[] for _ in range(n)]
    loads = [0.0] * n
    for unit in units:
        worker = rng.randrange(n)
        assignment[worker].append(unit)
        loads[worker] += unit.weight * unit.cost_share
    return assignment, loads


def makespan(loads: Sequence[float]) -> float:
    """The largest per-worker load."""
    return max(loads) if loads else 0.0


def makespan_lower_bound(units: Sequence[WorkUnit], n: int) -> float:
    """``max(heaviest unit, total/n)`` — the standard LPT lower bound.

    Any partition's makespan is at least this; the property tests check
    ``makespan(LPT) ≤ 2 × lower bound`` (Proposition 12's guarantee).
    """
    if not units:
        return 0.0
    weights = [u.weight * u.cost_share for u in units]
    return max(max(weights), sum(weights) / n)
