"""``repVal``: parallel error detection over a replicated graph (§6.1).

The graph is replicated at every processor, so no data is shipped; the
whole game is balancing the workload.  The algorithm (Fig. 4):

1. ``bPar`` — estimate ``W(Σ, G)`` in parallel and compute a balanced
   n-partition with the greedy 2-approximation (Proposition 12);
2. ``localVio`` — each processor detects violations inside the data blocks
   of its assigned units;
3. the coordinator unions the per-processor violation sets.

Variants reproduced for the evaluation:

* ``repran`` — random unit assignment instead of the balanced partition;
* ``repnop`` — no multi-query sharing and no replicate-and-split.

Parallel time follows Theorem 10:
``O(t(|Σ|,|G|)/n + |W|(n + log |W|))``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..graph.graph import PropertyGraph
from ..core.gfd import GFD
from .balancing import lpt_partition, random_partition
from .cluster import CostModel, SimulatedCluster
from .engine import BlockMaterialiser, ValidationRun, run_assignment
from .executors import resolve_executor
from .multiquery import build_shared_groups, singleton_groups
from .skew import split_oversized
from .workload import estimate_workload

#: default replicate-and-split threshold, as a multiple of the mean block
#: size (only blocks dramatically above the mean are split).
SPLIT_FACTOR = 8.0


def rep_val(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    n: int,
    cost_model: Optional[CostModel] = None,
    assignment: str = "balanced",
    optimize: bool = True,
    split_threshold: Optional[int] = None,
    seed: int = 0,
    executor: str = "simulated",
    processes: Optional[int] = None,
) -> ValidationRun:
    """Compute ``Vio(Σ, G)`` with ``n`` processors and a replicated ``G``.

    ``assignment`` is ``"balanced"`` (the paper's bPar) or ``"random"``
    (the ``repran`` baseline).  ``optimize=False`` gives ``repnop``.
    ``split_threshold`` overrides the automatic skew threshold; pass ``0``
    to disable splitting entirely.  ``executor`` selects the execution
    backend (``"simulated"``/``"process"``/``"auto"``, see
    :mod:`repro.parallel.executors`); ``processes`` caps the real pool.
    """
    cluster = SimulatedCluster(n, cost_model)
    groups = build_shared_groups(sigma) if optimize else singleton_groups(sigma)
    units = estimate_workload(sigma, graph, cluster=cluster, groups=groups)

    if optimize:
        threshold = split_threshold
        if threshold is None:
            mean = (
                sum(u.block_size for u in units) / len(units) if units else 0.0
            )
            threshold = int(mean * SPLIT_FACTOR) or 0
        if threshold:
            units = split_oversized(units, threshold)

    if assignment == "balanced":
        plan, _ = lpt_partition(units, n)
    elif assignment == "random":
        plan, _ = random_partition(units, n, seed=seed)
    else:
        raise ValueError(f"unknown assignment strategy {assignment!r}")
    cluster.charge_partitioning(len(units))

    # One materialiser per run: symmetric candidates and split replicas
    # share their block's snapshot and matcher instead of re-deriving them.
    # (Simulated backend only — worker processes build shard-local ones.)
    resolved = resolve_executor(executor, plan, processes)
    materialiser = BlockMaterialiser(graph) if resolved == "simulated" else None
    violations = run_assignment(
        sigma,
        graph,
        plan,
        cluster,
        materialiser=materialiser,
        executor=resolved,
        processes=processes,
    )
    return ValidationRun(
        violations=violations,
        report=cluster.report(),
        num_units=len(units),
        algorithm=_name(assignment, optimize),
        executor=resolved,
    )


def rep_ran(sigma: Sequence[GFD], graph: PropertyGraph, n: int, **kwargs) -> ValidationRun:
    """The ``repran`` baseline: random assignment, optimisations on."""
    return rep_val(sigma, graph, n, assignment="random", **kwargs)


def rep_nop(sigma: Sequence[GFD], graph: PropertyGraph, n: int, **kwargs) -> ValidationRun:
    """The ``repnop`` baseline: balanced assignment, optimisations off."""
    return rep_val(sigma, graph, n, optimize=False, **kwargs)


def _name(assignment: str, optimize: bool) -> str:
    if assignment == "random":
        return "repran"
    return "repVal" if optimize else "repnop"
