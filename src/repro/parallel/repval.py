"""``repVal``: parallel error detection over a replicated graph (§6.1).

The graph is replicated at every processor, so no data is shipped; the
whole game is balancing the workload.  The algorithm (Fig. 4):

1. ``bPar`` — estimate ``W(Σ, G)`` in parallel and compute a balanced
   n-partition with the greedy 2-approximation (Proposition 12);
2. ``localVio`` — each processor detects violations inside the data blocks
   of its assigned units;
3. the coordinator unions the per-processor violation sets.

Variants reproduced for the evaluation:

* ``repran`` — random unit assignment instead of the balanced partition;
* ``repnop`` — no multi-query sharing and no replicate-and-split.

Parallel time follows Theorem 10:
``O(t(|Σ|,|G|)/n + |W|(n + log |W|))``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..graph.graph import PropertyGraph
from ..core.gfd import GFD
from .cluster import CostModel
from .engine import ValidationRun

#: default replicate-and-split threshold, as a multiple of the mean block
#: size (only blocks dramatically above the mean are split).
SPLIT_FACTOR = 8.0


def rep_val(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    n: int,
    cost_model: Optional[CostModel] = None,
    assignment: str = "balanced",
    optimize: bool = True,
    split_threshold: Optional[int] = None,
    seed: int = 0,
    executor: str = "simulated",
    processes: Optional[int] = None,
    ship_mode: str = "auto",
) -> ValidationRun:
    """Compute ``Vio(Σ, G)`` with ``n`` processors and a replicated ``G``.

    ``assignment`` is ``"balanced"`` (the paper's bPar) or ``"random"``
    (the ``repran`` baseline).  ``optimize=False`` gives ``repnop``.
    ``split_threshold`` overrides the automatic skew threshold; pass ``0``
    to disable splitting entirely.  ``executor`` selects the execution
    backend (``"simulated"``/``"process"``/``"auto"``, see
    :mod:`repro.parallel.executors`); ``processes`` sizes the real pool;
    ``ship_mode`` picks how full shards travel to worker processes
    (``"pickle"``/``"shm"``/``"auto"`` — the shard plane).

    This is a thin facade over the session layer: each call constructs a
    throwaway (non-persistent) :class:`~repro.session.ValidationSession`
    and runs one replicated validation — identical results, no state kept.
    Repeated-validation workloads should hold a session instead and call
    :meth:`~repro.session.ValidationSession.validate` to reuse the worker
    pool, shards, and workload estimates.
    """
    from ..session import ValidationSession

    with ValidationSession(
        graph,
        sigma,
        executor=executor,
        processes=processes,
        cost_model=cost_model,
        persistent=False,
        ship_mode=ship_mode,
    ) as session:
        return session.validate(
            n=n,
            assignment=assignment,
            optimize=optimize,
            split_threshold=split_threshold,
            seed=seed,
        )


def rep_ran(sigma: Sequence[GFD], graph: PropertyGraph, n: int, **kwargs) -> ValidationRun:
    """The ``repran`` baseline: random assignment, optimisations on."""
    return rep_val(sigma, graph, n, assignment="random", **kwargs)


def rep_nop(sigma: Sequence[GFD], graph: PropertyGraph, n: int, **kwargs) -> ValidationRun:
    """The ``repnop`` baseline: balanced assignment, optimisations off."""
    return rep_val(sigma, graph, n, optimize=False, **kwargs)
