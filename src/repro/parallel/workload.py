"""The workload model of Section 5.2: pivot vectors and work units.

A *work unit* ``w = ⟨v_z̄, G_z̄⟩`` pairs a pivot candidate (a one-to-one,
label-compatible assignment of the pivot variables ``z̄`` to graph nodes)
with the data block formed by the pivots' radius-hop neighbourhoods.  The
workload ``W(Σ, G)`` is the set of all work units over all GFDs; its size
is at most ``|G|^k`` for pivot arity ``k`` (typically ≤ 2), exponentially
smaller than the matching cost it organises.

Units are built per :class:`repro.parallel.multiquery.SharedGroup`: GFDs
with isomorphic patterns share one unit per candidate (multi-query
optimisation); without optimisation every GFD gets its own units.

Unit *weights* estimate local detection cost.  The paper charges
``|G_z̄|^{|Σ|}`` per block; enumeration inside a block is really
``O(|G_z̄|^{|Q|})``, so we use the pattern's edge count as the exponent
(capped to keep weights within float range) — any monotone estimate yields
the same balancing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graph.graph import NodeId, PropertyGraph
from ..graph.partition import Fragmentation
from ..graph.subgraph import k_hop_nodes
from ..matching.locality import pivot_candidates
from ..pattern.components import PivotVector
from ..core.gfd import GFD
from .cluster import SimulatedCluster
from .multiquery import SharedGroup, singleton_groups

#: Exponent cap for unit weights (see module docstring).
MAX_WEIGHT_EXPONENT = 3


@dataclass
class WorkUnit:
    """One unit ``⟨v_z̄, G_z̄⟩``, serving every GFD of its shared group.

    ``assignment`` binds the *leader* GFD's pivot variables; members are
    evaluated through their stored variable alignment.  In the distributed
    setting ``fragment_sizes`` records how much of the block each fragment
    owns (the basis of communication-cost estimation), and the
    ``split_*``/``primary`` fields implement the replicate-and-split skew
    strategy (one primary sub-unit executes; replicas share its cost).

    ``kind`` selects what executing the unit *does* inside its block
    (same pivot, same block, same locality argument either way):

    * ``"detect"`` — local error detection (the original unit kind);
    * ``"mine"`` — discovery's enumeration phase: return the pivoted
      matches of the leader pattern instead of violations;
    * ``"count"`` — discovery's counting phase: evaluate the proposed
      dependencies carried in ``payload`` on every pivoted match and
      return ``(supported, satisfied)`` tallies.

    ``payload`` is the kind-specific input — ``"mine"`` carries the
    coordinator's match cap, ``"count"`` the proposed dependencies;
    results travel back in :attr:`~repro.parallel.engine.UnitResult.
    payload`.

    ``eval_mode`` selects how ``mine``/``count`` units answer their
    aggregate queries (see :mod:`repro.matching.factorised`): ``auto``
    factorises when the leader pattern's join structure permits and
    enumerates otherwise; the explicit modes force one path.  ``detect``
    units ignore it (violations need witness matches).
    """

    group: SharedGroup
    assignment: Tuple[Tuple[str, NodeId], ...]
    block_nodes: frozenset
    block_size: int
    weight: float
    fragment_sizes: Dict[int, int] = field(default_factory=dict)
    split_id: Optional[int] = None
    split_k: int = 1
    primary: bool = True
    kind: str = "detect"
    payload: Optional[tuple] = None
    eval_mode: str = "auto"

    @property
    def cost_share(self) -> float:
        """Fraction of the unit's work this (sub-)unit accounts for."""
        return 1.0 / self.split_k

    @property
    def pivot_assignment(self) -> Dict[str, NodeId]:
        """The pivot candidate ``v_z̄`` as a dict (leader variables)."""
        return dict(self.assignment)

    def missing_size(self, fragment: int) -> int:
        """Block size not resident on ``fragment`` (data to prefetch)."""
        return self.block_size - self.fragment_sizes.get(fragment, 0)


def unit_weight(block_size: int, pattern_edges: int) -> float:
    """The balancing weight of a unit (see module docstring)."""
    exponent = min(MAX_WEIGHT_EXPONENT, max(1, pattern_edges))
    return float(block_size) ** exponent


def block_of(
    graph: PropertyGraph, pivot: PivotVector, assignment: Dict[str, NodeId]
) -> Set[NodeId]:
    """Node set of the data block ``G_z̄`` for a pivot candidate."""
    nodes: Set[NodeId] = set()
    for entry in pivot:
        nodes |= k_hop_nodes(graph, [assignment[entry.variable]], entry.radius)
    return nodes


def block_size_of(graph: PropertyGraph, nodes: Set[NodeId]) -> int:
    """``|G_z̄|`` = nodes + edges induced by ``nodes``."""
    edges = 0
    for node in nodes:
        for dst, labels in graph.out_neighbors(node).items():
            if dst in nodes:
                edges += len(labels)
    return len(nodes) + edges


def estimate_workload(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    cluster: Optional[SimulatedCluster] = None,
    groups: Optional[List[SharedGroup]] = None,
    fragmentation: Optional[Fragmentation] = None,
) -> List[WorkUnit]:
    """Compute ``W(Σ, G)`` — the estimation phase of ``bPar``/``disPar``.

    One unit per (group, pivot candidate); symmetric candidates are
    deduplicated per Example 10.  When ``fragmentation`` is given, each
    unit records per-fragment block shares (``disPar``'s border/"missing
    data" bookkeeping).  The estimation cost — proportional to the block
    volume scanned — is charged to ``cluster``, split evenly across
    workers as the m-balanced ranges of Section 6.1 achieve.
    """
    if groups is None:
        groups = singleton_groups(sigma)
    units: List[WorkUnit] = []
    estimation_sizes: List[float] = []

    for group in groups:
        leader = sigma[group.leader_index]
        pivot = leader.pivot
        for assignment in pivot_candidates(graph, leader.pattern, pivot):
            nodes = frozenset(block_of(graph, pivot, assignment))
            size = block_size_of(graph, nodes)
            estimation_sizes.append(size)
            fragment_sizes: Dict[int, int] = {}
            if fragmentation is not None:
                fragment_sizes = _per_fragment_sizes(fragmentation, nodes)
            units.append(
                WorkUnit(
                    group=group,
                    assignment=tuple(sorted(assignment.items(), key=lambda kv: kv[0])),
                    block_nodes=nodes,
                    block_size=size,
                    weight=unit_weight(size, leader.pattern.num_edges),
                    fragment_sizes=fragment_sizes,
                )
            )
    if cluster is not None:
        cluster.charge_estimation(estimation_sizes)
    return units


def _per_fragment_sizes(
    fragmentation: Fragmentation, nodes: frozenset
) -> Dict[int, int]:
    """Size share of a block per owning fragment (nodes + local edges)."""
    graph = fragmentation.graph
    owner = fragmentation.owner
    sizes: Dict[int, int] = {}
    for node in nodes:
        frag = owner[node]
        sizes[frag] = sizes.get(frag, 0) + 1
        for dst, labels in graph.out_neighbors(node).items():
            if dst in nodes and owner[dst] == frag:
                sizes[frag] = sizes.get(frag, 0) + len(labels)
    return sizes


def total_weight(units: Sequence[WorkUnit]) -> float:
    """Sum of unit weights — the ``t(|Σ|, |G|)`` estimate being balanced."""
    return sum(unit.weight * unit.cost_share for unit in units)
