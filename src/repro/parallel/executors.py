"""Execution backends for the parallel engine: simulated vs. real processes.

The simulated cluster (:mod:`repro.parallel.cluster`) charges deterministic
costs while work units execute serially in-process.  This module adds the
other half the paper's Figures 5–8 are about — *real* concurrency:

* :class:`SimulatedExecutor` — the original path: every worker's units run
  on the coordinator, sharing one :class:`~repro.parallel.engine.
  BlockMaterialiser` so heavily-shared blocks are indexed once;
* :class:`MultiprocessExecutor` — a :class:`concurrent.futures.
  ProcessPoolExecutor` backend: each (simulated) worker's primary units
  are shipped to a worker process together with its *shard-local* graph —
  the subgraph induced by the union of its assigned blocks, i.e. exactly
  the resident share a ``disVal`` fragment holds after prefetching.  The
  worker process materialises shard-local
  :class:`~repro.graph.snapshot.GraphSnapshot`s per block (never the whole
  graph), runs local error detection for real, and returns per-unit
  results for the coordinator to aggregate.

Both backends return the same per-unit :class:`~repro.parallel.engine.
UnitResult`s — violations are value-equal sets, and ``steps`` counts every
candidate extension attempted during full enumeration, which is a set-
not order-dependent quantity — so cost charging on the coordinator yields
*identical* :class:`~repro.parallel.cluster.ClusterReport`s.  The
differential suite ``tests/test_parallel_executors.py`` locks this in.

Selection rule
--------------

``executor="simulated"`` (the default on the stateless entry points)
keeps the original behaviour; ``"process"`` forces the pool; ``"auto"``
picks the pool only when it can plausibly pay off — more than one
non-empty worker, at least :data:`AUTO_MIN_PRIMARY_UNITS` primary units,
and more than one usable CPU — and falls back to ``"simulated"``
otherwise.

Session mode (persistent pool + warm shards)
--------------------------------------------

:class:`MultiprocessExecutor` additionally supports a *persistent*
lifecycle for the repeated-validation setting the session layer
(:class:`~repro.session.ValidationSession`) serves: ``start()`` forks
long-lived worker processes reused across ``run()`` calls, each plan
slot pinned to the same process (slot ``w`` → pool worker ``w % size``),
and each worker keeps a resident-shard cache keyed by ``(run_epoch,
worker_id)``.  A :class:`ShardCache` on the coordinator mirrors what
every slot holds so consecutive runs over a reused fragmentation ship
only the block-share *delta* (or, when nothing changed, nothing at all);
:class:`ShippingStats` reports full/delta/reuse counts and worker pids
per run.

Ship modes (the shard plane)
----------------------------

``ship_mode`` selects how full shards travel to worker processes:

* ``"pickle"`` — the portable baseline: the shard graph is pickled once
  (:func:`pack_shard`) and sent over the worker pipe;
* ``"shm"`` — the zero-copy path: a :class:`ShardPlane` writes the
  shard's :class:`~repro.graph.snapshot.GraphSnapshot` arena (nine
  primary CSR arrays, see ``GraphSnapshot.ARENA_FIELDS``) plus a small
  pickled sidecar (node ids, label tables, attributes) into one
  ``multiprocessing.shared_memory`` segment; only the segment *name* and
  layout travel over the pipe, and the worker attaches and rebuilds
  derived indices locally.  Mapped volume is reported as
  ``ShippingStats.mapped_bytes`` — never as shipped ``shard_bytes``;
* ``"auto"`` (default) — ``"shm"`` for shards of at least
  :data:`AUTO_SHM_MIN_SIZE` size units when shared memory works on this
  platform, ``"pickle"`` otherwise.

Deltas and Σ swaps always use the pipe (they are small by construction —
that is the point of shipping them); a delta against a mapped shard
demotes the worker's copy to private storage and retires the segment.
Both modes produce byte-identical results — the differential suite pins
``shm`` ≡ ``pickle`` across the executor matrix.

Fault tolerance (the supervised execution plane)
------------------------------------------------

Persistent runs are *supervised*: every worker batch runs under a
heartbeat (a daemon beat thread in the worker reports liveness and
per-batch unit progress at ``FaultPolicy.heartbeat_interval``), and the
coordinator's dispatch loop (:class:`_PersistentRun`) detects dead
workers (pipe EOF), silent workers (missed heartbeats) and stalled
units (``unit_deadline`` overrun on the progress counter).  A failed
worker is killed, respawned into the same pool slot, and its in-flight
batch is requeued with exponential backoff up to
``FaultPolicy.max_retries``: full payloads are re-sent as-is (a pickle
blob re-ships, a still-published shm segment re-attaches), while
delta/reuse payloads — which assumed resident state that died with the
worker — are rebuilt as full shipments.  When respawning itself fails
repeatedly the slot is retired and its work rerouted to surviving
workers, down to ``FaultPolicy.degrade_floor``.  Because the engine's
results are canonical (violations compare by value, step counts are
enumeration-order free, payload folding is per-(slot, group)) a
re-executed unit yields the identical result, so recovered runs are
byte-identical to fault-free ones — the differential fault suite
(``tests/test_faults.py``) and the CI ``REPRO_FAULT_PLAN`` matrix
re-runs pin exactly that.  :class:`~repro.parallel.faults.FaultStats`
on ``ShippingStats.faults`` proves the faults actually fired.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import sys
import threading
import time
import traceback
import warnings
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _connection_wait
from multiprocessing.reduction import ForkingPickler
from typing import (
    Deque, Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING,
)

from ..graph.graph import PropertyGraph
from ..graph.snapshot import GraphSnapshot
from ..core.gfd import GFD
from .faults import (
    DEFAULT_HEARTBEAT_INTERVAL,
    FaultPolicy,
    FaultStats,
    WorkerFaultContext,
    resolve_fault_policy,
)
from .workload import WorkUnit

try:  # pragma: no cover - present on every supported CPython
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic builds
    resource_tracker = None
    shared_memory = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import BlockMaterialiser, MaterialiserStats, UnitResult

#: Accepted executor names (``auto`` resolves per the module docstring).
EXECUTORS = ("simulated", "process", "auto")

#: ``auto`` only reaches for processes when the plan has at least this
#: many primary units — below it, pool start-up dwarfs the matching work.
AUTO_MIN_PRIMARY_UNITS = 8

#: Accepted shard ship modes (see the module docstring's "Ship modes").
SHIP_MODES = ("pickle", "shm", "auto")

#: ``ship_mode="auto"`` maps a shard only from this ``|V| + |E|`` size
#: up — below it the segment create/attach syscalls cost more than the
#: pickle they replace.
AUTO_SHM_MIN_SIZE = 256

#: name prefix of every shard-plane segment (leak checks grep for it)
SHM_NAME_PREFIX = "rgfd"

#: per-stage patience when reaping a worker process: ``join`` →
#: ``terminate`` → ``kill``, each given this many seconds before
#: escalating, so a wedged worker can never block shutdown forever
SHUTDOWN_GRACE = 5.0

_SEG_IDS = itertools.count()
_SHM_WORKS: Optional[bool] = None


def shm_available() -> bool:
    """Whether shared-memory segments actually work on this host.

    Probed once per process (create + attach + unlink of a tiny
    segment): ``multiprocessing.shared_memory`` may import fine and
    still fail at runtime (no ``/dev/shm``, sandboxed tmpfs, …) — the
    ``"auto"`` ship mode falls back to pickle in that case.
    """
    global _SHM_WORKS
    if _SHM_WORKS is None:
        if shared_memory is None:
            _SHM_WORKS = False
        else:
            try:
                seg = shared_memory.SharedMemory(create=True, size=16)
                seg.close()
                seg.unlink()
                _SHM_WORKS = True
            except Exception:
                _SHM_WORKS = False
    return _SHM_WORKS


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_executor(
    executor: str,
    plan: Sequence[Sequence[WorkUnit]] = (),
    processes: Optional[int] = None,
) -> str:
    """Resolve an executor name to ``"simulated"`` or ``"process"``.

    ``"auto"`` chooses the process pool only when the plan is big enough
    to amortise pool start-up and the machine has more than one usable
    CPU; otherwise it stays simulated.  Unknown names raise.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if executor != "auto":
        return executor
    primaries = sum(1 for units in plan for unit in units if unit.primary)
    busy_workers = sum(1 for units in plan if units)
    cpus = usable_cpus()
    if processes is not None:
        # Effective *parallelism* for the auto decision: an explicit
        # ``processes`` above the CPU count is honoured by the pool
        # (with a RuntimeWarning, see ``MultiprocessExecutor.start``),
        # but oversubscription never makes real processes pay off more,
        # so it must not make auto more eager either.
        cpus = min(processes, cpus)
    if busy_workers > 1 and primaries >= AUTO_MIN_PRIMARY_UNITS and cpus > 1:
        return "process"
    return "simulated"


def worker_graph(
    graph: PropertyGraph, units: Sequence[WorkUnit]
) -> PropertyGraph:
    """The shard-local graph a worker needs for ``units``.

    The subgraph induced by the union of the units' block node sets.
    Data blocks are induced subgraphs of ``G``, and each block's node set
    is contained in the union, so every block materialised from this
    shard equals the block materialised from the full graph — the worker
    indexes only its resident share, never ``G`` itself.  For ``disVal``
    this is precisely the fragment's share of the assigned blocks plus
    the prefetched remainder.
    """
    needed: Set = set()
    for unit in units:
        needed |= unit.block_nodes
    return graph.induced_subgraph(needed)


def _run_worker_units(
    payload: Tuple[Sequence[GFD], Tuple, List[WorkUnit]]
) -> List["UnitResult"]:
    """Worker-process entry point: execute primary units over the shard.

    Module-level (picklable) by construction.  The shard arrives as a
    tagged reference (see :func:`attach_shard_ref`) — the raw graph on
    the pickle path, a shared-memory segment name on the shm path.
    Builds one shard-local :class:`~repro.parallel.engine.
    BlockMaterialiser` so blocks shared by the worker's own units are
    indexed once, exactly as on the coordinator path.  One-shot pool
    workers outlive the task, so a mapped segment is detached in
    ``finally`` — the coordinator unlinks names only after all futures
    resolve.
    """
    from .engine import (
        BlockMaterialiser,
        consolidate_slot_results,
        execute_unit,
        expand_count_payloads,
    )

    sigma, shard_ref, units = payload
    shard, segment = attach_shard_ref(shard_ref)
    try:
        materialiser = BlockMaterialiser(shard)
        units = expand_count_payloads(units)
        results = [
            execute_unit(sigma, shard, unit, materialiser) for unit in units
        ]
        consolidate_slot_results(units, results)
    finally:
        if segment is not None:
            shard.drop_snapshot_cache()
            segment.close()
    return results


#: unique run-epoch tokens for worker-resident cache keys
_EPOCHS = itertools.count()


def next_epoch(prefix: str = "run") -> str:
    """A fresh epoch token for the worker-resident shard caches."""
    return f"{prefix}-{os.getpid()}-{next(_EPOCHS)}"


def pack_shard(data) -> bytes:
    """Serialise a shipping payload once, for both the wire and the stats.

    Every measured payload category — full shard graphs, deltas, rule
    sets, unit input/result payloads — is pickled exactly once here;
    the coordinator (or worker) ships the blob itself (pickling
    ``bytes`` inside a pipe message is a near-free memcpy) and reads
    its length for the matching ``ShippingStats`` field.  Re-pickling
    purely to measure would double the serialisation cost and could
    drift from what actually travels; the blob's length cannot.
    """
    return bytes(ForkingPickler.dumps(data))


def unpack_shard(blob: bytes):
    """Worker-side inverse of :func:`pack_shard`."""
    return pickle.loads(blob)


class ShardPlane:
    """Coordinator-side registry of shared-memory shard segments.

    One per :class:`MultiprocessExecutor`.  :meth:`publish` lays a shard
    out as one segment — the snapshot arena (nine flat CSR arrays, a
    straight ``memcpy`` on both ends) followed by a pickled sidecar
    (node ids, label tables, per-node attribute dicts) — and returns the
    compact *reference* that travels over the worker pipe instead of the
    shard itself.  Workers attach by name (:func:`attach_shard_ref`).

    Lifecycle: publishing a slot retires that slot's previous segment;
    :meth:`unlink` retires one slot (the coordinator does this when a
    delta demotes the worker's mapped shard); :meth:`close` retires
    everything (executor shutdown, session close, worker-crash
    teardown).  Retiring means close + unlink — POSIX keeps existing
    worker mappings valid until the worker itself closes them, so
    unlinking eagerly never races the consumer; it only guarantees the
    name cannot leak.
    """

    def __init__(self) -> None:
        self._segments: Dict[int, "shared_memory.SharedMemory"] = {}

    def __len__(self) -> int:
        return len(self._segments)

    def segment_names(self) -> List[str]:
        """Names of the currently published segments (tests/leak checks)."""
        return [seg.name for seg in self._segments.values()]

    def publish(self, slot: int, shard: PropertyGraph) -> Tuple[Tuple, int]:
        """Publish ``shard`` for ``slot``; returns ``(ref, segment_bytes)``.

        ``ref`` is the tagged tuple the worker resolves with
        :func:`attach_shard_ref`; ``segment_bytes`` is the mapped volume
        (``ShippingStats.mapped_bytes`` — deliberately *not* counted as
        shipped ``shard_bytes``: nothing but the reference travels).
        """
        snapshot = shard.snapshot()
        identity = snapshot.identity_state()
        attrs = [shard.attrs(node) for node in snapshot.node_ids]
        sidecar = pack_shard((identity, attrs))
        arena_nbytes = snapshot.arena_nbytes()
        total = arena_nbytes + len(sidecar)
        seg = shared_memory.SharedMemory(
            name=f"{SHM_NAME_PREFIX}-{os.getpid()}-{next(_SEG_IDS)}",
            create=True,
            size=max(1, total),
        )
        layout = snapshot.write_arena(seg.buf[:arena_nbytes])
        seg.buf[arena_nbytes:total] = sidecar
        self.unlink(slot)
        self._segments[slot] = seg
        ref = ("shm", seg.name, layout, arena_nbytes, len(sidecar))
        return ref, total

    def unlink(self, slot: int) -> None:
        """Retire ``slot``'s segment, if any (idempotent)."""
        seg = self._segments.pop(slot, None)
        if seg is None:
            return
        try:
            seg.close()
        finally:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass  # repro-lint: disable=RPL050 -- segment already unlinked (a crashed worker's residue sweep beat us); nothing left to retire

    def close(self) -> None:
        """Retire every published segment (idempotent)."""
        for slot in list(self._segments):
            self.unlink(slot)


def _attach_untracked(name: str):
    """Attach a named segment without resource-tracker registration.

    CPython < 3.13 registers every ``SharedMemory`` — attachments
    included — with the resource tracker, which unlinks all registered
    names at process exit and warns about them as leaks.  Only the
    coordinator owns segment lifetime here, so attach-side registration
    must be suppressed (the 3.13+ ``track=False`` parameter, by hand).
    Suppression — rather than ``unregister`` after the fact — matters
    under the fork start method: workers share the coordinator's tracker
    process, whose name cache is a set, so a worker-side unregister
    would silently drop the *coordinator's* registration too (and the
    coordinator's own unlink would then trip a tracker ``KeyError``).
    """
    if resource_tracker is None:  # pragma: no cover - exotic builds
        return shared_memory.SharedMemory(name=name)
    registered = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = registered


def attach_shard_ref(ref: Tuple) -> Tuple[PropertyGraph, Optional[object]]:
    """Worker-side resolution of a shard reference to a live graph.

    ``("pickle", blob_or_graph)`` unpickles (or passes through) the
    shard; ``("shm", name, layout, arena_nbytes, sidecar_len)`` attaches
    the named segment, rebuilds the shard graph from the mapped arena +
    sidecar, and *adopts* the mapped snapshot as the graph's cached
    indexed view — zero-copy for all nine primary arrays; derived
    indices are rebuilt locally, exactly as unpickling would.

    Returns ``(shard, segment)``; ``segment`` is the worker's
    ``SharedMemory`` handle to close when the shard is dropped (``None``
    on the pickle path).
    """
    tag = ref[0]
    if tag == "pickle":
        blob = ref[1]
        shard = unpack_shard(blob) if isinstance(blob, bytes) else blob
        return shard, None
    if tag != "shm":
        raise ValueError(f"unknown shard ref tag {tag!r}")
    _, name, layout, arena_nbytes, sidecar_len = ref
    seg = _attach_untracked(name)
    try:
        identity, attrs = unpack_shard(
            seg.buf[arena_nbytes : arena_nbytes + sidecar_len]
        )
        snapshot = GraphSnapshot.from_arena(
            seg.buf[:arena_nbytes], layout, identity, keep_alive=seg
        )
        shard = _graph_from_snapshot(snapshot, attrs)
    except BaseException:
        seg.close()
        raise
    return shard, seg


def _graph_from_snapshot(
    snapshot: GraphSnapshot, attrs: Sequence[Dict]
) -> PropertyGraph:
    """Rebuild a shard graph from a (mapped) snapshot + attribute rows.

    Nodes are added in ``node_ids`` order, so the rebuilt graph's
    insertion order matches the snapshot's interning — the precondition
    of :meth:`~repro.graph.graph.PropertyGraph.adopt_snapshot`.
    """
    g = PropertyGraph()
    ids = snapshot.node_ids
    label_names = snapshot.node_label_names
    label_codes = snapshot.label_codes
    for idx, node in enumerate(ids):
        g.add_node(node, label_names[label_codes[idx]], attrs[idx] or None)
    offsets, nbrs, labs = (
        snapshot.out_offsets, snapshot.out_nbrs, snapshot.out_labs
    )
    edge_names = snapshot.edge_label_names
    for src_idx, src in enumerate(ids):
        for pos in range(offsets[src_idx], offsets[src_idx + 1]):
            g.add_edge(src, ids[nbrs[pos]], edge_names[labs[pos]])
    g.adopt_snapshot(snapshot)
    return g


@dataclass
class MatchStoreStats:
    """One run's slice of a :class:`MatchStore`'s activity.

    ``hits`` counts work units that *replayed* resident matches instead
    of re-running VF2 enumeration (discovery's ``count``/``confirm``
    phases over blocks the ``mine`` phase left resident — and a warm
    repeated ``mine`` itself); ``misses`` counts units that consulted
    the store and had to enumerate (cold, evicted, or never stored);
    ``stored``/``evicted`` count entry writes and budget evictions.
    Zero VF2 re-enumeration on a warm phase shows up here as
    ``misses == 0`` with ``hits > 0`` — the counter the discovery
    benchmark asserts.
    """

    hits: int = 0
    misses: int = 0
    stored: int = 0
    evicted: int = 0

    def merge(self, other: "MatchStoreStats") -> "MatchStoreStats":
        self.hits += other.hits
        self.misses += other.misses
        self.stored += other.stored
        self.evicted += other.evicted
        return self


#: total matches retained per store (sum of entry lengths): bounds the
#: worker-resident match memory at O(budget); past it, least-recently-
#: used entries are dropped and their units transparently fall back to
#: re-enumeration.
MATCH_STORE_BUDGET = 200_000


class MatchStore:
    """Budget-bounded LRU of enumerated pinned-match lists.

    Discovery's ``mine`` units enumerate every pinned match of a
    ``(leader pattern, pivot candidate, block)`` triple; the ``count``
    and ``confirm`` phases of the same ``discover()`` call need exactly
    those matches again.  A worker process keeps one store per resident
    shard (next to its block cache), keyed by the triple's *content* —
    so a hit is semantically safe whatever rule set is currently live —
    and scoped by the shard's lifetime: a full or delta reshipment drops
    the store with the shard it described.

    Only *enumerating* units deposit: a ``mine`` unit answered by the
    factorised plan (``eval_mode`` ``"auto"``/``"factorised"``, see
    :mod:`repro.matching.factorised`) never materialises matches, so it
    leaves the store untouched and the count phase factorises too
    instead of replaying.  Replay is checked *before* factorisation
    either way, so a warm store keeps winning under ``"auto"``.

    Entries record the enumeration's deterministic ``steps`` alongside
    the canonical leader-space match tuples, so a replayed unit charges
    the *identical* simulated cost a fresh enumeration would — warmth
    is a wall-clock win only, and cluster reports stay backend- and
    replay-invariant.  ``budget`` bounds the summed entry *charges* —
    ``max(1, len(matches))``, so even an empty enumeration (worth
    replaying: discovering "no pinned match" still costs VF2 steps)
    pays for the key it retains and ages out of the LRU like any other
    entry, and ``budget=0`` refuses everything (the documented "off"
    switch).  An enumeration exceeding the whole budget on its own is
    simply not stored.  Thread-safe for the coordinator path (the
    session shares one across simulated runs), same locking discipline
    as :class:`~repro.parallel.engine.BlockMaterialiser`.
    """

    def __init__(self, budget: int = MATCH_STORE_BUDGET) -> None:
        self.budget = budget
        #: cumulative counters (per-run slices via :meth:`take_stats`)
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evicted = 0
        #: cumulative entries dropped by targeted invalidation
        #: (:meth:`apply_ops`) — distinct from budget ``evicted``
        self.invalidated = 0
        self._retained = 0  #: guarded-by: _lock
        self._lock = threading.RLock()
        self._run_stats = MatchStoreStats()  #: guarded-by: _lock
        #: guarded-by: _lock
        self._entries: "OrderedDict[tuple, Tuple[int, tuple]]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def retained(self) -> int:
        """Summed entry charges currently resident (the budgeted quantity)."""
        with self._lock:
            return self._retained

    def get(self, key: tuple) -> Optional[Tuple[int, tuple]]:
        """The ``(steps, matches)`` entry for ``key``, counting hit/miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._run_stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._run_stats.hits += 1
            return entry

    @staticmethod
    def _charge(matches: tuple) -> int:
        """Budget charge of one entry (≥ 1: the key itself has a cost)."""
        return max(1, len(matches))

    def put(self, key: tuple, steps: int, matches: tuple) -> bool:
        """Retain one enumeration; ``False`` if it alone exceeds the budget."""
        charge = self._charge(matches)
        if charge > self.budget:
            return False
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._retained -= self._charge(previous[1])
            self._entries[key] = (steps, matches)
            self._retained += charge
            self.stored += 1
            self._run_stats.stored += 1
            while self._retained > self.budget and len(self._entries) > 1:
                _, (_, evicted) = self._entries.popitem(last=False)
                self._retained -= self._charge(evicted)
                self.evicted += 1
                self._run_stats.evicted += 1
            return True

    def clear(self) -> None:
        """Drop every entry (the backing shard changed)."""
        with self._lock:
            self._entries.clear()
            self._retained = 0

    def apply_ops(self, ops) -> int:
        """Targeted invalidation for a batch of graph update ops.

        Entries are keyed ``(pattern, pivot assignment, block nodes)``
        and hold purely *structural* match tuples — consumers re-read
        attribute values from the (patched) block at evaluation time —
        so attribute ops never invalidate anything.  A structural op
        (``edge+``/``edge-``/``node``) can only change the match set of
        a block that contains it: entries whose block-node set holds
        every endpoint are dropped, everything else stays resident.
        Ops use the ``session.update()`` tuple format; returns the
        number of entries invalidated (also summed into the cumulative
        ``invalidated`` counter).
        """
        structural = [op for op in ops if op[0] != "attr"]
        if not structural:
            return 0
        with self._lock:
            doomed = []
            for key in self._entries:
                block_nodes = key[2]
                for op in structural:
                    kind = op[0]
                    if kind == "node":
                        hit = op[1] in block_nodes
                    elif kind in ("edge+", "edge-"):
                        hit = op[1] in block_nodes and op[2] in block_nodes
                    else:
                        raise ValueError(f"unknown update kind {kind!r}")
                    if hit:
                        doomed.append(key)
                        break
            for key in doomed:
                _, matches = self._entries.pop(key)
                self._retained -= self._charge(matches)
            self.invalidated += len(doomed)
            return len(doomed)

    def take_stats(self) -> MatchStoreStats:
        """Return and reset the per-run counters (cumulative ones stay)."""
        with self._lock:
            stats = self._run_stats
            self._run_stats = MatchStoreStats()
            return stats


@dataclass
class ShippingStats:
    """What one process-executor run shipped to its workers.

    ``full``/``delta``/``reused`` count busy plan slots by how their
    shard travelled: whole induced subgraph, block-share delta, or
    nothing at all (the worker's resident share already covered the
    run).  ``worker_pids`` maps each busy slot to the OS pid that
    executed it — warm-session tests pin pid stability across runs.
    ``shipped_sigma`` counts warm slots that received a *rule-set*
    update alongside their resident shard (a session running discovery
    phases or a mined-Σ confirmation pass swaps Σ without touching the
    shard — block shares stay at zero).

    The ``*_bytes`` fields measure the run's payload volume as the
    length of the blob that was actually serialised for the wire
    (serialise-once: the measured bytes *are* the shipped bytes):
    ``sigma_bytes`` the rule sets shipped (full shipments and warm
    Σ-swaps alike), ``shard_bytes`` the block-share payloads (pickled
    full shards and deltas), and ``payload_bytes`` the work units'
    kind-specific data path — unit input payloads coordinator→worker
    plus result payloads worker→coordinator.  Discovery's
    aggregate-vs-match-list shipping win is the ``payload_bytes`` delta.

    ``mapped``/``mapped_bytes`` count full shipments that travelled as
    shared-memory segments instead (``ship_mode="shm"``/``"auto"``, see
    :class:`ShardPlane`): mapped volume is resident-shared, not copied
    through a pipe, so it is deliberately **excluded** from
    ``shard_bytes`` — a co-located shm run reports ``mapped_bytes > 0``
    with ``shard_bytes ≈ 0``.  ``match_store`` carries the run's
    worker-resident match-store activity (``None`` until a persistent
    run reports).  ``block_cache`` likewise aggregates the workers'
    resident block-materialiser activity for the run — after a delta
    shipment, ``builds == 0`` with ``patched > 0`` is the proof that
    the workers patched their materialised blocks in place instead of
    rebuilding them (the end-to-end O(|Δ|) pin).
    """

    full: int = 0
    delta: int = 0
    reused: int = 0
    mapped: int = 0
    shipped_nodes: int = 0
    shipped_ops: int = 0
    shipped_sigma: int = 0
    sigma_bytes: int = 0
    shard_bytes: int = 0
    mapped_bytes: int = 0
    payload_bytes: int = 0
    match_store: Optional[MatchStoreStats] = None
    block_cache: Optional["MaterialiserStats"] = None
    #: fault-handling activity (``None`` on unsupervised paths); a
    #: recovered run's shipping counters include recovery re-shipments —
    #: the fault differential suite pins *results*, not volume
    faults: Optional[FaultStats] = None
    worker_pids: Dict[int, int] = field(default_factory=dict)

    def merge(self, other: "ShippingStats") -> "ShippingStats":
        """Fold another run's shipping in (a phase spanning two runs —
        discovery's enumerate pass plus its capped-match fetch —
        reports one combined record)."""
        self.full += other.full
        self.delta += other.delta
        self.reused += other.reused
        self.mapped += other.mapped
        self.shipped_nodes += other.shipped_nodes
        self.shipped_ops += other.shipped_ops
        self.shipped_sigma += other.shipped_sigma
        self.sigma_bytes += other.sigma_bytes
        self.shard_bytes += other.shard_bytes
        self.mapped_bytes += other.mapped_bytes
        self.payload_bytes += other.payload_bytes
        if other.match_store is not None:
            if self.match_store is None:
                self.match_store = MatchStoreStats()
            self.match_store.merge(other.match_store)
        if other.block_cache is not None:
            if self.block_cache is None:
                from .engine import MaterialiserStats

                self.block_cache = MaterialiserStats()
            self.block_cache.merge(other.block_cache)
        if other.faults is not None:
            if self.faults is None:
                self.faults = FaultStats()
            self.faults.merge(other.faults)
        self.worker_pids.update(other.worker_pids)
        return self


@dataclass
class _SlotState:
    """Coordinator-side mirror of one worker slot's resident shard."""

    epoch: str
    resident: Set
    seq: int  # position in the ShardCache op log already shipped
    #: identity of the rule set the worker currently holds for this slot
    sigma_key: Optional[object] = None


class ShardCache:
    """Coordinator-side bookkeeping for warm worker-resident shards.

    A :class:`~repro.session.ValidationSession` owns one of these per
    session.  For every busy plan slot it remembers which nodes the
    pinned worker process currently holds (and at which op-log position),
    so consecutive runs over an unchanged — or session-updated — graph
    ship only the *delta*: graph updates routed through
    ``session.update()`` land in the op log and are forwarded to resident
    shards; newly needed block nodes travel as an induced add-payload;
    an unchanged slot ships nothing.

    Out-of-band structural mutations (not routed through the session) are
    detected via the graph's structural version and drop every slot cold.
    Attribute edits do not bump the version, so those *must* go through
    ``session.update()`` — the same contract ``IncrementalValidator``
    already imposes.
    """

    #: forwarded-op budget per slot and run: past this, reship instead
    MAX_FORWARD_OPS = 4096

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._slots: Dict[int, _SlotState] = {}  #: guarded-by: _lock
        self._log: List[Tuple] = []  #: guarded-by: _lock
        self._marked_version: Optional[int] = None  #: guarded-by: _lock

    def record(self, op: Tuple) -> None:
        """Append one session-routed update op to the forwarding log.

        The log is compacted at every :meth:`sync` and hard-capped here:
        a backlog several times :data:`MAX_FORWARD_OPS` means no slot is
        keeping up (or none exists), so reshipping beats forwarding and
        everything is dropped cold.
        """
        with self._lock:
            self._log.append(op)
            if len(self._log) > 4 * self.MAX_FORWARD_OPS:
                self.invalidate()

    def _compact(self) -> None:  #: holds: _lock
        """Drop the log prefix every slot has already consumed."""
        if not self._slots:
            self._log.clear()
            return
        low = min(state.seq for state in self._slots.values())
        if low:
            del self._log[:low]
            for state in self._slots.values():
                state.seq -= low

    def mark_version(self, version: int) -> None:
        """Declare the graph's structural version after session updates."""
        with self._lock:
            self._marked_version = version

    def invalidate(self) -> None:
        """Drop every slot cold (next run reships full shards)."""
        with self._lock:
            self._slots.clear()
            self._log.clear()

    def slots(self) -> List[int]:
        """Slots with a live resident-shard mirror (for recovery sweeps)."""
        with self._lock:
            return list(self._slots)

    def drop_slots(self, slots: Sequence[int]) -> None:
        """Drop specific slots cold — their worker process died or moved.

        Unlike :meth:`invalidate` every other slot stays warm; the op
        log survives (and is compacted at the next :meth:`sync`) so
        surviving slots still forward deltas.
        """
        with self._lock:
            for slot in slots:
                self._slots.pop(slot, None)
            if not self._slots:
                self._log.clear()

    def sync(self, graph: PropertyGraph) -> None:
        """Reconcile with the graph before a run.

        A structural version the session did not announce means someone
        mutated the graph out-of-band: every resident shard is stale.
        """
        with self._lock:
            if self._marked_version != graph._version:
                self.invalidate()
                self._marked_version = graph._version
            else:
                self._compact()

    def plan(
        self,
        slot: int,
        epoch: str,
        needed: Set,
        graph: PropertyGraph,
        sigma_key: Optional[object] = None,
    ) -> Tuple[str, object, bool]:
        """Decide how ``slot``'s shard travels this run.

        Returns ``("full", shard_graph, False)``, ``("delta", (ops,
        add_nodes, add_edges), ship_sigma)`` or ``("reuse", None,
        ship_sigma)``, updating the slot's mirror state to match what
        the worker will hold afterwards.  ``ship_sigma`` is ``True``
        when the rule set identified by ``sigma_key`` differs from what
        the worker holds for the slot — the caller then sends Σ along
        (a full shipment always carries Σ, so there it is ``False``).
        """
        with self._lock:
            state = self._slots.get(slot)
            if state is not None and state.epoch == epoch:
                ops = self._forward_ops(state.resident, state.seq)
                if ops is not None:
                    ship_sigma = state.sigma_key != sigma_key
                    state.sigma_key = sigma_key
                    missing = needed - state.resident
                    state.seq = len(self._log)
                    if not ops and not missing:
                        return "reuse", None, ship_sigma
                    add_nodes, add_edges = self._add_payload(
                        graph, state.resident, missing
                    )
                    state.resident |= missing
                    return "delta", (ops, add_nodes, add_edges), ship_sigma
            shard = graph.induced_subgraph(needed)
            self._slots[slot] = _SlotState(
                epoch=epoch, resident=set(needed), seq=len(self._log),
                sigma_key=sigma_key,
            )
            return "full", shard, False

    def _forward_ops(  #: holds: _lock
        self, resident: Set, seq: int
    ) -> Optional[List[Tuple]]:
        """Log ops since ``seq`` restricted to the resident share.

        ``None`` means the backlog is too large — reshipping is cheaper.
        """
        pending = self._log[seq:]
        if len(pending) > self.MAX_FORWARD_OPS:
            return None
        out: List[Tuple] = []
        for op in pending:
            kind = op[0]
            if kind in ("attr", "node"):
                if op[1] in resident:
                    out.append(op)
            elif kind in ("edge+", "edge-"):
                if op[1] in resident and op[2] in resident:
                    out.append(op)
            else:  # pragma: no cover - session.update validates op kinds
                return None
        return out

    @staticmethod
    def _add_payload(
        graph: PropertyGraph, resident: Set, missing: Set
    ) -> Tuple[List[Tuple], List[Tuple]]:
        """Nodes + induced edges that extend a resident shard by ``missing``."""
        new_resident = resident | missing
        add_nodes = [
            (node, graph.label(node), dict(graph.attrs(node)))
            for node in missing
        ]
        add_edges: List[Tuple] = []
        for node in missing:
            for dst, labels in graph.out_neighbors(node).items():
                if dst in new_resident:
                    add_edges.extend((node, dst, label) for label in labels)
            for src, labels in graph.in_neighbors(node).items():
                if src in new_resident and src not in missing:
                    add_edges.extend((src, node, label) for label in labels)
        return add_nodes, add_edges


class _ResidentShard:
    """A worker process's cached state for one (epoch, slot).

    ``match_store`` is the slot's worker-resident match cache (see
    :class:`MatchStore`): populated by ``mine`` units, replayed by
    ``count``/``detect`` units, and scoped to the shard — reshipping or
    patching the shard drops it, reusing the shard keeps it warm.

    ``segment`` is the worker's handle on the shared-memory segment a
    mapped shard is backed by (``None`` on the pickle path), closed via
    :meth:`release_segment` when the shard is dropped or patched.
    """

    __slots__ = ("sigma", "shard", "materialiser", "match_store", "segment")

    def __init__(
        self, sigma, shard, materialiser, match_store, segment=None
    ) -> None:
        self.sigma = sigma
        self.shard = shard
        self.materialiser = materialiser
        self.match_store = match_store
        self.segment = segment

    def release_segment(self) -> None:
        """Detach from the backing shared-memory segment, if any.

        The shard's adopted mapped snapshot still references the arena,
        so it is dropped first (a later ``snapshot()`` call rebuilds a
        private index) — then the mapping can be closed safely.
        """
        if self.segment is None:
            return
        self.shard.drop_snapshot_cache()
        self.segment.close()
        self.segment = None


def _apply_shard_op(shard: PropertyGraph, op: Tuple) -> None:
    kind = op[0]
    if kind == "attr":
        shard.set_attr(op[1], op[2], op[3])
    elif kind == "edge+":
        shard.add_edge(op[1], op[2], op[3])
    elif kind == "edge-":
        shard.remove_edge(op[1], op[2], op[3])
    elif kind == "node":
        shard.add_node(op[1], op[2], dict(op[3]) if op[3] else None)
    else:
        raise ValueError(f"unknown shard op {kind!r}")


def _restore_unit_payloads(
    units: Sequence[WorkUnit], blob: Optional[bytes]
) -> Sequence[WorkUnit]:
    """Reattach the unit input payloads shipped as one packed blob.

    The coordinator strips ``unit.payload`` before pickling the units
    and ships the payload tuple as a single :func:`pack_shard` blob —
    serialised exactly once, measured from its length (the
    ``payload_bytes`` accounting).  ``None`` means no unit had one.
    """
    if blob is None:
        return units
    payloads = unpack_shard(blob)
    return [
        replace(unit, payload=payload) if payload is not None else unit
        for unit, payload in zip(units, payloads)
    ]


def _run_slot(
    cache: Dict[Tuple[str, int], _ResidentShard],
    slot: int,
    mode: str,
    payload,
    units: Sequence[WorkUnit],
    unit_payloads: Optional[bytes] = None,
    faults: Optional[WorkerFaultContext] = None,
    progress: Optional[List[int]] = None,
) -> List["UnitResult"]:
    """Worker-side execution of one plan slot with shard-cache handling.

    ``faults`` is the worker's compiled fault-injection triggers
    (consulted before every unit and right after an shm attach);
    ``progress`` is the shared per-batch unit counter the heartbeat
    thread reports, so the coordinator's ``unit_deadline`` watches real
    per-unit advancement.
    """
    from .engine import (
        BlockMaterialiser,
        consolidate_slot_results,
        execute_unit,
        expand_count_payloads,
    )

    if mode == "full":
        epoch, sigma_blob, shard_ref, match_budget = payload
        shard, segment = attach_shard_ref(shard_ref)
        if faults is not None:
            faults.after_attach()
        # One resident shard per slot: every prior entry is released,
        # same-epoch ones included — a crash-recovery requeue can ship
        # the same slot full twice within one epoch, and the replaced
        # entry's segment must be detached, not dropped to the GC.
        for key in [k for k in cache if k[1] == slot]:
            cache.pop(key).release_segment()
        entry = _ResidentShard(
            unpack_shard(sigma_blob), shard, BlockMaterialiser(shard),
            MatchStore(match_budget), segment,
        )
        cache[(epoch, slot)] = entry
    elif mode == "delta":
        epoch, blob, sigma_blob = payload
        ops, add_nodes, add_edges = unpack_shard(blob)
        entry = cache[(epoch, slot)]
        # A mapped shard demotes to a private copy before patching: row
        # splicing cannot happen inside a read-only arena, and the
        # coordinator has already retired the slot's segment.
        entry.release_segment()
        shard = entry.shard
        for op in ops:
            _apply_shard_op(shard, op)
        for node, label, attrs in add_nodes:
            shard.add_node(node, label, attrs)
        for src, dst, label in add_edges:
            shard.add_edge(src, dst, label)
        # Targeted invalidation instead of a rebuild: blocks whose node
        # set the forwarded ops touch are patched in place (snapshots
        # follow via apply_delta) and resident matches are dropped only
        # where a structural op lands inside their block; every other
        # cached block, matcher and match stays warm.  The block-share
        # extension (add_nodes/add_edges) can never affect an existing
        # cached block: its nodes were absent from the resident share,
        # hence from every cached block's node set.
        entry.materialiser.apply_ops(ops)
        entry.match_store.apply_ops(ops)
        if sigma_blob is not None:
            entry.sigma = unpack_shard(sigma_blob)
    else:  # reuse: shard, snapshot *and* block cache stay warm
        epoch, sigma_blob = payload
        entry = cache[(epoch, slot)]
        if sigma_blob is not None:
            # New rule set over the same resident shard (discovery's
            # phases, a mined-Σ confirmation pass): blocks and snapshots
            # stay warm; per-pattern matchers are dropped so stale
            # patterns don't accumulate.  Resident matches are keyed by
            # pattern *content*, so they survive the Σ swap — that is
            # what lets count/confirm replay what mine enumerated.
            entry.sigma = unpack_shard(sigma_blob)
            entry.materialiser.drop_matchers()
    units = _restore_unit_payloads(units, unit_payloads)
    units = expand_count_payloads(units)
    results = []
    for unit in units:
        if faults is not None:
            faults.before_unit()
        results.append(
            execute_unit(
                entry.sigma, entry.shard, unit, entry.materialiser,
                match_store=entry.match_store,
            )
        )
        if progress is not None:
            progress[0] += 1
    consolidate_slot_results(units, results)
    return results


def _pack_result_payloads(
    results: List["UnitResult"],
) -> Optional[bytes]:
    """Strip result payloads into one packed blob for the reply.

    Mirror of :func:`_restore_unit_payloads` for the worker→coordinator
    direction: the payload tuple is serialised exactly once, its length
    is the accounting, and the results travel payload-free.  Returns
    ``None`` when no result carries one.
    """
    payloads = tuple(result.payload for result in results)
    if not any(payload is not None for payload in payloads):
        return None
    blob = pack_shard(payloads)
    for result in results:
        result.payload = None
    return blob


def _heartbeat_loop(
    conn, send_lock: threading.Lock, pid: int, progress: List[int],
    stop: threading.Event, interval: float,
) -> None:
    """Beat thread of one worker batch: liveness + unit progress.

    Runs in its own daemon thread so the coordinator hears from a worker
    even while a single unit computes for a long time — that is what
    lets it tell "slow unit" (progress fresh, beats arriving) from
    "stalled unit" (beats arriving, progress frozen past the deadline)
    from "dead worker" (no beats at all).  The send timestamp rides
    along; coordinator and workers share ``CLOCK_MONOTONIC`` on Linux,
    so receive-minus-send is the pipe latency ``FaultStats`` records.
    """
    while not stop.wait(interval):
        try:
            with send_lock:
                conn.send(("hb", pid, progress[0], time.monotonic()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            return  # repro-lint: disable=RPL050 -- coordinator went away; the batch reply send will notice and end the worker loop


def _persistent_worker_main(
    conn, worker_index: int = 0, incarnation: int = 0
) -> None:
    """Command loop of one persistent (pinned) worker process.

    ``worker_index`` and ``incarnation`` identify this process to the
    fault-injection harness (a respawned worker carries the next
    incarnation, which is what stops single-shot fault triggers from
    re-firing forever).  Batch messages optionally carry the heartbeat
    cadence and the run's :class:`~repro.parallel.faults.FaultPlan`;
    the beat thread is stopped and joined *before* the reply is sent,
    so a reply is always the last message of its batch.
    """
    cache: Dict[Tuple[str, int], _ResidentShard] = {}
    pid = os.getpid()
    send_lock = threading.Lock()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - coordinator died
            break  # repro-lint: disable=RPL050 -- no coordinator left to tell; the loop exit below releases every segment
        if message[0] == "stop":
            break
        tasks = message[1]
        hb_interval = (
            message[2] if len(message) > 2 else DEFAULT_HEARTBEAT_INTERVAL
        )
        plan = message[3] if len(message) > 3 else None
        faults = WorkerFaultContext(plan, worker_index, incarnation)
        progress = [0]
        stop_beat = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(conn, send_lock, pid, progress, stop_beat, hb_interval),
            daemon=True,
            name="worker-heartbeat",
        )
        beat.start()
        try:
            replies = []
            for slot, mode, payload, units, unit_payloads in tasks:
                slot_results = _run_slot(
                    cache, slot, mode, payload, units, unit_payloads,
                    faults=faults, progress=progress,
                )
                replies.append(
                    (slot, slot_results, _pack_result_payloads(slot_results))
                )
            # Per-batch match-store and block-cache slices, summed over
            # this worker's resident shards (untouched entries contribute
            # zeros) — the coordinator aggregates these into the run's
            # ShippingStats.
            from .engine import MaterialiserStats

            store_stats = MatchStoreStats()
            cache_stats = MaterialiserStats()
            for entry in cache.values():
                store_stats.merge(entry.match_store.take_stats())
                cache_stats.merge(entry.materialiser.take_stats())
            reply = ("ok", pid, replies, store_stats, cache_stats)
        except BaseException:
            reply = ("err", pid, traceback.format_exc())
        finally:
            stop_beat.set()
            beat.join()
        if faults.drop_reply:
            # Injected wedged-after-work fault: the batch computed but
            # the reply never leaves — the coordinator must detect the
            # silence and recover by requeue.
            continue
        try:
            with send_lock:
                conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover
            break  # repro-lint: disable=RPL050 -- coordinator went away mid-run; loop exit releases every segment
    for entry in cache.values():
        entry.release_segment()
    conn.close()


def _reap_process(proc, grace: float = SHUTDOWN_GRACE) -> None:
    """Collect one worker process, escalating until it is really gone.

    ``join(timeout)`` → ``terminate()`` (SIGTERM) → ``kill()`` (SIGKILL),
    each stage bounded by ``grace`` seconds, so a wedged worker — blocked
    in a syscall, spinning with signals masked, or deliberately
    fault-injected — can never block :meth:`MultiprocessExecutor.shutdown`
    or a crash-recovery respawn forever.
    """
    proc.join(timeout=grace)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=grace)
    if proc.is_alive():  # pragma: no cover - SIGTERM-immune worker
        proc.kill()
        proc.join(timeout=grace)


class SimulatedExecutor:
    """Serial in-process execution (the original, cost-simulated path).

    One :class:`~repro.parallel.engine.BlockMaterialiser` is shared across
    all simulated workers, so pivot blocks named by units of *different*
    workers are still built once per run.
    """

    name = "simulated"

    def __init__(
        self,
        materialiser: Optional["BlockMaterialiser"] = None,
        match_store: Optional[MatchStore] = None,
    ):
        self.materialiser = materialiser
        self.match_store = match_store

    def run(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        plan: Sequence[Sequence[WorkUnit]],
    ) -> List[List[Optional["UnitResult"]]]:
        """Execute every primary unit; replicas map to ``None``.

        The slot-level payload passes (count-payload derivation, per-
        group result folding) run here too, so simulated and process
        backends consume and produce identically-shaped unit payloads.
        """
        from .engine import (
            BlockMaterialiser,
            consolidate_slot_results,
            execute_unit,
            expand_count_payloads,
        )

        materialiser = self.materialiser
        if materialiser is None:
            materialiser = BlockMaterialiser(graph)
        results: List[List[Optional["UnitResult"]]] = []
        for worker_units in plan:
            worker_units = expand_count_payloads(worker_units)
            slot_results = [
                execute_unit(
                    sigma, graph, unit, materialiser,
                    match_store=self.match_store,
                )
                if unit.primary
                else None
                for unit in worker_units
            ]
            consolidate_slot_results(worker_units, slot_results)
            results.append(slot_results)
        return results


@dataclass
class _BatchState:
    """One batch of tasks bound for one pool worker, plus its liveness.

    ``tasks`` are ``(slot, mode, payload, units, inputs_blob)`` tuples
    (the worker protocol's batch entries).  ``attempts`` counts how
    often this batch has been requeued after a fault; ``progress`` /
    ``progress_at`` track the worker's reported per-batch unit counter
    (for the ``unit_deadline``), ``last_signal`` the last heartbeat or
    dispatch (for the missed-heartbeat stall detector).  Timers only
    start ticking once the batch is actually sent (:meth:`mark_sent`) —
    a batch queued behind another on the same worker is not "running".
    """

    tasks: List[Tuple]
    attempts: int = 0
    progress: int = -1
    progress_at: float = 0.0
    last_signal: float = 0.0

    def mark_sent(self) -> None:
        now = time.monotonic()
        self.last_signal = now
        self.progress_at = now
        self.progress = -1

    @property
    def unit_count(self) -> int:
        return sum(len(task[3]) for task in self.tasks)


class _PersistentRun:
    """One supervised run over the persistent pool: ship, watch, recover.

    The coordinator half of the fault-tolerant execution plane.  It
    builds per-slot shipping payloads (exactly as unsupervised runs
    did), dispatches one batch message per pool worker, then *polls*
    the worker pipes instead of blocking on replies: heartbeats refresh
    liveness and per-unit progress, ``"ok"`` completes a batch,
    ``"err"``/pipe-EOF/silence/deadline-overrun trigger recovery — kill
    and respawn the slot's worker (next incarnation), requeue its
    batches after an exponential backoff, re-using self-contained full
    payloads (pickle blobs re-ship; still-published shm segments
    re-attach) and rebuilding delta/reuse payloads whose resident base
    died with the worker.  A slot whose respawn fails is retired and
    its work rerouted to surviving workers (``degrade_floor`` bounds
    how far); an exhausted retry budget tears the pool down exactly
    like the old fail-stop path did.

    Determinism: recovery changes *where and how often* units execute,
    never their results — violations compare by value, step counts are
    enumeration-order free, and the coordinator folds replies by slot,
    so a recovered run is byte-identical to a fault-free one.  Shipping
    counters do include recovery re-shipments, and a slot that crashed
    mid-run re-ships full on the *next* run too (its cache mirror is
    dropped rather than re-registered — simpler, and only a warm-path
    pessimisation).
    """

    def __init__(
        self,
        pool: "MultiprocessExecutor",
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        primaries: List[List[WorkUnit]],
        busy: List[int],
        shard_cache: Optional[ShardCache],
        epoch: str,
        sigma_key: Optional[object],
        stats: ShippingStats,
        policy: FaultPolicy,
    ) -> None:
        self.pool = pool
        self.sigma = sigma
        self.graph = graph
        self.primaries = primaries
        self.busy = busy
        self.shard_cache = shard_cache
        self.epoch = epoch
        self.sigma_key = sigma_key
        self.stats = stats
        self.policy = policy
        plan = policy.plan
        #: the injection plan shipped to workers (``None`` when it has
        #: no worker-side triggers — applier-only plans stay out of band)
        self.worker_plan = (
            plan if plan is not None and not plan.worker_empty else None
        )
        self._sigma_blob: Optional[bytes] = None
        #: per pool slot: batches dispatched (head) or queued behind it
        self.pending: Dict[int, Deque[_BatchState]] = {}
        #: raw ``"ok"`` replies collected so far
        self.replies: List[Tuple] = []

    # -- shipping ------------------------------------------------------
    def _route_slot(self, slot: int) -> int:
        """Pool slot serving plan slot ``slot`` (degrade-aware).

        The classic pinning ``slot % size`` — except that retired pool
        slots fall through to the live ones, deterministically, so a
        degraded pool keeps a stable slot→process mapping across runs.
        """
        procs = self.pool._procs
        index = slot % len(procs)
        if procs[index] is not None:
            return index
        live = self.pool._live_indices()
        return live[slot % len(live)] if live else index

    def _build_task(self, worker: int) -> Tuple:
        """Build plan slot ``worker``'s task: shard plan + payloads.

        This is the shipping decision (full / delta / reuse via the
        :class:`ShardCache`, shm vs pickle via the ship mode) plus the
        serialise-once accounting; recovery calls it again when a
        requeued slot needs its payload rebuilt from scratch.
        """
        stats = self.stats
        needed: Set = set()
        for unit in self.primaries[worker]:
            needed |= unit.block_nodes
        if self.shard_cache is None:
            mode, data, ship_sigma = (
                "full", self.graph.induced_subgraph(needed), False
            )
        else:
            mode, data, ship_sigma = self.shard_cache.plan(
                worker, self.epoch, needed, self.graph,
                sigma_key=self.sigma_key,
            )
        if ship_sigma or mode == "full":
            if self._sigma_blob is None:
                self._sigma_blob = pack_shard(self.sigma)
            stats.sigma_bytes += len(self._sigma_blob)
        sigma_update = self._sigma_blob if ship_sigma else None
        if ship_sigma:
            stats.shipped_sigma += 1
        if mode == "full":
            if self.pool._map_shard(data):
                ref, segment_bytes = self.pool._plane_for_run().publish(
                    worker, data
                )
                stats.mapped += 1
                stats.mapped_bytes += segment_bytes
            else:
                blob = pack_shard(data)
                ref = ("pickle", blob)
                stats.shard_bytes += len(blob)
            payload = (
                self.epoch, self._sigma_blob, ref,
                self.pool.match_store_budget,
            )
            stats.full += 1
            stats.shipped_nodes += data.num_nodes
        elif mode == "delta":
            # A delta always travels the pipe (it is small by
            # construction); the slot's mapped segment — if any —
            # is retired here and the worker demotes its shard to a
            # private copy before patching.
            if self.pool._plane is not None:
                self.pool._plane.unlink(worker)
            ops, add_nodes, add_edges = data
            blob = pack_shard((ops, add_nodes, add_edges))
            payload = (self.epoch, blob, sigma_update)
            stats.delta += 1
            stats.shipped_nodes += len(add_nodes)
            stats.shipped_ops += len(ops)
            stats.shard_bytes += len(blob)
        else:
            payload = (self.epoch, sigma_update)
            stats.reused += 1
        units = self.primaries[worker]
        unit_inputs = tuple(unit.payload for unit in units)
        if any(payload_in is not None for payload_in in unit_inputs):
            inputs_blob = pack_shard(unit_inputs)
            stats.payload_bytes += len(inputs_blob)
            units = [
                replace(unit, payload=None)
                if unit.payload is not None else unit
                for unit in units
            ]
        else:
            inputs_blob = None
        return (worker, mode, payload, units, inputs_blob)

    def _requeue_tasks(self, tasks: List[Tuple]) -> List[Tuple]:
        """Re-shippable versions of a dead worker's tasks.

        Full payloads are self-contained — the pickle blob re-ships and
        a still-published shm segment re-attaches as-is (the zero-cost
        recovery path).  Delta/reuse payloads assumed resident state
        that died with the worker, so their slots are dropped cold and
        rebuilt (the cache then plans a full shipment).
        """
        out = []
        for task in tasks:
            worker, mode = task[0], task[1]
            if mode == "full":
                out.append(task)
            else:
                if self.shard_cache is not None:
                    self.shard_cache.drop_slots([worker])
                out.append(self._build_task(worker))
        return out

    # -- dispatch ------------------------------------------------------
    def _dispatch(self, index: int, batch: _BatchState) -> None:
        """Queue ``batch`` on pool slot ``index``; send it when it is head.

        At most one batch message sits unread in a worker's pipe at a
        time (queued batches are sent as their predecessors complete),
        so the coordinator never blocks writing a large batch while a
        worker blocks writing a large reply.
        """
        queue = self.pending.setdefault(index, deque())
        queue.append(batch)
        if queue[0] is batch:
            self._send(index, batch)

    def _send(self, index: int, batch: _BatchState) -> None:
        conn = self.pool._conns[index]
        try:
            conn.send(
                (
                    "batch", batch.tasks,
                    self.policy.heartbeat_interval, self.worker_plan,
                )
            )
        except (BrokenPipeError, OSError):
            pass  # repro-lint: disable=RPL050 -- dead pipe surfaces as an EOF crash in the poll loop, which requeues this batch
        batch.mark_sent()

    # -- supervision ---------------------------------------------------
    def execute(self) -> List[Tuple]:
        """Dispatch every slot's batch and supervise until all reply."""
        grouped: Dict[int, List[Tuple]] = {}
        for worker in self.busy:
            grouped.setdefault(self._route_slot(worker), []).append(
                self._build_task(worker)
            )
        for index, tasks in grouped.items():
            self._dispatch(index, _BatchState(tasks=tasks))
        while self.pending:
            self._poll_once()
        return self.replies

    def _poll_timeout(self) -> float:
        timeout = min(
            self.policy.heartbeat_interval, self.policy.stall_timeout / 4
        )
        if self.policy.unit_deadline is not None:
            timeout = min(timeout, self.policy.unit_deadline / 2)
        return max(0.005, min(0.25, timeout))

    def _poll_once(self) -> None:
        """One supervision step: drain ready pipes, then scan deadlines.

        Any recovery action mutates the pending map and possibly the
        pool itself, so the step returns right after handling one
        failure and the outer loop recomputes its view.
        """
        conn_index = {
            self.pool._conns[index]: index
            for index in self.pending
            if self.pool._conns[index] is not None
        }
        ready = _connection_wait(
            list(conn_index), timeout=self._poll_timeout()
        )
        for conn in ready:
            if self._consume(conn_index[conn], conn):
                return
        now = time.monotonic()
        for index in list(self.pending):
            queue = self.pending.get(index)
            if not queue:  # pragma: no cover - defensive
                self.pending.pop(index, None)
                continue
            head = queue[0]
            if now - head.last_signal > self.policy.stall_timeout:
                self._on_failure(index, "stall")
                return
            deadline = self.policy.unit_deadline
            if deadline is not None and (
                now - head.progress_at
                > deadline + self.policy.heartbeat_interval
            ):
                # Progress is sampled at heartbeat cadence, so one
                # interval of slack keeps a just-under-deadline unit
                # from being misread as stalled.
                self._on_failure(index, "stall")
                return

    def _consume(self, index: int, conn) -> bool:
        """Handle one message from pool slot ``index``.

        Returns ``True`` when a failure was handled (the caller's view
        of the pending map is stale and must be recomputed).
        """
        queue = self.pending.get(index)
        if not queue:  # pragma: no cover - raced a completed batch
            return False
        head = queue[0]
        try:
            message = conn.recv()
        except (EOFError, OSError):
            self._on_failure(index, "crash")
            return True
        kind = message[0]
        now = time.monotonic()
        if kind == "hb":
            head.last_signal = now
            self.stats.faults.record_heartbeat(now - message[3])
            progress = message[2]
            if progress != head.progress:
                head.progress = progress
                head.progress_at = now
        elif kind == "ok":
            queue.popleft()
            if queue:
                self._send(index, queue[0])
            else:
                self.pending.pop(index, None)
            self.replies.append(message)
        elif kind == "err":
            self.stats.faults.worker_errors += 1
            self._on_failure(index, "err", tb=message[2])
            return True
        return False

    # -- recovery ------------------------------------------------------
    def _abort(self, message: str) -> None:
        """Terminal failure: tear down exactly like the fail-stop path.

        The cache mirror and the pool state are unknowable, so the next
        run must restart cold — and no stale reply may survive in a
        pipe, which shutdown guarantees by closing every conn.
        """
        if self.shard_cache is not None:
            self.shard_cache.invalidate()
        self.pool.shutdown()
        raise RuntimeError(message)

    def _on_failure(self, index: int, kind: str, tb: Optional[str] = None):
        """Recover pool slot ``index`` after a crash/stall/error.

        One uniform path for all three: even an ``"err"`` reply (the
        worker is alive and caught the exception) leaves the worker's
        resident state uncertain — a mid-batch failure may have
        half-patched a shard — so the slot is killed and respawned, and
        its batches requeued, every time.
        """
        faults = self.stats.faults
        if kind == "crash":
            faults.crashes += 1
        elif kind == "stall":
            faults.stalls += 1
        batches = list(self.pending.pop(index, ()))
        if self.shard_cache is not None:
            # Everything resident on the dead process died with it —
            # including slots from previous runs this run merely reused.
            dead = [
                slot for slot in self.shard_cache.slots()
                if self._route_slot(slot) == index
            ]
            self.shard_cache.drop_slots(dead)
        head = batches[0] if batches else None
        if head is not None:
            head.attempts += 1
            if head.attempts > self.policy.max_retries:
                if kind == "err":
                    self._abort(f"worker process failed:\n{tb}")
                self._abort(
                    f"persistent worker pool lost a process (pool slot "
                    f"{index} {kind} survived {self.policy.max_retries} "
                    "retries); pool shut down — the next run restarts it "
                    "cold"
                )
        if self.pool._respawn_worker(index):
            faults.respawns += 1
            if head is not None:
                time.sleep(self.policy.retry_wait(head.attempts))
            for batch in batches:
                batch.tasks = self._requeue_tasks(batch.tasks)
                faults.retried_units += batch.unit_count
                self._dispatch(index, batch)
            return
        # Respawn failed: degrade — retire the slot and reroute its
        # work to the surviving workers (slot routing changes for every
        # plan slot, so the whole cache mirror goes cold).
        self.pool._retire_worker(index)
        faults.degraded_slots += 1
        if self.shard_cache is not None:
            self.shard_cache.invalidate()
        live = self.pool._live_indices()
        if len(live) < self.policy.degrade_floor:
            self._abort(
                "persistent worker pool lost a process and degraded "
                f"below its floor ({len(live)} live slot(s) < "
                f"degrade_floor={self.policy.degrade_floor}); pool shut "
                "down"
            )
        attempts = max((batch.attempts for batch in batches), default=0)
        rerouted: Dict[int, List[Tuple]] = {}
        for batch in batches:
            for task in self._requeue_tasks(batch.tasks):
                rerouted.setdefault(self._route_slot(task[0]), []).append(
                    task
                )
        for target, tasks in rerouted.items():
            batch = _BatchState(tasks=tasks, attempts=attempts)
            faults.retried_units += batch.unit_count
            self._dispatch(target, batch)


class MultiprocessExecutor:
    """Real parallel execution in worker processes, one-shot or persistent.

    Each non-empty worker of the plan becomes one task: its primary units
    plus the shard-local graph they need (see :func:`worker_graph`) are
    pickled to a worker process, which indexes the shard and detects
    violations for real.  Snapshots travel compactly
    (:meth:`~repro.graph.snapshot.GraphSnapshot.__getstate__` ships
    primary CSR state only) and graphs drop their cached whole-graph
    snapshot on the wire.

    Two lifecycles:

    * **one-shot** (the default, what ``executor="process"`` on the
      stateless entry points uses): every :meth:`run` spins a
      :class:`ProcessPoolExecutor`, ships full shards, and tears the pool
      down — stateless and self-contained.
    * **persistent** (what :class:`~repro.session.ValidationSession`
      uses): :meth:`start` forks long-lived pinned worker processes that
      survive across :meth:`run` calls.  Plan slot ``w`` is always served
      by pool worker ``w % size``, and each worker process keeps a
      resident-shard cache keyed by ``(run_epoch, worker_id)`` — so a
      warm run ships only the block-share delta a :class:`ShardCache`
      computes (or nothing at all), and reuses the worker's shard,
      snapshot and block cache.  :meth:`shutdown` (or the context
      manager) ends the pool.

    Both lifecycles execute the same per-unit detection code and produce
    identical results.  ``processes`` caps the pool size.
    ``start_method`` defaults to ``"fork"`` where available — workers
    then share the parent's hash seed, though result equality does not
    depend on it: violation sets compare by value and step counts are
    enumeration-order independent.
    """

    name = "process"

    def __init__(
        self,
        processes: Optional[int] = None,
        start_method: Optional[str] = None,
        match_store_budget: int = MATCH_STORE_BUDGET,
        ship_mode: str = "auto",
        fault_policy: Optional[FaultPolicy] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise ValueError("need at least one process")
        if ship_mode not in SHIP_MODES:
            raise ValueError(
                f"unknown ship_mode {ship_mode!r}; expected one of {SHIP_MODES}"
            )
        if ship_mode == "shm" and not shm_available():
            raise ValueError(
                "ship_mode='shm' requested but shared memory does not work "
                "on this host; use 'pickle' or 'auto'"
            )
        if fault_policy is not None and not isinstance(fault_policy, FaultPolicy):
            raise TypeError(
                "fault_policy must be a FaultPolicy (or None for defaults)"
            )
        self.processes = processes
        #: how full shards travel (see the module docstring's Ship modes)
        self.ship_mode = ship_mode
        #: default supervision knobs for persistent runs (``None`` means
        #: defaults + any ``REPRO_FAULT_PLAN`` overrides, resolved per run)
        self.fault_policy = fault_policy
        self._plane: Optional[ShardPlane] = None
        #: worker-resident match-store budget (matches retained per
        #: resident shard); shipped with every full shard payload.
        self.match_store_budget = match_store_budget
        if start_method is None:
            # Prefer fork only on Linux: macOS lists it but its system
            # libraries are not fork-safe (intermittent aborts once the
            # parent has started threads), so elsewhere we take the
            # platform's default start method.
            if sys.platform == "linux":
                start_method = "fork"
            else:  # pragma: no cover - non-Linux
                start_method = multiprocessing.get_start_method()
        self.start_method = start_method
        #: pool slots; a retired (degraded) slot holds ``None`` in both
        self._procs: List = []
        self._conns: List = []
        #: respawn count per pool slot (the fault harness's incarnation)
        self._incarnations: Dict[int, int] = {}
        #: shipping record of the most recent persistent run
        self.last_shipping: Optional[ShippingStats] = None

    # ------------------------------------------------------------------
    # persistent-pool lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether a persistent pool is up."""
        return bool(self._procs)

    def worker_pids(self) -> List[int]:
        """PIDs of the persistent pool (empty when not started;
        degraded slots are skipped)."""
        return [proc.pid for proc in self._procs if proc is not None]

    def start(self, size: Optional[int] = None) -> "MultiprocessExecutor":
        """Fork the persistent pool (idempotent).

        ``size`` defaults to ``processes`` (or usable CPUs when unset).
        An explicit request above the usable CPU count is *honoured* —
        oversubscription is legitimate for I/O-heavy or test workloads —
        but warns loudly, because it used to be silently clamped and
        never speeds up CPU-bound matching.
        """
        if self._procs:
            return self
        if size is None:
            size = self.processes or usable_cpus()
        size = max(1, size)
        cpus = usable_cpus()
        if size > cpus:
            warnings.warn(
                f"starting {size} persistent worker processes on {cpus} "
                "usable CPU(s): the explicit request is honoured, but the "
                "pool is oversubscribed",
                RuntimeWarning,
                stacklevel=2,
            )
        for index in range(size):
            proc, parent = self._spawn_worker(index, 0)
            self._procs.append(proc)
            self._conns.append(parent)
        return self

    @staticmethod
    def _clean_start_method() -> str:
        """Start method giving a replacement worker a pristine heap.

        ``forkserver`` children are forked from a freshly exec'd server
        process, so — unlike a mid-run ``fork`` — they inherit none of
        the coordinator's published shared-memory segments or exported
        arena views; unlike ``spawn`` they never re-run ``__main__``.
        """
        if "forkserver" in multiprocessing.get_all_start_methods():
            return "forkserver"
        return "spawn"  # pragma: no cover - no-forkserver platforms

    def _spawn_worker(
        self, index: int, incarnation: int, method: Optional[str] = None
    ) -> Tuple:
        """Fork one pool worker for slot ``index`` at ``incarnation``."""
        context = multiprocessing.get_context(method or self.start_method)
        if method == "forkserver":
            # The default preload re-imports __main__ inside the server,
            # which breaks under embedded/stdin entry points and buys a
            # worker process nothing — it gets everything via messages.
            context.set_forkserver_preload([])
        parent, child = context.Pipe()
        proc = context.Process(
            target=_persistent_worker_main,
            args=(child, index, incarnation),
            daemon=True,
        )
        proc.start()
        child.close()
        return proc, parent

    def _respawn_worker(self, index: int) -> bool:
        """Replace slot ``index``'s worker after a crash/stall/error.

        Kills and reaps whatever occupies the slot, closes its pipe (so
        no stale message from the old incarnation can ever be read) and
        forks a replacement at the next incarnation.  Returns ``False``
        when the fork itself fails — the caller then degrades the pool.
        """
        conn = self._conns[index]
        if conn is not None:
            conn.close()
            self._conns[index] = None
        proc = self._procs[index]
        if proc is not None:
            if proc.is_alive():
                proc.kill()
            _reap_process(proc)
            self._procs[index] = None
        incarnation = self._incarnations.get(index, 0) + 1
        self._incarnations[index] = incarnation
        try:
            # Replacements must not fork the coordinator mid-run: the
            # child would inherit published shared-memory segments (and
            # their exported arena views) it can neither use nor cleanly
            # finalise at exit.  A clean-heap start method costs
            # interpreter start-up once per respawn, recovery path only.
            proc, conn = self._spawn_worker(
                index, incarnation, self._clean_start_method()
            )
        except OSError:
            return False  # caller retires the slot and reroutes its work
        self._procs[index] = proc
        self._conns[index] = conn
        return True

    def _retire_worker(self, index: int) -> None:
        """Permanently retire a pool slot whose respawn failed (degrade)."""
        conn = self._conns[index]
        if conn is not None:
            conn.close()
        self._conns[index] = None
        proc = self._procs[index]
        if proc is not None:
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
            _reap_process(proc)
        self._procs[index] = None

    def _live_indices(self) -> List[int]:
        """Pool slots still holding a live worker process."""
        return [i for i, proc in enumerate(self._procs) if proc is not None]

    def shutdown(self) -> None:
        """Stop the persistent pool (idempotent; one-shot runs unaffected).

        Teardown escalates per worker — ``join(timeout)`` →
        ``terminate()`` → ``kill()`` — so a wedged or fault-injected
        worker can never hang session close, and retires every published
        shared-memory segment even when reaping goes badly: after this
        no shard-plane name survives, whatever state the workers died in.
        """
        try:
            for conn in self._conns:
                if conn is None:
                    continue
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass  # repro-lint: disable=RPL050 -- worker already dead; it is reaped (join/terminate/kill) just below
            for conn in self._conns:
                if conn is not None:
                    conn.close()
            for proc in self._procs:
                if proc is not None:
                    _reap_process(proc)
        finally:
            self._procs.clear()
            self._conns.clear()
            self._incarnations.clear()
            if self._plane is not None:
                self._plane.close()
                self._plane = None

    def __enter__(self) -> "MultiprocessExecutor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.shutdown()
        except Exception:
            pass  # repro-lint: disable=RPL050 -- interpreter teardown; raising from __del__ only produces an unraisable-error banner

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _map_shard(self, shard: PropertyGraph) -> bool:
        """Whether this full shard travels via the shard plane (shm)."""
        if self.ship_mode == "pickle":
            return False
        if self.ship_mode == "shm":
            return True
        return shm_available() and shard.size >= AUTO_SHM_MIN_SIZE

    def _plane_for_run(self) -> ShardPlane:
        if self._plane is None:
            self._plane = ShardPlane()
        return self._plane

    def run(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        plan: Sequence[Sequence[WorkUnit]],
        shard_cache: Optional[ShardCache] = None,
        epoch: Optional[str] = None,
        sigma_key: Optional[object] = None,
        fault_policy: Optional[FaultPolicy] = None,
    ) -> List[List[Optional["UnitResult"]]]:
        """Execute every primary unit in worker processes.

        Returns per-worker result lists aligned with ``plan``: one
        :class:`~repro.parallel.engine.UnitResult` per primary unit,
        ``None`` per replica — the same shape :class:`SimulatedExecutor`
        produces.  On a started (persistent) pool, ``shard_cache`` turns
        on warm shard shipping; without one, every run ships full shards.
        ``sigma_key`` identifies the rule set so a warm slot reships Σ —
        and only Σ — when it changed since the slot's last run.
        ``fault_policy`` overrides the executor's supervision knobs for
        this run (see the module docstring's "Fault tolerance").
        """
        primaries: List[List[WorkUnit]] = [
            [unit for unit in worker_units if unit.primary]
            for worker_units in plan
        ]
        busy = [w for w, units in enumerate(primaries) if units]
        policy = resolve_fault_policy(
            fault_policy if fault_policy is not None else self.fault_policy
        )
        if self._procs:
            results = self._run_persistent(
                sigma, graph, primaries, busy, shard_cache, epoch,
                sigma_key, policy,
            )
        elif busy and policy.plan is not None and not policy.plan.worker_empty:
            # An active worker-side fault plan on an ad-hoc run: route
            # through a supervised temporary pool so injection — and the
            # recovery it exercises — covers the whole differential
            # matrix (rep_val/dis_val/execute_plan), not just session
            # pools.  Fault-free ad-hoc runs keep the one-shot path.
            self.start(min(self.processes or len(busy), len(busy)))
            try:
                results = self._run_persistent(
                    sigma, graph, primaries, busy, shard_cache, epoch,
                    sigma_key, policy,
                )
            finally:
                self.shutdown()
        else:
            results = self._run_oneshot(sigma, graph, primaries, busy)
        aligned: List[List[Optional["UnitResult"]]] = []
        for worker, worker_units in enumerate(plan):
            worker_results = iter(results.get(worker, ()))
            aligned.append(
                [
                    next(worker_results) if unit.primary else None
                    for unit in worker_units
                ]
            )
        return aligned

    def _run_oneshot(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        primaries: List[List[WorkUnit]],
        busy: List[int],
    ) -> Dict[int, List["UnitResult"]]:
        results: Dict[int, List["UnitResult"]] = {}
        if not busy:
            return results
        pool_size = min(self.processes or len(busy), len(busy))
        cpus = max(1, usable_cpus())
        if pool_size > cpus:
            warnings.warn(
                f"one-shot pool of {pool_size} worker processes on {cpus} "
                "usable CPU(s): the explicit request is honoured, but the "
                "pool is oversubscribed",
                RuntimeWarning,
                stacklevel=3,
            )
        plane: Optional[ShardPlane] = None
        context = multiprocessing.get_context(self.start_method)
        try:
            with ProcessPoolExecutor(
                max_workers=pool_size, mp_context=context
            ) as pool:
                futures = {}
                for worker in busy:
                    shard = worker_graph(graph, primaries[worker])
                    if self._map_shard(shard):
                        if plane is None:
                            plane = ShardPlane()
                        ref, _ = plane.publish(worker, shard)
                    else:
                        ref = ("pickle", shard)
                    futures[worker] = pool.submit(
                        _run_worker_units, (sigma, ref, primaries[worker])
                    )
                for worker, future in futures.items():
                    results[worker] = future.result()
        finally:
            # Workers attach during task execution and detach in their
            # own ``finally``; every future is resolved by here, so the
            # names can be retired unconditionally.
            if plane is not None:
                plane.close()
        return results

    def _run_persistent(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        primaries: List[List[WorkUnit]],
        busy: List[int],
        shard_cache: Optional[ShardCache],
        epoch: Optional[str],
        sigma_key: Optional[object] = None,
        policy: Optional[FaultPolicy] = None,
    ) -> Dict[int, List["UnitResult"]]:
        from .engine import MaterialiserStats

        if policy is None:
            policy = resolve_fault_policy(self.fault_policy)
        if epoch is None:
            epoch = next_epoch()
        if shard_cache is not None:
            shard_cache.sync(graph)
        stats = ShippingStats(
            match_store=MatchStoreStats(), block_cache=MaterialiserStats(),
            faults=FaultStats(),
        )
        # Shipping decisions, dispatch and supervision (heartbeats,
        # retry/requeue, respawn, degrade) all live in _PersistentRun;
        # terminal failures tear the pool down exactly like the old
        # fail-stop path did, so the next run restarts cold.
        run = _PersistentRun(
            self, sigma, graph, primaries, busy, shard_cache, epoch,
            sigma_key, stats, policy,
        )
        replies = run.execute()
        results: Dict[int, List["UnitResult"]] = {}
        for _, pid, pairs, store_stats, cache_stats in replies:
            stats.match_store.merge(store_stats)
            stats.block_cache.merge(cache_stats)
            for slot, slot_results, payloads_blob in pairs:
                results[slot] = slot_results
                stats.worker_pids[slot] = pid
                if payloads_blob is not None:
                    # Result payloads arrive as the one blob the worker
                    # serialised (and we measure): reattach in place.
                    stats.payload_bytes += len(payloads_blob)
                    for result, payload in zip(
                        slot_results, unpack_shard(payloads_blob)
                    ):
                        result.payload = payload
        self.last_shipping = stats
        return results


def execute_plan(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    plan: Sequence[Sequence[WorkUnit]],
    executor: str = "simulated",
    processes: Optional[int] = None,
    materialiser: Optional["BlockMaterialiser"] = None,
    pool: Optional[MultiprocessExecutor] = None,
    shard_cache: Optional[ShardCache] = None,
    epoch: Optional[str] = None,
    sigma_key: Optional[object] = None,
    match_store: Optional[MatchStore] = None,
    ship_mode: str = "auto",
    fault_policy: Optional[FaultPolicy] = None,
) -> List[List[Optional["UnitResult"]]]:
    """Execute a plan's primary units with the chosen backend.

    The entry point :func:`~repro.parallel.engine.run_assignment` builds
    on: resolves ``executor`` (see :func:`resolve_executor`), runs every
    primary unit, and returns per-worker result lists aligned with
    ``plan`` (``None`` for replicas).  ``materialiser`` and
    ``match_store`` only apply to the simulated backend — worker
    processes always build their own shard-local materialiser and keep
    their own resident match stores.  ``pool`` supplies a caller-owned
    :class:`MultiprocessExecutor` (a session's persistent pool) for the
    process backend; ``shard_cache``/``epoch`` enable warm shard shipping
    on a started pool.  ``ship_mode`` selects how an *ad-hoc* pool ships
    full shards (see :data:`SHIP_MODES`); a caller-owned ``pool`` keeps
    the mode it was constructed with.  ``fault_policy`` sets this run's
    supervision knobs (see the module docstring's "Fault tolerance");
    the simulated backend runs in-process and ignores it.
    """
    resolved = resolve_executor(executor, plan, processes)
    if resolved == "simulated":
        backend = SimulatedExecutor(
            materialiser=materialiser, match_store=match_store
        )
        return backend.run(sigma, graph, plan)
    backend = pool if pool is not None else MultiprocessExecutor(
        processes=processes, ship_mode=ship_mode
    )
    return backend.run(
        sigma, graph, plan,
        shard_cache=shard_cache, epoch=epoch, sigma_key=sigma_key,
        fault_policy=fault_policy,
    )
