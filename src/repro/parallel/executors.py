"""Execution backends for the parallel engine: simulated vs. real processes.

The simulated cluster (:mod:`repro.parallel.cluster`) charges deterministic
costs while work units execute serially in-process.  This module adds the
other half the paper's Figures 5–8 are about — *real* concurrency:

* :class:`SimulatedExecutor` — the original path: every worker's units run
  on the coordinator, sharing one :class:`~repro.parallel.engine.
  BlockMaterialiser` so heavily-shared blocks are indexed once;
* :class:`MultiprocessExecutor` — a :class:`concurrent.futures.
  ProcessPoolExecutor` backend: each (simulated) worker's primary units
  are shipped to a worker process together with its *shard-local* graph —
  the subgraph induced by the union of its assigned blocks, i.e. exactly
  the resident share a ``disVal`` fragment holds after prefetching.  The
  worker process materialises shard-local
  :class:`~repro.graph.snapshot.GraphSnapshot`s per block (never the whole
  graph), runs local error detection for real, and returns per-unit
  results for the coordinator to aggregate.

Both backends return the same per-unit :class:`~repro.parallel.engine.
UnitResult`s — violations are value-equal sets, and ``steps`` counts every
candidate extension attempted during full enumeration, which is a set-
not order-dependent quantity — so cost charging on the coordinator yields
*identical* :class:`~repro.parallel.cluster.ClusterReport`s.  The
differential suite ``tests/test_parallel_executors.py`` locks this in.

Selection rule
--------------

``executor="simulated"`` (the default on the stateless entry points)
keeps the original behaviour; ``"process"`` forces the pool; ``"auto"``
picks the pool only when it can plausibly pay off — more than one
non-empty worker, at least :data:`AUTO_MIN_PRIMARY_UNITS` primary units,
and more than one usable CPU — and falls back to ``"simulated"``
otherwise.

Session mode (persistent pool + warm shards)
--------------------------------------------

:class:`MultiprocessExecutor` additionally supports a *persistent*
lifecycle for the repeated-validation setting the session layer
(:class:`~repro.session.ValidationSession`) serves: ``start()`` forks
long-lived worker processes reused across ``run()`` calls, each plan
slot pinned to the same process (slot ``w`` → pool worker ``w % size``),
and each worker keeps a resident-shard cache keyed by ``(run_epoch,
worker_id)``.  A :class:`ShardCache` on the coordinator mirrors what
every slot holds so consecutive runs over a reused fragmentation ship
only the block-share *delta* (or, when nothing changed, nothing at all);
:class:`ShippingStats` reports full/delta/reuse counts and worker pids
per run.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import sys
import threading
import traceback
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing.reduction import ForkingPickler
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from ..graph.graph import PropertyGraph
from ..core.gfd import GFD
from .workload import WorkUnit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import BlockMaterialiser, UnitResult

#: Accepted executor names (``auto`` resolves per the module docstring).
EXECUTORS = ("simulated", "process", "auto")

#: ``auto`` only reaches for processes when the plan has at least this
#: many primary units — below it, pool start-up dwarfs the matching work.
AUTO_MIN_PRIMARY_UNITS = 8


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_executor(
    executor: str,
    plan: Sequence[Sequence[WorkUnit]] = (),
    processes: Optional[int] = None,
) -> str:
    """Resolve an executor name to ``"simulated"`` or ``"process"``.

    ``"auto"`` chooses the process pool only when the plan is big enough
    to amortise pool start-up and the machine has more than one usable
    CPU; otherwise it stays simulated.  Unknown names raise.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if executor != "auto":
        return executor
    primaries = sum(1 for units in plan for unit in units if unit.primary)
    busy_workers = sum(1 for units in plan if units)
    cpus = usable_cpus()
    if processes is not None:
        cpus = min(processes, cpus)  # the pool is capped by both anyway
    if busy_workers > 1 and primaries >= AUTO_MIN_PRIMARY_UNITS and cpus > 1:
        return "process"
    return "simulated"


def worker_graph(
    graph: PropertyGraph, units: Sequence[WorkUnit]
) -> PropertyGraph:
    """The shard-local graph a worker needs for ``units``.

    The subgraph induced by the union of the units' block node sets.
    Data blocks are induced subgraphs of ``G``, and each block's node set
    is contained in the union, so every block materialised from this
    shard equals the block materialised from the full graph — the worker
    indexes only its resident share, never ``G`` itself.  For ``disVal``
    this is precisely the fragment's share of the assigned blocks plus
    the prefetched remainder.
    """
    needed: Set = set()
    for unit in units:
        needed |= unit.block_nodes
    return graph.induced_subgraph(needed)


def _run_worker_units(
    payload: Tuple[Sequence[GFD], PropertyGraph, List[WorkUnit]]
) -> List["UnitResult"]:
    """Worker-process entry point: execute primary units over the shard.

    Module-level (picklable) by construction.  Builds one shard-local
    :class:`~repro.parallel.engine.BlockMaterialiser` so blocks shared by
    the worker's own units are indexed once, exactly as on the
    coordinator path.
    """
    from .engine import (
        BlockMaterialiser,
        consolidate_slot_results,
        execute_unit,
        expand_count_payloads,
    )

    sigma, shard, units = payload
    materialiser = BlockMaterialiser(shard)
    units = expand_count_payloads(units)
    results = [execute_unit(sigma, shard, unit, materialiser) for unit in units]
    consolidate_slot_results(units, results)
    return results


#: unique run-epoch tokens for worker-resident cache keys
_EPOCHS = itertools.count()


def next_epoch(prefix: str = "run") -> str:
    """A fresh epoch token for the worker-resident shard caches."""
    return f"{prefix}-{os.getpid()}-{next(_EPOCHS)}"


def payload_size(obj) -> int:
    """Pickled size of ``obj`` — the byte measure ShippingStats reports.

    Uses the same pickler the worker pipes use, so the figure matches
    what actually travels (modulo the envelope).  Measuring re-pickles
    (the pipe's own serialisation is not observable from here) — cheap
    for the small payload categories this is applied to; the one big
    payload, the shard itself, is instead pickled exactly once via
    :func:`pack_shard` and shipped as the measured blob.
    """
    return len(ForkingPickler.dumps(obj))


def pack_shard(data) -> bytes:
    """Serialise a shard payload once, for both the wire and the stats.

    Full shard graphs are the dominant shipment; re-pickling them just
    to measure would double the coordinator's serialisation cost.  The
    coordinator therefore ships the pickled blob (pickling ``bytes``
    inside the batch message is a near-free memcpy) and reads its
    length for ``ShippingStats.shard_bytes``; the worker unpacks with
    :func:`unpack_shard`.
    """
    return bytes(ForkingPickler.dumps(data))


def unpack_shard(blob: bytes):
    """Worker-side inverse of :func:`pack_shard`."""
    return pickle.loads(blob)


@dataclass
class MatchStoreStats:
    """One run's slice of a :class:`MatchStore`'s activity.

    ``hits`` counts work units that *replayed* resident matches instead
    of re-running VF2 enumeration (discovery's ``count``/``confirm``
    phases over blocks the ``mine`` phase left resident — and a warm
    repeated ``mine`` itself); ``misses`` counts units that consulted
    the store and had to enumerate (cold, evicted, or never stored);
    ``stored``/``evicted`` count entry writes and budget evictions.
    Zero VF2 re-enumeration on a warm phase shows up here as
    ``misses == 0`` with ``hits > 0`` — the counter the discovery
    benchmark asserts.
    """

    hits: int = 0
    misses: int = 0
    stored: int = 0
    evicted: int = 0

    def merge(self, other: "MatchStoreStats") -> "MatchStoreStats":
        self.hits += other.hits
        self.misses += other.misses
        self.stored += other.stored
        self.evicted += other.evicted
        return self


#: total matches retained per store (sum of entry lengths): bounds the
#: worker-resident match memory at O(budget); past it, least-recently-
#: used entries are dropped and their units transparently fall back to
#: re-enumeration.
MATCH_STORE_BUDGET = 200_000


class MatchStore:
    """Budget-bounded LRU of enumerated pinned-match lists.

    Discovery's ``mine`` units enumerate every pinned match of a
    ``(leader pattern, pivot candidate, block)`` triple; the ``count``
    and ``confirm`` phases of the same ``discover()`` call need exactly
    those matches again.  A worker process keeps one store per resident
    shard (next to its block cache), keyed by the triple's *content* —
    so a hit is semantically safe whatever rule set is currently live —
    and scoped by the shard's lifetime: a full or delta reshipment drops
    the store with the shard it described.

    Only *enumerating* units deposit: a ``mine`` unit answered by the
    factorised plan (``eval_mode`` ``"auto"``/``"factorised"``, see
    :mod:`repro.matching.factorised`) never materialises matches, so it
    leaves the store untouched and the count phase factorises too
    instead of replaying.  Replay is checked *before* factorisation
    either way, so a warm store keeps winning under ``"auto"``.

    Entries record the enumeration's deterministic ``steps`` alongside
    the canonical leader-space match tuples, so a replayed unit charges
    the *identical* simulated cost a fresh enumeration would — warmth
    is a wall-clock win only, and cluster reports stay backend- and
    replay-invariant.  ``budget`` bounds the summed entry *charges* —
    ``max(1, len(matches))``, so even an empty enumeration (worth
    replaying: discovering "no pinned match" still costs VF2 steps)
    pays for the key it retains and ages out of the LRU like any other
    entry, and ``budget=0`` refuses everything (the documented "off"
    switch).  An enumeration exceeding the whole budget on its own is
    simply not stored.  Thread-safe for the coordinator path (the
    session shares one across simulated runs), same locking discipline
    as :class:`~repro.parallel.engine.BlockMaterialiser`.
    """

    def __init__(self, budget: int = MATCH_STORE_BUDGET) -> None:
        self.budget = budget
        #: cumulative counters (per-run slices via :meth:`take_stats`)
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evicted = 0
        self._retained = 0
        self._lock = threading.RLock()
        self._run_stats = MatchStoreStats()
        self._entries: "OrderedDict[tuple, Tuple[int, tuple]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def retained(self) -> int:
        """Summed entry charges currently resident (the budgeted quantity)."""
        return self._retained

    def get(self, key: tuple) -> Optional[Tuple[int, tuple]]:
        """The ``(steps, matches)`` entry for ``key``, counting hit/miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._run_stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._run_stats.hits += 1
            return entry

    @staticmethod
    def _charge(matches: tuple) -> int:
        """Budget charge of one entry (≥ 1: the key itself has a cost)."""
        return max(1, len(matches))

    def put(self, key: tuple, steps: int, matches: tuple) -> bool:
        """Retain one enumeration; ``False`` if it alone exceeds the budget."""
        charge = self._charge(matches)
        if charge > self.budget:
            return False
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._retained -= self._charge(previous[1])
            self._entries[key] = (steps, matches)
            self._retained += charge
            self.stored += 1
            self._run_stats.stored += 1
            while self._retained > self.budget and len(self._entries) > 1:
                _, (_, evicted) = self._entries.popitem(last=False)
                self._retained -= self._charge(evicted)
                self.evicted += 1
                self._run_stats.evicted += 1
            return True

    def clear(self) -> None:
        """Drop every entry (the backing shard changed)."""
        with self._lock:
            self._entries.clear()
            self._retained = 0

    def take_stats(self) -> MatchStoreStats:
        """Return and reset the per-run counters (cumulative ones stay)."""
        with self._lock:
            stats = self._run_stats
            self._run_stats = MatchStoreStats()
            return stats


@dataclass
class ShippingStats:
    """What one process-executor run shipped to its workers.

    ``full``/``delta``/``reused`` count busy plan slots by how their
    shard travelled: whole induced subgraph, block-share delta, or
    nothing at all (the worker's resident share already covered the
    run).  ``worker_pids`` maps each busy slot to the OS pid that
    executed it — warm-session tests pin pid stability across runs.
    ``shipped_sigma`` counts warm slots that received a *rule-set*
    update alongside their resident shard (a session running discovery
    phases or a mined-Σ confirmation pass swaps Σ without touching the
    shard — block shares stay at zero).

    The ``*_bytes`` fields measure the run's payload volume via pickle
    size (:func:`payload_size`): ``sigma_bytes`` the rule sets shipped
    (full shipments and warm Σ-swaps alike), ``shard_bytes`` the
    block-share payloads (full shards and deltas), and
    ``payload_bytes`` the work units' kind-specific data path — unit
    input payloads coordinator→worker plus result payloads
    worker→coordinator.  Discovery's aggregate-vs-match-list shipping
    win is the ``payload_bytes`` delta.  ``match_store`` carries the
    run's worker-resident match-store activity (``None`` until a
    persistent run reports).
    """

    full: int = 0
    delta: int = 0
    reused: int = 0
    shipped_nodes: int = 0
    shipped_ops: int = 0
    shipped_sigma: int = 0
    sigma_bytes: int = 0
    shard_bytes: int = 0
    payload_bytes: int = 0
    match_store: Optional[MatchStoreStats] = None
    worker_pids: Dict[int, int] = field(default_factory=dict)

    def merge(self, other: "ShippingStats") -> "ShippingStats":
        """Fold another run's shipping in (a phase spanning two runs —
        discovery's enumerate pass plus its capped-match fetch —
        reports one combined record)."""
        self.full += other.full
        self.delta += other.delta
        self.reused += other.reused
        self.shipped_nodes += other.shipped_nodes
        self.shipped_ops += other.shipped_ops
        self.shipped_sigma += other.shipped_sigma
        self.sigma_bytes += other.sigma_bytes
        self.shard_bytes += other.shard_bytes
        self.payload_bytes += other.payload_bytes
        if other.match_store is not None:
            if self.match_store is None:
                self.match_store = MatchStoreStats()
            self.match_store.merge(other.match_store)
        self.worker_pids.update(other.worker_pids)
        return self


@dataclass
class _SlotState:
    """Coordinator-side mirror of one worker slot's resident shard."""

    epoch: str
    resident: Set
    seq: int  # position in the ShardCache op log already shipped
    #: identity of the rule set the worker currently holds for this slot
    sigma_key: Optional[object] = None


class ShardCache:
    """Coordinator-side bookkeeping for warm worker-resident shards.

    A :class:`~repro.session.ValidationSession` owns one of these per
    session.  For every busy plan slot it remembers which nodes the
    pinned worker process currently holds (and at which op-log position),
    so consecutive runs over an unchanged — or session-updated — graph
    ship only the *delta*: graph updates routed through
    ``session.update()`` land in the op log and are forwarded to resident
    shards; newly needed block nodes travel as an induced add-payload;
    an unchanged slot ships nothing.

    Out-of-band structural mutations (not routed through the session) are
    detected via the graph's structural version and drop every slot cold.
    Attribute edits do not bump the version, so those *must* go through
    ``session.update()`` — the same contract ``IncrementalValidator``
    already imposes.
    """

    #: forwarded-op budget per slot and run: past this, reship instead
    MAX_FORWARD_OPS = 4096

    def __init__(self) -> None:
        self._slots: Dict[int, _SlotState] = {}
        self._log: List[Tuple] = []
        self._marked_version: Optional[int] = None

    def record(self, op: Tuple) -> None:
        """Append one session-routed update op to the forwarding log.

        The log is compacted at every :meth:`sync` and hard-capped here:
        a backlog several times :data:`MAX_FORWARD_OPS` means no slot is
        keeping up (or none exists), so reshipping beats forwarding and
        everything is dropped cold.
        """
        self._log.append(op)
        if len(self._log) > 4 * self.MAX_FORWARD_OPS:
            self.invalidate()

    def _compact(self) -> None:
        """Drop the log prefix every slot has already consumed."""
        if not self._slots:
            self._log.clear()
            return
        low = min(state.seq for state in self._slots.values())
        if low:
            del self._log[:low]
            for state in self._slots.values():
                state.seq -= low

    def mark_version(self, version: int) -> None:
        """Declare the graph's structural version after session updates."""
        self._marked_version = version

    def invalidate(self) -> None:
        """Drop every slot cold (next run reships full shards)."""
        self._slots.clear()
        self._log.clear()

    def sync(self, graph: PropertyGraph) -> None:
        """Reconcile with the graph before a run.

        A structural version the session did not announce means someone
        mutated the graph out-of-band: every resident shard is stale.
        """
        if self._marked_version != graph._version:
            self.invalidate()
            self._marked_version = graph._version
        else:
            self._compact()

    def plan(
        self,
        slot: int,
        epoch: str,
        needed: Set,
        graph: PropertyGraph,
        sigma_key: Optional[object] = None,
    ) -> Tuple[str, object, bool]:
        """Decide how ``slot``'s shard travels this run.

        Returns ``("full", shard_graph, False)``, ``("delta", (ops,
        add_nodes, add_edges), ship_sigma)`` or ``("reuse", None,
        ship_sigma)``, updating the slot's mirror state to match what
        the worker will hold afterwards.  ``ship_sigma`` is ``True``
        when the rule set identified by ``sigma_key`` differs from what
        the worker holds for the slot — the caller then sends Σ along
        (a full shipment always carries Σ, so there it is ``False``).
        """
        state = self._slots.get(slot)
        if state is not None and state.epoch == epoch:
            ops = self._forward_ops(state.resident, state.seq)
            if ops is not None:
                ship_sigma = state.sigma_key != sigma_key
                state.sigma_key = sigma_key
                missing = needed - state.resident
                state.seq = len(self._log)
                if not ops and not missing:
                    return "reuse", None, ship_sigma
                add_nodes, add_edges = self._add_payload(
                    graph, state.resident, missing
                )
                state.resident |= missing
                return "delta", (ops, add_nodes, add_edges), ship_sigma
        shard = graph.induced_subgraph(needed)
        self._slots[slot] = _SlotState(
            epoch=epoch, resident=set(needed), seq=len(self._log),
            sigma_key=sigma_key,
        )
        return "full", shard, False

    def _forward_ops(self, resident: Set, seq: int) -> Optional[List[Tuple]]:
        """Log ops since ``seq`` restricted to the resident share.

        ``None`` means the backlog is too large — reshipping is cheaper.
        """
        pending = self._log[seq:]
        if len(pending) > self.MAX_FORWARD_OPS:
            return None
        out: List[Tuple] = []
        for op in pending:
            kind = op[0]
            if kind in ("attr", "node"):
                if op[1] in resident:
                    out.append(op)
            elif kind in ("edge+", "edge-"):
                if op[1] in resident and op[2] in resident:
                    out.append(op)
            else:  # pragma: no cover - session.update validates op kinds
                return None
        return out

    @staticmethod
    def _add_payload(
        graph: PropertyGraph, resident: Set, missing: Set
    ) -> Tuple[List[Tuple], List[Tuple]]:
        """Nodes + induced edges that extend a resident shard by ``missing``."""
        new_resident = resident | missing
        add_nodes = [
            (node, graph.label(node), dict(graph.attrs(node)))
            for node in missing
        ]
        add_edges: List[Tuple] = []
        for node in missing:
            for dst, labels in graph.out_neighbors(node).items():
                if dst in new_resident:
                    add_edges.extend((node, dst, label) for label in labels)
            for src, labels in graph.in_neighbors(node).items():
                if src in new_resident and src not in missing:
                    add_edges.extend((src, node, label) for label in labels)
        return add_nodes, add_edges


class _ResidentShard:
    """A worker process's cached state for one (epoch, slot).

    ``match_store`` is the slot's worker-resident match cache (see
    :class:`MatchStore`): populated by ``mine`` units, replayed by
    ``count``/``detect`` units, and scoped to the shard — reshipping or
    patching the shard drops it, reusing the shard keeps it warm.
    """

    __slots__ = ("sigma", "shard", "materialiser", "match_store")

    def __init__(self, sigma, shard, materialiser, match_store) -> None:
        self.sigma = sigma
        self.shard = shard
        self.materialiser = materialiser
        self.match_store = match_store


def _apply_shard_op(shard: PropertyGraph, op: Tuple) -> None:
    kind = op[0]
    if kind == "attr":
        shard.set_attr(op[1], op[2], op[3])
    elif kind == "edge+":
        shard.add_edge(op[1], op[2], op[3])
    elif kind == "edge-":
        shard.remove_edge(op[1], op[2], op[3])
    elif kind == "node":
        shard.add_node(op[1], op[2], dict(op[3]) if op[3] else None)
    else:
        raise ValueError(f"unknown shard op {kind!r}")


def _run_slot(
    cache: Dict[Tuple[str, int], _ResidentShard],
    slot: int,
    mode: str,
    payload,
    units: Sequence[WorkUnit],
) -> List["UnitResult"]:
    """Worker-side execution of one plan slot with shard-cache handling."""
    from .engine import (
        BlockMaterialiser,
        consolidate_slot_results,
        execute_unit,
        expand_count_payloads,
    )

    if mode == "full":
        epoch, sigma, blob, match_budget = payload
        shard = unpack_shard(blob)
        for key in [k for k in cache if k[1] == slot and k[0] != epoch]:
            del cache[key]  # one resident shard per slot
        entry = _ResidentShard(
            sigma, shard, BlockMaterialiser(shard), MatchStore(match_budget)
        )
        cache[(epoch, slot)] = entry
    elif mode == "delta":
        epoch, blob, sigma = payload
        ops, add_nodes, add_edges = unpack_shard(blob)
        entry = cache[(epoch, slot)]
        shard = entry.shard
        for op in ops:
            _apply_shard_op(shard, op)
        for node, label, attrs in add_nodes:
            shard.add_node(node, label, attrs)
        for src, dst, label in add_edges:
            shard.add_edge(src, dst, label)
        # Cached blocks may straddle the patched region: start fresh.
        # Resident matches were enumerated over the pre-patch shard —
        # equally stale, equally dropped.
        entry.materialiser = BlockMaterialiser(shard)
        entry.match_store.clear()
        if sigma is not None:
            entry.sigma = sigma
    else:  # reuse: shard, snapshot *and* block cache stay warm
        epoch, sigma = payload
        entry = cache[(epoch, slot)]
        if sigma is not None:
            # New rule set over the same resident shard (discovery's
            # phases, a mined-Σ confirmation pass): blocks and snapshots
            # stay warm; per-pattern matchers are dropped so stale
            # patterns don't accumulate.  Resident matches are keyed by
            # pattern *content*, so they survive the Σ swap — that is
            # what lets count/confirm replay what mine enumerated.
            entry.sigma = sigma
            entry.materialiser.drop_matchers()
    units = expand_count_payloads(units)
    results = [
        execute_unit(
            entry.sigma, entry.shard, unit, entry.materialiser,
            match_store=entry.match_store,
        )
        for unit in units
    ]
    consolidate_slot_results(units, results)
    return results


def _persistent_worker_main(conn) -> None:
    """Command loop of one persistent (pinned) worker process."""
    cache: Dict[Tuple[str, int], _ResidentShard] = {}
    pid = os.getpid()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - coordinator died
            break
        if message[0] == "stop":
            break
        try:
            replies = [
                (slot, _run_slot(cache, slot, mode, payload, units))
                for slot, mode, payload, units in message[1]
            ]
            # Per-batch match-store slice, summed over this worker's
            # resident shards (untouched entries contribute zeros) — the
            # coordinator aggregates these into the run's ShippingStats.
            store_stats = MatchStoreStats()
            for entry in cache.values():
                store_stats.merge(entry.match_store.take_stats())
            reply = ("ok", pid, replies, store_stats)
        except BaseException:
            reply = ("err", pid, traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover
            break  # coordinator went away mid-run
    conn.close()


class SimulatedExecutor:
    """Serial in-process execution (the original, cost-simulated path).

    One :class:`~repro.parallel.engine.BlockMaterialiser` is shared across
    all simulated workers, so pivot blocks named by units of *different*
    workers are still built once per run.
    """

    name = "simulated"

    def __init__(
        self,
        materialiser: Optional["BlockMaterialiser"] = None,
        match_store: Optional[MatchStore] = None,
    ):
        self.materialiser = materialiser
        self.match_store = match_store

    def run(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        plan: Sequence[Sequence[WorkUnit]],
    ) -> List[List[Optional["UnitResult"]]]:
        """Execute every primary unit; replicas map to ``None``.

        The slot-level payload passes (count-payload derivation, per-
        group result folding) run here too, so simulated and process
        backends consume and produce identically-shaped unit payloads.
        """
        from .engine import (
            BlockMaterialiser,
            consolidate_slot_results,
            execute_unit,
            expand_count_payloads,
        )

        materialiser = self.materialiser
        if materialiser is None:
            materialiser = BlockMaterialiser(graph)
        results: List[List[Optional["UnitResult"]]] = []
        for worker_units in plan:
            worker_units = expand_count_payloads(worker_units)
            slot_results = [
                execute_unit(
                    sigma, graph, unit, materialiser,
                    match_store=self.match_store,
                )
                if unit.primary
                else None
                for unit in worker_units
            ]
            consolidate_slot_results(worker_units, slot_results)
            results.append(slot_results)
        return results


class MultiprocessExecutor:
    """Real parallel execution in worker processes, one-shot or persistent.

    Each non-empty worker of the plan becomes one task: its primary units
    plus the shard-local graph they need (see :func:`worker_graph`) are
    pickled to a worker process, which indexes the shard and detects
    violations for real.  Snapshots travel compactly
    (:meth:`~repro.graph.snapshot.GraphSnapshot.__getstate__` ships
    primary CSR state only) and graphs drop their cached whole-graph
    snapshot on the wire.

    Two lifecycles:

    * **one-shot** (the default, what ``executor="process"`` on the
      stateless entry points uses): every :meth:`run` spins a
      :class:`ProcessPoolExecutor`, ships full shards, and tears the pool
      down — stateless and self-contained.
    * **persistent** (what :class:`~repro.session.ValidationSession`
      uses): :meth:`start` forks long-lived pinned worker processes that
      survive across :meth:`run` calls.  Plan slot ``w`` is always served
      by pool worker ``w % size``, and each worker process keeps a
      resident-shard cache keyed by ``(run_epoch, worker_id)`` — so a
      warm run ships only the block-share delta a :class:`ShardCache`
      computes (or nothing at all), and reuses the worker's shard,
      snapshot and block cache.  :meth:`shutdown` (or the context
      manager) ends the pool.

    Both lifecycles execute the same per-unit detection code and produce
    identical results.  ``processes`` caps the pool size.
    ``start_method`` defaults to ``"fork"`` where available — workers
    then share the parent's hash seed, though result equality does not
    depend on it: violation sets compare by value and step counts are
    enumeration-order independent.
    """

    name = "process"

    def __init__(
        self,
        processes: Optional[int] = None,
        start_method: Optional[str] = None,
        match_store_budget: int = MATCH_STORE_BUDGET,
    ) -> None:
        if processes is not None and processes < 1:
            raise ValueError("need at least one process")
        self.processes = processes
        #: worker-resident match-store budget (matches retained per
        #: resident shard); shipped with every full shard payload.
        self.match_store_budget = match_store_budget
        if start_method is None:
            # Prefer fork only on Linux: macOS lists it but its system
            # libraries are not fork-safe (intermittent aborts once the
            # parent has started threads), so elsewhere we take the
            # platform's default start method.
            if sys.platform == "linux":
                start_method = "fork"
            else:  # pragma: no cover - non-Linux
                start_method = multiprocessing.get_start_method()
        self.start_method = start_method
        self._procs: List = []
        self._conns: List = []
        #: shipping record of the most recent persistent run
        self.last_shipping: Optional[ShippingStats] = None

    # ------------------------------------------------------------------
    # persistent-pool lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether a persistent pool is up."""
        return bool(self._procs)

    def worker_pids(self) -> List[int]:
        """PIDs of the persistent pool (empty when not started)."""
        return [proc.pid for proc in self._procs]

    def start(self, size: Optional[int] = None) -> "MultiprocessExecutor":
        """Fork the persistent pool (idempotent).

        ``size`` defaults to ``processes`` capped by usable CPUs.
        """
        if self._procs:
            return self
        if size is None:
            size = min(self.processes or usable_cpus(), usable_cpus())
        size = max(1, size)
        context = multiprocessing.get_context(self.start_method)
        for _ in range(size):
            parent, child = context.Pipe()
            proc = context.Process(
                target=_persistent_worker_main, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        return self

    def shutdown(self) -> None:
        """Stop the persistent pool (idempotent; one-shot runs unaffected)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        self._procs.clear()
        self._conns.clear()

    def __enter__(self) -> "MultiprocessExecutor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.shutdown()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        plan: Sequence[Sequence[WorkUnit]],
        shard_cache: Optional[ShardCache] = None,
        epoch: Optional[str] = None,
        sigma_key: Optional[object] = None,
    ) -> List[List[Optional["UnitResult"]]]:
        """Execute every primary unit in worker processes.

        Returns per-worker result lists aligned with ``plan``: one
        :class:`~repro.parallel.engine.UnitResult` per primary unit,
        ``None`` per replica — the same shape :class:`SimulatedExecutor`
        produces.  On a started (persistent) pool, ``shard_cache`` turns
        on warm shard shipping; without one, every run ships full shards.
        ``sigma_key`` identifies the rule set so a warm slot reships Σ —
        and only Σ — when it changed since the slot's last run.
        """
        primaries: List[List[WorkUnit]] = [
            [unit for unit in worker_units if unit.primary]
            for worker_units in plan
        ]
        busy = [w for w, units in enumerate(primaries) if units]
        if self._procs:
            results = self._run_persistent(
                sigma, graph, primaries, busy, shard_cache, epoch, sigma_key
            )
        else:
            results = self._run_oneshot(sigma, graph, primaries, busy)
        aligned: List[List[Optional["UnitResult"]]] = []
        for worker, worker_units in enumerate(plan):
            worker_results = iter(results.get(worker, ()))
            aligned.append(
                [
                    next(worker_results) if unit.primary else None
                    for unit in worker_units
                ]
            )
        return aligned

    def _run_oneshot(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        primaries: List[List[WorkUnit]],
        busy: List[int],
    ) -> Dict[int, List["UnitResult"]]:
        results: Dict[int, List["UnitResult"]] = {}
        if not busy:
            return results
        pool_size = min(
            self.processes or len(busy), len(busy), max(1, usable_cpus())
        )
        context = multiprocessing.get_context(self.start_method)
        with ProcessPoolExecutor(
            max_workers=pool_size, mp_context=context
        ) as pool:
            futures = {
                worker: pool.submit(
                    _run_worker_units,
                    (sigma, worker_graph(graph, primaries[worker]),
                     primaries[worker]),
                )
                for worker in busy
            }
            for worker, future in futures.items():
                results[worker] = future.result()
        return results

    def _run_persistent(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        primaries: List[List[WorkUnit]],
        busy: List[int],
        shard_cache: Optional[ShardCache],
        epoch: Optional[str],
        sigma_key: Optional[object] = None,
    ) -> Dict[int, List["UnitResult"]]:
        if epoch is None:
            epoch = next_epoch()
        if shard_cache is not None:
            shard_cache.sync(graph)
        stats = ShippingStats(match_store=MatchStoreStats())
        size = len(self._procs)
        sigma_bytes: Optional[int] = None  # measured once, Σ is per-run
        batches: Dict[int, List[Tuple]] = {}
        for worker in busy:
            needed: Set = set()
            for unit in primaries[worker]:
                needed |= unit.block_nodes
            if shard_cache is None:
                mode, data, ship_sigma = (
                    "full", graph.induced_subgraph(needed), False
                )
            else:
                mode, data, ship_sigma = shard_cache.plan(
                    worker, epoch, needed, graph, sigma_key=sigma_key
                )
            sigma_update = sigma if ship_sigma else None
            if ship_sigma or mode == "full":
                if sigma_bytes is None:
                    sigma_bytes = payload_size(sigma)
                stats.sigma_bytes += sigma_bytes
            if ship_sigma:
                stats.shipped_sigma += 1
            if mode == "full":
                blob = pack_shard(data)
                payload = (epoch, sigma, blob, self.match_store_budget)
                stats.full += 1
                stats.shipped_nodes += data.num_nodes
                stats.shard_bytes += len(blob)
            elif mode == "delta":
                ops, add_nodes, add_edges = data
                blob = pack_shard((ops, add_nodes, add_edges))
                payload = (epoch, blob, sigma_update)
                stats.delta += 1
                stats.shipped_nodes += len(add_nodes)
                stats.shipped_ops += len(ops)
                stats.shard_bytes += len(blob)
            else:
                payload = (epoch, sigma_update)
                stats.reused += 1
            unit_inputs = [
                unit.payload for unit in primaries[worker]
                if unit.payload is not None
            ]
            if unit_inputs:
                stats.payload_bytes += payload_size(unit_inputs)
            batches.setdefault(worker % size, []).append(
                (worker, mode, payload, primaries[worker])
            )
        try:
            for proc_index, tasks in batches.items():
                self._conns[proc_index].send(("batch", tasks))
            # Drain every pending reply before raising so a failed run
            # never leaves stale replies in a pipe for the next run.
            replies = [
                (proc_index, self._conns[proc_index].recv())
                for proc_index in batches
            ]
        except (EOFError, BrokenPipeError, OSError) as exc:
            # A worker died hard (OOM kill, segfault): resident shards
            # and pipe contents are unknowable — tear the pool down so
            # the next run restarts cold instead of misreading state.
            if shard_cache is not None:
                shard_cache.invalidate()
            self.shutdown()
            raise RuntimeError(
                f"persistent worker pool lost a process ({exc!r}); pool "
                "shut down — the next run restarts it cold"
            ) from exc
        failures = [reply for _, reply in replies if reply[0] == "err"]
        if failures:
            if shard_cache is not None:
                shard_cache.invalidate()  # worker state now unknown
            raise RuntimeError(f"worker process failed:\n{failures[0][2]}")
        results: Dict[int, List["UnitResult"]] = {}
        for _, (_, pid, pairs, store_stats) in replies:
            stats.match_store.merge(store_stats)
            for slot, slot_results in pairs:
                results[slot] = slot_results
                stats.worker_pids[slot] = pid
                result_payloads = [
                    result.payload for result in slot_results
                    if result.payload is not None
                ]
                if result_payloads:
                    stats.payload_bytes += payload_size(result_payloads)
        self.last_shipping = stats
        return results


def execute_plan(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    plan: Sequence[Sequence[WorkUnit]],
    executor: str = "simulated",
    processes: Optional[int] = None,
    materialiser: Optional["BlockMaterialiser"] = None,
    pool: Optional[MultiprocessExecutor] = None,
    shard_cache: Optional[ShardCache] = None,
    epoch: Optional[str] = None,
    sigma_key: Optional[object] = None,
    match_store: Optional[MatchStore] = None,
) -> List[List[Optional["UnitResult"]]]:
    """Execute a plan's primary units with the chosen backend.

    The entry point :func:`~repro.parallel.engine.run_assignment` builds
    on: resolves ``executor`` (see :func:`resolve_executor`), runs every
    primary unit, and returns per-worker result lists aligned with
    ``plan`` (``None`` for replicas).  ``materialiser`` and
    ``match_store`` only apply to the simulated backend — worker
    processes always build their own shard-local materialiser and keep
    their own resident match stores.  ``pool`` supplies a caller-owned
    :class:`MultiprocessExecutor` (a session's persistent pool) for the
    process backend; ``shard_cache``/``epoch`` enable warm shard shipping
    on a started pool.
    """
    resolved = resolve_executor(executor, plan, processes)
    if resolved == "simulated":
        backend = SimulatedExecutor(
            materialiser=materialiser, match_store=match_store
        )
        return backend.run(sigma, graph, plan)
    backend = pool if pool is not None else MultiprocessExecutor(
        processes=processes
    )
    return backend.run(
        sigma, graph, plan,
        shard_cache=shard_cache, epoch=epoch, sigma_key=sigma_key,
    )
