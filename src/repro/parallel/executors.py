"""Execution backends for the parallel engine: simulated vs. real processes.

The simulated cluster (:mod:`repro.parallel.cluster`) charges deterministic
costs while work units execute serially in-process.  This module adds the
other half the paper's Figures 5–8 are about — *real* concurrency:

* :class:`SimulatedExecutor` — the original path: every worker's units run
  on the coordinator, sharing one :class:`~repro.parallel.engine.
  BlockMaterialiser` so heavily-shared blocks are indexed once;
* :class:`MultiprocessExecutor` — a :class:`concurrent.futures.
  ProcessPoolExecutor` backend: each (simulated) worker's primary units
  are shipped to a worker process together with its *shard-local* graph —
  the subgraph induced by the union of its assigned blocks, i.e. exactly
  the resident share a ``disVal`` fragment holds after prefetching.  The
  worker process materialises shard-local
  :class:`~repro.graph.snapshot.GraphSnapshot`s per block (never the whole
  graph), runs local error detection for real, and returns per-unit
  results for the coordinator to aggregate.

Both backends return the same per-unit :class:`~repro.parallel.engine.
UnitResult`s — violations are value-equal sets, and ``steps`` counts every
candidate extension attempted during full enumeration, which is a set-
not order-dependent quantity — so cost charging on the coordinator yields
*identical* :class:`~repro.parallel.cluster.ClusterReport`s.  The
differential suite ``tests/test_parallel_executors.py`` locks this in.

Selection rule
--------------

``executor="simulated"`` (the default everywhere) keeps the original
behaviour; ``"process"`` forces the pool; ``"auto"`` picks the pool only
when it can plausibly pay off — more than one non-empty worker, at least
:data:`AUTO_MIN_PRIMARY_UNITS` primary units, and more than one usable
CPU — and falls back to ``"simulated"`` otherwise.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from ..graph.graph import PropertyGraph
from ..core.gfd import GFD
from .workload import WorkUnit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import BlockMaterialiser, UnitResult

#: Accepted executor names (``auto`` resolves per the module docstring).
EXECUTORS = ("simulated", "process", "auto")

#: ``auto`` only reaches for processes when the plan has at least this
#: many primary units — below it, pool start-up dwarfs the matching work.
AUTO_MIN_PRIMARY_UNITS = 8


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_executor(
    executor: str,
    plan: Sequence[Sequence[WorkUnit]] = (),
    processes: Optional[int] = None,
) -> str:
    """Resolve an executor name to ``"simulated"`` or ``"process"``.

    ``"auto"`` chooses the process pool only when the plan is big enough
    to amortise pool start-up and the machine has more than one usable
    CPU; otherwise it stays simulated.  Unknown names raise.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if executor != "auto":
        return executor
    primaries = sum(1 for units in plan for unit in units if unit.primary)
    busy_workers = sum(1 for units in plan if units)
    cpus = usable_cpus()
    if processes is not None:
        cpus = min(processes, cpus)  # the pool is capped by both anyway
    if busy_workers > 1 and primaries >= AUTO_MIN_PRIMARY_UNITS and cpus > 1:
        return "process"
    return "simulated"


def worker_graph(
    graph: PropertyGraph, units: Sequence[WorkUnit]
) -> PropertyGraph:
    """The shard-local graph a worker needs for ``units``.

    The subgraph induced by the union of the units' block node sets.
    Data blocks are induced subgraphs of ``G``, and each block's node set
    is contained in the union, so every block materialised from this
    shard equals the block materialised from the full graph — the worker
    indexes only its resident share, never ``G`` itself.  For ``disVal``
    this is precisely the fragment's share of the assigned blocks plus
    the prefetched remainder.
    """
    needed: Set = set()
    for unit in units:
        needed |= unit.block_nodes
    return graph.induced_subgraph(needed)


def _run_worker_units(
    payload: Tuple[Sequence[GFD], PropertyGraph, List[WorkUnit]]
) -> List["UnitResult"]:
    """Worker-process entry point: execute primary units over the shard.

    Module-level (picklable) by construction.  Builds one shard-local
    :class:`~repro.parallel.engine.BlockMaterialiser` so blocks shared by
    the worker's own units are indexed once, exactly as on the
    coordinator path.
    """
    from .engine import BlockMaterialiser, execute_unit

    sigma, shard, units = payload
    materialiser = BlockMaterialiser(shard)
    return [execute_unit(sigma, shard, unit, materialiser) for unit in units]


class SimulatedExecutor:
    """Serial in-process execution (the original, cost-simulated path).

    One :class:`~repro.parallel.engine.BlockMaterialiser` is shared across
    all simulated workers, so pivot blocks named by units of *different*
    workers are still built once per run.
    """

    name = "simulated"

    def __init__(self, materialiser: Optional["BlockMaterialiser"] = None):
        self.materialiser = materialiser

    def run(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        plan: Sequence[Sequence[WorkUnit]],
    ) -> List[List[Optional["UnitResult"]]]:
        """Execute every primary unit; replicas map to ``None``."""
        from .engine import BlockMaterialiser, execute_unit

        materialiser = self.materialiser
        if materialiser is None:
            materialiser = BlockMaterialiser(graph)
        results: List[List[Optional["UnitResult"]]] = []
        for worker_units in plan:
            results.append(
                [
                    execute_unit(sigma, graph, unit, materialiser)
                    if unit.primary
                    else None
                    for unit in worker_units
                ]
            )
        return results


class MultiprocessExecutor:
    """Real parallel execution over a :class:`ProcessPoolExecutor`.

    Each non-empty worker of the plan becomes one task: its primary units
    plus the shard-local graph they need (see :func:`worker_graph`) are
    pickled to a worker process, which indexes the shard and detects
    violations for real.  Snapshots travel compactly
    (:meth:`~repro.graph.snapshot.GraphSnapshot.__getstate__` ships
    primary CSR state only) and graphs drop their cached whole-graph
    snapshot on the wire.

    ``processes`` caps the pool size (default: one process per non-empty
    worker, capped by usable CPUs).  ``start_method`` defaults to
    ``"fork"`` where available — workers then share the parent's hash
    seed, though result equality does not depend on it: violation sets
    compare by value and step counts are enumeration-order independent.
    """

    name = "process"

    def __init__(
        self,
        processes: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise ValueError("need at least one process")
        self.processes = processes
        if start_method is None:
            # Prefer fork only on Linux: macOS lists it but its system
            # libraries are not fork-safe (intermittent aborts once the
            # parent has started threads), so elsewhere we take the
            # platform's default start method.
            if sys.platform == "linux":
                start_method = "fork"
            else:  # pragma: no cover - non-Linux
                start_method = multiprocessing.get_start_method()
        self.start_method = start_method

    def run(
        self,
        sigma: Sequence[GFD],
        graph: PropertyGraph,
        plan: Sequence[Sequence[WorkUnit]],
    ) -> List[List[Optional["UnitResult"]]]:
        """Execute every primary unit in worker processes.

        Returns per-worker result lists aligned with ``plan``: one
        :class:`~repro.parallel.engine.UnitResult` per primary unit,
        ``None`` per replica — the same shape :class:`SimulatedExecutor`
        produces.
        """
        primaries: List[List[WorkUnit]] = [
            [unit for unit in worker_units if unit.primary]
            for worker_units in plan
        ]
        busy = [w for w, units in enumerate(primaries) if units]
        results: Dict[int, List["UnitResult"]] = {}
        if busy:
            pool_size = min(
                self.processes or len(busy), len(busy), max(1, usable_cpus())
            )
            context = multiprocessing.get_context(self.start_method)
            with ProcessPoolExecutor(
                max_workers=pool_size, mp_context=context
            ) as pool:
                futures = {
                    worker: pool.submit(
                        _run_worker_units,
                        (sigma, worker_graph(graph, primaries[worker]),
                         primaries[worker]),
                    )
                    for worker in busy
                }
                for worker, future in futures.items():
                    results[worker] = future.result()
        aligned: List[List[Optional["UnitResult"]]] = []
        for worker, worker_units in enumerate(plan):
            worker_results = iter(results.get(worker, ()))
            aligned.append(
                [
                    next(worker_results) if unit.primary else None
                    for unit in worker_units
                ]
            )
        return aligned


def execute_plan(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    plan: Sequence[Sequence[WorkUnit]],
    executor: str = "simulated",
    processes: Optional[int] = None,
    materialiser: Optional["BlockMaterialiser"] = None,
) -> List[List[Optional["UnitResult"]]]:
    """Execute a plan's primary units with the chosen backend.

    The entry point :func:`~repro.parallel.engine.run_assignment` builds
    on: resolves ``executor`` (see :func:`resolve_executor`), runs every
    primary unit, and returns per-worker result lists aligned with
    ``plan`` (``None`` for replicas).  ``materialiser`` only applies to
    the simulated backend — worker processes always build their own
    shard-local materialiser.
    """
    resolved = resolve_executor(executor, plan, processes)
    if resolved == "simulated":
        backend = SimulatedExecutor(materialiser=materialiser)
    else:
        backend = MultiprocessExecutor(processes=processes)
    return backend.run(sigma, graph, plan)
