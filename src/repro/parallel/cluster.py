"""The simulated cluster: cost-accounted parallel execution.

The paper's experiments run on 4–20 Amazon EC2 instances; this module is
the documented substitution (DESIGN.md §1.3).  Every work unit is executed
*for real* — the matcher runs and real violations are produced — but the
unit's measured cost is charged to the worker it was assigned to, and the
reported *parallel time* is what the paper's figures plot:

    T  =  T_plan  +  max_i(comp_i)  +  T_comm,

where ``T_plan`` models the coordinator's estimation/partitioning work,
``comp_i`` accumulates the matching/loading cost of worker ``i``'s units,
and ``T_comm`` models data shipment (bytes over a shared-bandwidth
network, shipped in parallel per worker — which is why the paper observes
communication time to be insensitive to ``n``).

Costs are deterministic, derived from matcher step counts and data-block
sizes rather than wall clocks, so benchmark curves are reproducible on any
machine.  A ``threads`` backend is also provided to run a plan with real
concurrency.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence


@dataclass(frozen=True)
class CostModel:
    """Calibration constants for the simulated cluster.

    All times are in abstract "cost units"; only ratios matter for the
    reproduced figures.  Defaults are tuned so communication lands in the
    paper's observed 12–24% share of total time for ``disVal`` on the
    benchmark graphs.
    """

    #: cost per matcher search step (candidate extension attempted)
    step_cost: float = 1.0
    #: cost to load / scan one unit of data-block size at a worker
    load_cost: float = 0.25
    #: cost to estimate one unit of block size during workload estimation
    estimate_cost: float = 0.05
    #: coordinator cost per unit during partitioning (the n·|W| term)
    partition_unit_cost: float = 0.002
    #: network: cost per byte-equivalent of shipped data
    ship_cost: float = 0.2
    #: network: fixed cost per message exchanged
    message_cost: float = 2.0
    #: simultaneous transfers supported by the interconnect per worker
    bandwidth_share: float = 1.0


@dataclass
class WorkerState:
    """Per-processor accumulators."""

    index: int
    computation: float = 0.0
    shipped_bytes: float = 0.0
    messages: int = 0
    units: int = 0

    def charge(self, cost: float) -> None:
        """Add computation cost to this worker."""
        self.computation += cost

    def ship(self, size: float, messages: int = 1) -> None:
        """Record ``size`` byte-equivalents shipped to this worker."""
        self.shipped_bytes += size
        self.messages += messages


@dataclass
class ClusterReport:
    """What a validation run reports — the quantities Figures 5–8 plot."""

    n: int
    planning_time: float
    makespan: float
    communication_time: float
    total_computation: float
    total_shipped: float
    per_worker_computation: List[float]
    per_worker_shipped: List[float]
    units: int

    @property
    def parallel_time(self) -> float:
        """``T(|Σ|, |G|, n)`` — the headline measurement."""
        return self.planning_time + self.makespan + self.communication_time

    @property
    def communication_share(self) -> float:
        """Fraction of parallel time spent on communication."""
        total = self.parallel_time
        return self.communication_time / total if total else 0.0

    @property
    def balance(self) -> float:
        """Makespan over mean worker computation (1.0 = perfect balance)."""
        mean = (
            sum(self.per_worker_computation) / self.n
            if self.n and sum(self.per_worker_computation)
            else 0.0
        )
        return self.makespan / mean if mean else 1.0

    def speedup_against(self, sequential_cost: float) -> float:
        """Speedup relative to a sequential cost in the same units."""
        return sequential_cost / self.parallel_time if self.parallel_time else 0.0


class SimulatedCluster:
    """A coordinator plus ``n`` cost-accounted workers."""

    def __init__(self, n: int, cost_model: Optional[CostModel] = None) -> None:
        if n < 1:
            raise ValueError("need at least one worker")
        self.n = n
        self.cost = cost_model or CostModel()
        self.workers = [WorkerState(index=i) for i in range(n)]
        self.planning_time = 0.0

    # ------------------------------------------------------------------
    # coordinator-side accounting
    # ------------------------------------------------------------------
    def charge_planning(self, cost: float) -> None:
        """Account coordinator work (estimation splits, partitioning)."""
        self.planning_time += cost

    def charge_estimation(self, per_candidate_sizes: Sequence[float]) -> None:
        """Account workload estimation, balanced over the ``n`` workers.

        ``bPar``/``disPar`` split candidate enumeration across processors
        via m-balanced ranges; we model that as an even split of the total
        estimation cost, so estimation time falls as ``1/n``.
        """
        total = sum(per_candidate_sizes) * self.cost.estimate_cost
        self.planning_time += total / self.n

    def charge_partitioning(self, num_units: int) -> None:
        """The ``O(n·|W| + |W| log |W|)`` partitioning term (Prop. 12)."""
        w = max(1, num_units)
        self.planning_time += self.cost.partition_unit_cost * (
            self.n * w + w * math.log2(w + 1)
        )

    # ------------------------------------------------------------------
    # worker-side accounting
    # ------------------------------------------------------------------
    def charge_unit(
        self, worker: int, steps: int, block_size: float
    ) -> None:
        """Account one executed work unit at ``worker``."""
        state = self.workers[worker]
        state.charge(steps * self.cost.step_cost + block_size * self.cost.load_cost)
        state.units += 1

    def ship_to(self, worker: int, size: float, messages: int = 1) -> None:
        """Account data shipped *to* ``worker`` (prefetch or partial matches)."""
        self.workers[worker].ship(
            size * self.cost.ship_cost, messages
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> ClusterReport:
        """Aggregate the run into a :class:`ClusterReport`."""
        comp = [w.computation for w in self.workers]
        shipped = [w.shipped_bytes for w in self.workers]
        messages = sum(w.messages for w in self.workers)
        comm_time = (
            max(shipped) / self.cost.bandwidth_share if shipped else 0.0
        ) + messages * self.cost.message_cost / max(1, self.n)
        return ClusterReport(
            n=self.n,
            planning_time=self.planning_time,
            makespan=max(comp) if comp else 0.0,
            communication_time=comm_time,
            total_computation=sum(comp),
            total_shipped=sum(shipped),
            per_worker_computation=comp,
            per_worker_shipped=shipped,
            units=sum(w.units for w in self.workers),
        )


def run_concurrently(
    tasks_per_worker: Sequence[Sequence],
    execute: Callable,
    max_threads: Optional[int] = None,
) -> List[List]:
    """Run per-worker task lists with real threads (demo backend).

    Each worker's tasks run sequentially on its thread, workers run
    concurrently — the execution shape of the simulated plan.  Returns the
    per-worker result lists in worker order.
    """
    def run_worker(tasks: Sequence) -> List:
        return [execute(task) for task in tasks]

    workers = len(tasks_per_worker)
    with ThreadPoolExecutor(max_workers=max_threads or workers) as pool:
        futures = [pool.submit(run_worker, tasks) for tasks in tasks_per_worker]
        return [future.result() for future in futures]
