"""Fault tolerance for the execution plane: policy, stats, injection.

The paper's distributed model assumes workers answer; production assumes
they sometimes don't.  This module holds the three pieces the supervised
execution plane (``executors.py``) and the service applier
(``service.py``) share:

* :class:`FaultPolicy` — the knobs: how long a worker may stay silent
  (heartbeats), how long one unit may run (deadline), how often a failed
  batch is retried and with what backoff, and how far the pool may
  degrade before the run fails;
* :class:`FaultStats` — the mergeable telemetry slice surfaced on
  ``ShippingStats.faults`` (per process run) and ``ServiceStats.faults``
  (per service lifetime): crashes/stalls seen, respawns, units retried,
  slots degraded, heartbeat latencies;
* :class:`FaultPlan` — a *deterministic* fault-injection harness.  A
  plan names exactly which faults fire where ("crash pool worker 0
  before its unit 1", "delay worker 1's unit 0 by 0.3s", "drop worker
  0's reply", "die mid-shm-attach", "fail the applier at epoch 2"), so
  a test — or the whole CI differential matrix, via the
  ``REPRO_FAULT_PLAN`` environment variable — can replay identical
  faults on every run and pin the recovered outputs byte-identical to
  the fault-free ones.

Triggers are keyed by *pool-worker index* and *incarnation*: a respawned
worker (incarnation 1, 2, …) re-fires a trigger only while its
incarnation is below the trigger's count, so a single-shot crash cannot
respawn-loop forever and multi-shot crashes exercise the degrade path
deliberately.  Unit indices count units *started within one batch
message* (requeued batches restart the count, but the bumped incarnation
blocks the re-fire).  No wall clock or RNG participates anywhere — the
same plan over the same workload fires the same faults every time.

``REPRO_FAULT_PLAN`` holds the plan as JSON, e.g.::

    REPRO_FAULT_PLAN='{"crashes": [[0, 0, 1]]}'                 # crash once
    REPRO_FAULT_PLAN='{"delays": [[0, 0, 0.3]],
                       "policy": {"unit_deadline": 0.1,
                                  "heartbeat_interval": 0.02}}' # stall once

The optional ``"policy"`` object overrides :class:`FaultPolicy` defaults
for runs that did not pass an explicit policy — how CI tightens the
deadlines that make an injected delay an actual detected stall.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional, Set, Tuple

#: environment variable holding a JSON :class:`FaultPlan` spec
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: exit status of a plan-injected worker death (``os._exit`` — no
#: cleanup, no atexit: the closest python gets to a SIGKILL'd worker)
FAULT_EXIT = 73

#: a worker silent for this many heartbeat intervals is declared dead
#: even without a pipe EOF (wedged hard: its beat thread stopped too)
HEARTBEAT_MISS_LIMIT = 10

#: default worker heartbeat cadence (seconds)
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: default per-batch retry budget before the run fails
DEFAULT_MAX_RETRIES = 2

#: default base backoff (seconds) before a respawn+requeue; attempt ``k``
#: waits ``backoff * 2**(k-1)``
DEFAULT_BACKOFF = 0.05


def _entries(raw, name: str, width: int, pad) -> Tuple[tuple, ...]:
    """Normalise one plan trigger list from its JSON shape.

    Each entry may omit trailing elements; ``pad`` supplies defaults
    (e.g. a trigger count of 1).  Raises on malformed entries so a CI
    run with a broken ``REPRO_FAULT_PLAN`` fails loudly instead of
    silently injecting nothing.
    """
    out = []
    for entry in raw:
        entry = tuple(entry) if isinstance(entry, (list, tuple)) else (entry,)
        if not entry or len(entry) > width:
            raise ValueError(f"malformed fault-plan entry for {name!r}: {entry!r}")
        out.append(entry + pad[len(entry) - len(pad):] if len(entry) < width else entry)
    return tuple(out)


@dataclass
class FaultPlan:
    """A deterministic script of faults to inject (see module docstring).

    ``crashes`` — ``(worker, unit, incarnations)``: pool worker dies
    hard (``os._exit``) before starting that unit, for its first
    ``incarnations`` lives.  ``delays`` — ``(worker, unit, seconds)``:
    the unit is delayed (first incarnation only), which a
    ``unit_deadline`` turns into a detected stall.  ``drop_replies`` —
    ``(worker, incarnations)``: the worker finishes its batch but never
    replies (a wedged-after-work process).  ``die_mid_attach`` —
    ``(worker, incarnations)``: the worker dies immediately after
    attaching a shared-memory shard segment, before using it — the shm
    lifecycle's nastiest moment.  ``applier_failures`` — ``(epoch,
    times)``: the service applier raises before applying the batch that
    would become that epoch, ``times`` times.  ``policy`` — field
    overrides applied to the default :class:`FaultPolicy` when the env
    plan is active and no explicit policy was passed.
    """

    crashes: Tuple[Tuple[int, int, int], ...] = ()
    delays: Tuple[Tuple[int, int, float], ...] = ()
    drop_replies: Tuple[Tuple[int, int], ...] = ()
    die_mid_attach: Tuple[Tuple[int, int], ...] = ()
    applier_failures: Tuple[Tuple[int, int], ...] = ()
    policy: Dict[str, object] = field(default_factory=dict)

    #: JSON keys accepted by :meth:`from_spec`
    KEYS = (
        "crashes", "delays", "drop_replies", "die_mid_attach",
        "applier_failures", "policy",
    )

    @property
    def empty(self) -> bool:
        """Whether this plan injects nothing at all."""
        return not (
            self.crashes or self.delays or self.drop_replies
            or self.die_mid_attach or self.applier_failures
        )

    @property
    def worker_empty(self) -> bool:
        """Whether this plan injects nothing *worker-side* (applier only)."""
        return not (
            self.crashes or self.delays or self.drop_replies
            or self.die_mid_attach
        )

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse a JSON plan spec (the ``REPRO_FAULT_PLAN`` format)."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = set(raw) - set(cls.KEYS)
        if unknown:
            raise ValueError(
                f"unknown fault-plan key(s) {sorted(unknown)}; "
                f"expected a subset of {list(cls.KEYS)}"
            )
        policy = raw.get("policy", {})
        if not isinstance(policy, dict):
            raise ValueError("fault-plan 'policy' must be an object")
        known = {f.name for f in fields(FaultPolicy)} - {"plan"}
        bad = set(policy) - known
        if bad:
            raise ValueError(
                f"unknown fault-policy override(s) {sorted(bad)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(
            crashes=_entries(raw.get("crashes", ()), "crashes", 3, (0, 0, 1)),
            delays=_entries(raw.get("delays", ()), "delays", 3, (0, 0, 0.0)),
            drop_replies=_entries(
                raw.get("drop_replies", ()), "drop_replies", 2, (0, 1)
            ),
            die_mid_attach=_entries(
                raw.get("die_mid_attach", ()), "die_mid_attach", 2, (0, 1)
            ),
            applier_failures=_entries(
                raw.get("applier_failures", ()), "applier_failures", 2, (0, 1)
            ),
            policy=dict(policy),
        )

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULT_PLAN``, or ``None`` when unset."""
        text = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not text:
            return None
        return cls.from_spec(text)


@dataclass
class FaultPolicy:
    """Supervision knobs for the fault-tolerant execution plane.

    ``max_retries`` bounds how often one failed batch (or one failed
    applier apply) is retried before the run/service fails for real;
    ``backoff`` is the base of the exponential pre-retry wait.
    ``heartbeat_interval`` is the cadence at which a persistent worker's
    beat thread signals liveness; a worker silent for
    :data:`HEARTBEAT_MISS_LIMIT` intervals is declared dead even
    without a pipe EOF.  ``unit_deadline`` (seconds, ``None`` = off)
    declares a worker stalled when its per-batch unit progress stops
    advancing for that long — the per-unit deadline; detection
    granularity is the heartbeat cadence, so keep
    ``heartbeat_interval < unit_deadline``.  ``degrade_floor`` is the
    minimum number of live pool slots: when respawning a slot fails
    repeatedly its work is rerouted to surviving slots, until fewer
    than the floor remain.  ``plan`` optionally embeds a
    :class:`FaultPlan` (tests); when absent, ``REPRO_FAULT_PLAN``
    supplies one (CI).
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    backoff: float = DEFAULT_BACKOFF
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    unit_deadline: Optional[float] = None
    degrade_floor: int = 1
    plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.unit_deadline is not None and self.unit_deadline <= 0:
            raise ValueError("unit_deadline must be > 0 (or None)")
        if self.degrade_floor < 1:
            raise ValueError("degrade_floor must be >= 1")

    @property
    def stall_timeout(self) -> float:
        """Silence past this (seconds) means the worker is gone."""
        return HEARTBEAT_MISS_LIMIT * self.heartbeat_interval

    def retry_wait(self, attempt: int) -> float:
        """The exponential-backoff wait before retry ``attempt`` (≥ 1)."""
        return self.backoff * (2 ** max(0, attempt - 1))


def resolve_fault_policy(policy: Optional[FaultPolicy]) -> FaultPolicy:
    """The effective policy: explicit, or defaults + the env plan.

    An explicit ``policy`` wins outright (its ``plan`` may still be
    filled from the environment when it has none); with no explicit
    policy the defaults apply, overridden by the env plan's ``policy``
    object — that is how CI tightens deadlines without touching code.
    """
    env_plan = FaultPlan.from_env()
    if policy is None:
        policy = FaultPolicy()
        if env_plan is not None and env_plan.policy:
            policy = replace(policy, **env_plan.policy)
    if policy.plan is None and env_plan is not None:
        policy = replace(policy, plan=env_plan)
    return policy


@dataclass
class FaultStats:
    """One run's (or one service lifetime's) fault-handling activity.

    ``crashes`` counts worker deaths detected (pipe EOF, injected
    exits, OOM kills — and, on the service, applier exceptions);
    ``stalls`` counts missed-heartbeat / unit-deadline overruns that got
    the worker killed; ``worker_errors`` counts structured ``"err"``
    replies absorbed by retry.  ``respawns`` counts replacement workers
    forked (applier restarts, on the service), ``retried_units`` the
    work units (ops, on the service) requeued after a fault, and
    ``degraded_slots`` the pool slots retired after respawn kept
    failing.  ``heartbeats`` / ``heartbeat_latency_*`` record the
    liveness channel: latency is send-to-receive per beat (coordinator
    and workers share ``CLOCK_MONOTONIC`` on Linux).

    The differential fault suite uses this as its proof obligation:
    a recovered run must both *match the fault-free run byte-identically*
    and show ``faulted`` here — otherwise the injection silently
    missed and the pin proves nothing.
    """

    crashes: int = 0
    stalls: int = 0
    worker_errors: int = 0
    respawns: int = 0
    retried_units: int = 0
    degraded_slots: int = 0
    heartbeats: int = 0
    heartbeat_latency_sum: float = 0.0
    heartbeat_latency_max: float = 0.0

    @property
    def faulted(self) -> bool:
        """Whether any fault actually fired during the run."""
        return bool(self.crashes or self.stalls or self.worker_errors)

    @property
    def heartbeat_latency_mean(self) -> float:
        """Mean beat latency in seconds (0.0 before the first beat)."""
        if not self.heartbeats:
            return 0.0
        return self.heartbeat_latency_sum / self.heartbeats

    def record_heartbeat(self, latency: float) -> None:
        """Fold one observed beat latency in (clamped at >= 0)."""
        latency = max(0.0, latency)
        self.heartbeats += 1
        self.heartbeat_latency_sum += latency
        self.heartbeat_latency_max = max(self.heartbeat_latency_max, latency)

    def merge(self, other: "FaultStats") -> "FaultStats":
        self.crashes += other.crashes
        self.stalls += other.stalls
        self.worker_errors += other.worker_errors
        self.respawns += other.respawns
        self.retried_units += other.retried_units
        self.degraded_slots += other.degraded_slots
        self.heartbeats += other.heartbeats
        self.heartbeat_latency_sum += other.heartbeat_latency_sum
        self.heartbeat_latency_max = max(
            self.heartbeat_latency_max, other.heartbeat_latency_max
        )
        return self


class WorkerFaultContext:
    """A worker process's compiled view of the plan's triggers for it.

    Built per batch message from ``(plan, worker index, incarnation)``;
    the executor's slot runner consults it before every unit and after
    every shm attach.  All lookups are O(1) and allocation-free so a
    fault-free batch pays nothing measurable.
    """

    __slots__ = ("_crash_units", "_delays", "_mid_attach", "_drop", "_started")

    def __init__(
        self, plan: Optional[FaultPlan], worker: int, incarnation: int
    ) -> None:
        self._started = 0
        self._crash_units: Set[int] = set()
        self._delays: Dict[int, float] = {}
        self._mid_attach = False
        self._drop = False
        if plan is None:
            return
        for w, unit, lives in plan.crashes:
            if w == worker and incarnation < lives:
                self._crash_units.add(unit)
        if incarnation == 0:
            for w, unit, seconds in plan.delays:
                if w == worker:
                    self._delays[unit] = float(seconds)
        self._mid_attach = any(
            w == worker and incarnation < lives
            for w, lives in plan.die_mid_attach
        )
        self._drop = any(
            w == worker and incarnation < lives
            for w, lives in plan.drop_replies
        )

    def before_unit(self) -> None:
        """Fire any crash/delay trigger scheduled before the next unit."""
        unit = self._started
        self._started += 1
        if unit in self._crash_units:
            os._exit(FAULT_EXIT)
        delay = self._delays.get(unit)
        if delay:
            time.sleep(delay)

    def after_attach(self) -> None:
        """Fire the mid-shm-attach death, if scheduled."""
        if self._mid_attach:
            os._exit(FAULT_EXIT)

    @property
    def drop_reply(self) -> bool:
        """Whether this worker should swallow its batch reply."""
        return self._drop


__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_EXIT",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "HEARTBEAT_MISS_LIMIT",
    "FaultPlan",
    "FaultPolicy",
    "FaultStats",
    "WorkerFaultContext",
    "resolve_fault_policy",
]
