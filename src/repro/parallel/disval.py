"""``disVal``: parallel error detection over a fragmented graph (§6.2).

When ``G`` is partitioned across processors, validation becomes a
bi-criteria problem: balance the workload *and* minimise the data shipped
to assemble data blocks that straddle fragments.  The algorithm:

1. ``disPar`` — each fragment estimates its partial work units (local
   candidates, local block shares, border nodes); the coordinator
   assembles complete units and solves the bi-criteria assignment with
   the greedy 2-approximation (Proposition 13);
2. ``dlovalVio`` — each processor detects violations for its units,
   choosing per unit between *prefetching* (ship the missing block share)
   and *partial detection* (ship partial matches, sized via graph
   simulation on the locally-resident share), whichever is estimated
   cheaper;
3. the coordinator unions the per-processor violation sets.

Variants: ``disran`` (random assignment) and ``disnop`` (no multi-query
sharing / no splitting).  Parallel time follows Theorem 11.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from ..graph.partition import Fragmentation
from ..graph.simulation import graph_simulation
from ..core.gfd import GFD
from .cluster import CostModel, SimulatedCluster
from .engine import BlockMaterialiser, ValidationRun
from .workload import WorkUnit

#: cap on the per-fragment partial-match volume considered shippable
PARTIAL_MATCH_CAP = 10_000


def dis_val(
    sigma: Sequence[GFD],
    fragmentation: Fragmentation,
    cost_model: Optional[CostModel] = None,
    assignment: str = "bicriteria",
    optimize: bool = True,
    split_threshold: Optional[int] = None,
    seed: int = 0,
    executor: str = "simulated",
    processes: Optional[int] = None,
    ship_mode: str = "auto",
) -> ValidationRun:
    """Compute ``Vio(Σ, G)`` over a fragmented graph.

    ``assignment`` ∈ {``"bicriteria"`` (the paper's disPar),
    ``"random"`` (disran), ``"balance_only"`` (ablation: ignore
    communication)}.  ``optimize=False`` gives ``disnop``.  ``executor``
    selects the execution backend (``"simulated"``/``"process"``/
    ``"auto"``); with ``"process"`` each worker process receives and
    indexes only its shard — the resident share of its assigned blocks —
    mirroring ``dlovalVio``'s locally-available data after prefetching
    (see :mod:`repro.parallel.executors`); ``ship_mode`` picks how those
    shards travel (``"pickle"``/``"shm"``/``"auto"`` — the shard plane).

    This is a thin facade over the session layer: each call constructs a
    throwaway (non-persistent) :class:`~repro.session.ValidationSession`
    and runs one fragmented validation — identical results, no state
    kept.  Repeated validation over the *same* fragmentation should hold
    a session instead: its workers then keep their resident shares and
    only block-share deltas are shipped.
    """
    from ..session import ValidationSession

    with ValidationSession(
        fragmentation.graph,
        sigma,
        executor=executor,
        processes=processes,
        cost_model=cost_model,
        persistent=False,
        ship_mode=ship_mode,
    ) as session:
        return session.validate(
            fragmentation=fragmentation,
            assignment=assignment,
            optimize=optimize,
            split_threshold=split_threshold,
            seed=seed,
        )


def _charge_data_shipment(
    sigma: Sequence[GFD],
    fragmentation: Fragmentation,
    plan: Sequence[Sequence[WorkUnit]],
    cluster: SimulatedCluster,
    materialiser: BlockMaterialiser,
) -> None:
    """Account per-unit communication, choosing the cheaper scheme.

    *Prefetching* ships the block share missing from the worker's fragment
    (block nodes already fetched by earlier units on the same worker are
    free).  *Partial detection* ships partial matches instead, estimated
    via graph simulation of the leader pattern over the locally-resident
    part of the block.  ``dlovalVio`` picks the cheaper per unit.
    """
    for worker, worker_units in enumerate(plan):
        resident: Set = set()
        for unit in worker_units:
            missing = unit.missing_size(worker)
            if missing <= 0:
                resident |= unit.block_nodes
                continue
            new_nodes = (
                unit.block_nodes
                if not resident
                else unit.block_nodes - resident
            )
            prefetch_cost = (
                missing * (len(new_nodes) / len(unit.block_nodes))
                if unit.block_nodes
                else 0.0
            )
            partial_cost = _partial_match_cost(
                sigma, fragmentation, unit, worker, materialiser
            )
            shipped = min(prefetch_cost, partial_cost) * unit.cost_share
            if shipped > 0:
                cluster.ship_to(worker, size=shipped, messages=1)
            resident |= unit.block_nodes
        # disPar metadata: one message per unit carrying ⟨v_z̄, |G_z̄|, B_z̄⟩.
        if worker_units:
            cluster.workers[worker].messages += 1


def _partial_match_cost(
    sigma: Sequence[GFD],
    fragmentation: Fragmentation,
    unit: WorkUnit,
    worker: int,
    materialiser: BlockMaterialiser,
) -> float:
    """Estimated bytes to ship partial matches instead of block data.

    Graph simulation of the leader pattern over the (whole) data block
    over-approximates which nodes can participate in any match; the
    foreign-owned portion of the simulation images is what the other
    fragments would ship as partial matches (one entry per node per
    pattern role).  Nodes outside every image can never join a match, so
    not shipping them is sound.
    """
    leader = sigma[unit.group.leader_index]
    owner = fragmentation.owner
    if all(owner[node] == worker for node in unit.block_nodes):
        return 0.0
    block = materialiser.block(unit.block_nodes)
    sim = graph_simulation(leader.pattern, block)
    volume = 0
    for image in sim.values():
        volume += sum(1 for node in image if owner[node] != worker)
        if volume >= PARTIAL_MATCH_CAP:
            return float(PARTIAL_MATCH_CAP)
    return float(volume)


def dis_ran(
    sigma: Sequence[GFD], fragmentation: Fragmentation, **kwargs
) -> ValidationRun:
    """The ``disran`` baseline: random assignment, optimisations on."""
    return dis_val(sigma, fragmentation, assignment="random", **kwargs)


def dis_nop(
    sigma: Sequence[GFD], fragmentation: Fragmentation, **kwargs
) -> ValidationRun:
    """The ``disnop`` baseline: bi-criteria assignment, optimisations off."""
    return dis_val(sigma, fragmentation, optimize=False, **kwargs)
