"""Workload reduction via implication (Appendix).

"Given a set Σ of GFDs, if Σ \\ {φ} ⊨ φ, we can safely remove φ from Σ
without impacting Vio(Σ, G)" — in the sense that ``G ⊨ Σ`` iff ``G ⊨ Σ'``
for the reduced Σ′ (a graph violating the removed φ necessarily violates
the rest).  Note the *reported* violation set shrinks: the removed GFD's
matches are no longer enumerated, which is exactly the point (less work).

Because that changes the reported set, reduction is opt-in for the
validation algorithms (the benchmarked repVal/disVal keep the rule set
fixed so all variants produce identical ``Vio``); pipelines that only care
about ``G ⊨ Σ`` call :func:`reduce_rules` up front.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.gfd import GFD
from ..core.implication import minimal_cover


def reduce_rules(sigma: Sequence[GFD]) -> Tuple[List[GFD], List[GFD]]:
    """Drop GFDs implied by the rest; returns ``(kept, removed)``.

    Implication checking is NP-complete (Theorem 5) but the patterns of
    real rule sets are small; the Appendix recommends this preprocessing
    when patterns are trees (PTIME, Corollary 8) or Σ is moderate.
    """
    kept = minimal_cover(sigma)
    kept_ids = {id(gfd) for gfd in kept}
    removed = [gfd for gfd in sigma if id(gfd) not in kept_ids]
    return kept, removed


def reduction_ratio(sigma: Sequence[GFD]) -> float:
    """Fraction of rules removable by implication (for reporting)."""
    if not sigma:
        return 0.0
    kept, removed = reduce_rules(sigma)
    return len(removed) / len(sigma)
