"""Shared execution machinery for ``repVal`` and ``disVal``.

Executes assigned work units for real (local error detection, Section 6.1
``localVio`` / Section 6.2 ``dlovalVio``), charging measured costs to the
simulated cluster.  Detection inside a unit:

1. materialise the data block ``G_z̄`` (induced subgraph of the block's
   node set);
2. for every pivot-variable permutation of the candidate tuple within its
   symmetry classes (re-expanding Example 10's deduplication), enumerate
   matches of the group leader's pattern pinned to the pivot candidate;
3. evaluate every group member's dependency on each match; collect
   violations under the member's own GFD name and variables.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executors import (
        MatchStore,
        MultiprocessExecutor,
        ShardCache,
        ShippingStats,
    )
    from .faults import FaultPolicy

from ..graph.graph import NodeId, PropertyGraph
from ..matching.locality import candidate_permutations
from ..matching.vf2 import _NO_MATCH, MatchStats, SubgraphMatcher
from ..core.discovery import EvidenceAggregate, match_items_key
from ..core.gfd import GFD
from ..core.satisfaction import match_satisfies_all
from ..core.validation import Violation, det_vio, make_violation
from .cluster import ClusterReport, CostModel, SimulatedCluster
from .workload import WorkUnit

#: partial matches are far denser than raw block data: a replica of a
#: split unit ships roughly this fraction of its block-size equivalent.
PARTIAL_MATCH_SHIP_FACTOR = 0.25


@dataclass
class UnitResult:
    """Outcome of executing one work unit.

    ``violations`` is populated by ``detect`` units; mining units leave
    it empty and return their data — matches or dependency tallies — in
    ``payload`` (a value-comparable tuple, so results stay identical
    across execution backends).  ``steps`` counts full-enumeration
    extensions for every kind.  ``enumerated`` records whether a VF2
    enumeration actually ran for this unit — ``False`` for match-store
    replays and factorised evaluation; the session surfaces the per-
    phase sum as :attr:`repro.session.DiscoveryPhase.vf2_units`.
    """

    violations: Set[Violation]
    steps: int
    block_size: int
    payload: Optional[tuple] = None
    enumerated: bool = False


@dataclass
class MaterialiserStats:
    """One run's share of a :class:`BlockMaterialiser`'s activity.

    A session shares one materialiser across ``validate()`` calls, so the
    cumulative counters on the materialiser itself span runs; this is the
    per-run slice (taken via :meth:`BlockMaterialiser.take_stats`) that
    keeps cluster reports comparable between warm and cold runs.

    ``patched`` counts cached blocks updated *in place* by
    :meth:`BlockMaterialiser.apply_ops` — the targeted-invalidation path
    that replaced wholesale clears under ``session.update()`` — one
    count per (op, affected block) pair.  A warm cache absorbing an
    update stream shows ``patched > 0`` with ``builds == 0``.
    """

    builds: int = 0
    hits: int = 0
    evictions: int = 0
    patched: int = 0

    def merge(self, other: "MaterialiserStats") -> "MaterialiserStats":
        """Fold another slice in (worker replies aggregate per run)."""
        self.builds += other.builds
        self.hits += other.hits
        self.evictions += other.evictions
        self.patched += other.patched
        return self


@dataclass
class ValidationRun:
    """The result of a parallel validation: ``Vio(Σ, G)`` plus the costs.

    ``report.parallel_time`` is the quantity the paper's figures plot;
    ``violations`` is exact (every unit is executed for real).
    ``executor`` records which execution backend actually ran the units —
    ``"simulated"`` (serial, cost-accounted) or ``"process"`` (real
    worker processes); both produce identical violations and reports
    (see :mod:`repro.parallel.executors`).  Session-produced runs carry
    two extras: ``shipping`` (what the process pool shipped — zero on a
    fully warm run) and ``cache`` (this run's block-materialiser
    activity).
    """

    violations: Set[Violation]
    report: ClusterReport
    num_units: int
    algorithm: str
    executor: str = "simulated"
    shipping: Optional["ShippingStats"] = None
    cache: Optional[MaterialiserStats] = None

    @property
    def parallel_time(self) -> float:
        """Convenience alias for ``report.parallel_time``."""
        return self.report.parallel_time


#: total block size (``|V| + |E|``, the paper's measure) retained per run:
#: bounds BlockMaterialiser's peak memory at O(budget) instead of
#: O(sum of all distinct blocks), while the typical repVal/disVal run —
#: many small, heavily-shared pivot blocks — stays fully cached.
BLOCK_CACHE_BUDGET = 200_000


class BlockMaterialiser:
    """Per-run size-bounded LRU cache of data blocks and their matchers.

    Symmetric pivot candidates and split units repeatedly name the same
    ``G_z̄``; materialising a block therefore builds its induced subgraph
    and its :class:`GraphSnapshot` once per distinct node set (within the
    cache budget), and one indexed matcher per ``(leader pattern, block)``
    — instead of re-deriving adjacency structure and candidate sets per
    work unit.  Least-recently-used blocks are evicted once the summed
    block size exceeds :data:`BLOCK_CACHE_BUDGET`, so peak memory is
    bounded by the budget, not by the number of distinct blocks in the
    run (an evicted block is simply rebuilt on its next use).

    Concurrency semantics (the coordinator path): one materialiser may be
    shared by concurrently running workers (e.g. the thread-backed
    :func:`~repro.parallel.cluster.run_concurrently` demo).  All cache
    state — the LRU order, the retained-size accounting against the
    single shared budget, and the per-block matcher tables — is guarded
    by one reentrant lock, and a block or matcher is *built while holding
    it*: two workers requesting the same block serialise on the lock and
    the second finds the first's entry, so no duplicate snapshot builds
    occur and ``retained`` never drifts from the cache contents.  Builds
    of *distinct* blocks therefore also serialise — acceptable on the
    coordinator path, where the alternative (duplicate builds racing into
    a shared budget) costs more than it saves.  Worker *processes* never
    share a materialiser; each builds its own over its shard
    (:mod:`repro.parallel.executors`).  ``builds`` counts the block
    materialisations actually performed (cache-miss builds, including
    rebuilds after eviction); tests use it to pin the no-duplicates
    guarantee.
    """

    def __init__(
        self, graph: PropertyGraph, budget: int = BLOCK_CACHE_BUDGET
    ) -> None:
        self.graph = graph
        self.budget = budget
        #: number of block materialisations performed (cache misses),
        #: cumulative over the materialiser's lifetime
        self.builds = 0
        #: cumulative cache hits / LRU evictions
        self.hits = 0
        self.evictions = 0
        #: cumulative in-place block patches (see :meth:`apply_ops`)
        self.patched = 0
        self._retained = 0  #: guarded-by: _lock
        self._lock = threading.RLock()
        self._run_stats = MaterialiserStats()  #: guarded-by: _lock
        #: guarded-by: _lock
        self._cache: "OrderedDict[FrozenSet[NodeId], Tuple[PropertyGraph, Dict[object, SubgraphMatcher]]]" = (
            OrderedDict()
        )

    def take_stats(self) -> MaterialiserStats:
        """Return and reset the *per-run* counters.

        A materialiser shared across session runs keeps its cumulative
        ``builds``/``hits``/``evictions``, but each ``validate()`` call
        must report only its own slice — otherwise a shared cache makes
        later runs' cluster reports look progressively worse.  Call once
        at the end of each run.
        """
        with self._lock:
            stats = self._run_stats
            self._run_stats = MaterialiserStats()
            return stats

    def clear(self) -> None:
        """Drop every cached block/matcher (after graph mutations)."""
        with self._lock:
            self._cache.clear()
            self._retained = 0

    def drop_matchers(self) -> None:
        """Drop cached matchers but keep blocks and their snapshots warm.

        Used when the rule set driving a warm shard changes (a session's
        discovery phases swap probe/mined Σ in and out): block structure
        is untouched, so the expensive part of the cache survives, while
        matchers — compiled per pattern — are rebuilt on demand.  Matcher
        entries are keyed by pattern (not by Σ-index), so this is purely
        a memory-hygiene measure: a stale Σ's matchers can never be
        *mis*used, only linger.
        """
        with self._lock:
            for _, matchers in self._cache.values():
                matchers.clear()

    def apply_ops(self, ops: "Sequence[tuple]") -> int:
        """Patch cached blocks in place for a batch of graph update ops.

        A cached block is the induced subgraph over a *fixed* node set,
        so an op affects it iff it happens inside that set: an attribute
        write iff the node is a member, an edge change iff **both**
        endpoints are members, a node (re-)insertion iff the node is a
        member (a genuinely new node cannot be — no existing key
        contains it).  Affected blocks are patched in place — their
        delta-maintained snapshots follow via ``apply_delta`` — and only
        *their* matchers are dropped, and only on structural ops
        (matcher candidate sets depend on labels and structure, never on
        attribute values).  Every unaffected block, snapshot and matcher
        stays warm: this is what keeps a warm cache O(|Δ|) under update
        streams instead of the old wholesale :meth:`clear`.

        Ops use the ``session.update()`` tuple format.  Returns the
        number of (op, block) patches applied; the same count lands in
        the cumulative ``patched`` counter and the per-run stats slice.
        """
        patched = 0
        with self._lock:
            for key, (block, matchers) in self._cache.items():
                for op in ops:
                    kind = op[0]
                    if kind == "attr":
                        if op[1] not in key:
                            continue
                        block.set_attr(op[1], op[2], op[3])
                    elif kind in ("edge+", "edge-"):
                        if op[1] not in key or op[2] not in key:
                            continue
                        before = block.size
                        if kind == "edge+":
                            block.add_edge(op[1], op[2], op[3])
                        else:
                            block.remove_edge(op[1], op[2], op[3])
                        self._retained += block.size - before
                        matchers.clear()
                    elif kind == "node":
                        if op[1] not in key:
                            continue
                        block.add_node(
                            op[1], op[2], dict(op[3]) if op[3] else None
                        )
                        matchers.clear()
                    else:
                        raise ValueError(f"unknown update kind {kind!r}")
                    patched += 1
            self.patched += patched
            self._run_stats.patched += patched
            while self._retained > self.budget and len(self._cache) > 1:
                _, (evicted, _) = self._cache.popitem(last=False)
                self._retained -= evicted.size
                self.evictions += 1
                self._run_stats.evictions += 1
        return patched

    def _entry(
        self, block_nodes: Set[NodeId]
    ) -> Tuple[PropertyGraph, Dict[object, SubgraphMatcher]]:
        key = frozenset(block_nodes)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self.hits += 1
                self._run_stats.hits += 1
                return entry
            block = self.graph.induced_subgraph(block_nodes)
            block.snapshot()  # one snapshot per materialised block
            entry = (block, {})
            self._cache[key] = entry
            self.builds += 1
            self._run_stats.builds += 1
            self._retained += block.size
            while self._retained > self.budget and len(self._cache) > 1:
                _, (evicted, _) = self._cache.popitem(last=False)
                self._retained -= evicted.size
                self.evictions += 1
                self._run_stats.evictions += 1
            return entry

    def block(self, block_nodes: Set[NodeId]) -> PropertyGraph:
        """The induced subgraph for ``block_nodes`` (cached, snapshot warm)."""
        return self._entry(block_nodes)[0]

    def matcher(
        self, sigma: Sequence[GFD], leader_index: int, block_nodes: Set[NodeId]
    ) -> Tuple[PropertyGraph, SubgraphMatcher]:
        """The block plus the leader pattern's matcher over it (cached).

        Matchers are keyed by the leader *pattern* (content-hashed via
        its signature), not by its index into ``sigma`` — a materialiser
        shared across rule sets (a session's base Σ, discovery probes,
        mined Σ) therefore never serves a matcher compiled for a
        different pattern, and identical patterns across rule sets share
        one compiled matcher per block.
        """
        block, matchers = self._entry(block_nodes)
        pattern = sigma[leader_index].pattern
        with self._lock:
            matcher = matchers.get(pattern)
            if matcher is None:
                matcher = SubgraphMatcher(pattern, block)
                matchers[pattern] = matcher
        return block, matcher


def execute_unit(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    unit: WorkUnit,
    materialiser: Optional[BlockMaterialiser] = None,
    match_store: Optional["MatchStore"] = None,
) -> UnitResult:
    """Execute one (primary) work unit per its :attr:`WorkUnit.kind`.

    All kinds share the same locality machinery — materialise the block,
    re-expand the pivot candidate's symmetry permutations, enumerate the
    leader pattern's pinned matches — and differ only in what they do
    per match: ``detect`` evaluates member dependencies into violations,
    ``mine`` folds or returns the matches, ``count`` tallies proposed
    dependencies (see :mod:`repro.core.discovery`).

    ``match_store`` (a :class:`~repro.parallel.executors.MatchStore`)
    short-circuits the enumeration itself: ``mine`` units deposit their
    enumerated matches, and any later unit naming the same ``(leader
    pattern, pivot candidate, block)`` — discovery's ``count`` and
    ``confirm`` phases over an unchanged shard — *replays* the resident
    matches instead of re-running VF2.  Replayed units charge the
    entry's recorded ``steps``, which equals what a fresh enumeration
    would measure (step counts are enumeration-order-free), so results
    and cost reports are replay-invariant; an evicted or never-stored
    entry transparently falls back to enumeration.
    """
    if materialiser is None:
        materialiser = BlockMaterialiser(graph)
    if unit.kind == "detect":
        return _execute_detect(sigma, unit, materialiser, match_store)
    if unit.kind == "mine":
        return _execute_mine(sigma, unit, materialiser, match_store)
    if unit.kind == "count":
        return _execute_count(sigma, unit, materialiser, match_store)
    raise ValueError(f"unknown work-unit kind {unit.kind!r}")


def _pinned_matches(sigma, unit, materialiser, stats):
    """Pivoted leader-pattern matches of a unit (symmetry re-expanded)."""
    block, matcher = materialiser.matcher(
        sigma, unit.group.leader_index, unit.block_nodes
    )
    leader = sigma[unit.group.leader_index]

    def generate():
        for pinned in candidate_permutations(
            leader.pattern, leader.pivot, unit.pivot_assignment
        ):
            yield from matcher.matches(fixed=pinned, stats=stats)

    return block, generate()


def _store_key(sigma: Sequence[GFD], unit: WorkUnit) -> tuple:
    """A unit's enumeration identity: (leader pattern, pivot, block).

    Keyed by pattern *content* (signature hash), not by Σ-index — the
    same triple enumerates the same match set whichever rule set is
    live, so a hit is always semantically safe across discovery's
    probe/mined Σ swaps.
    """
    return (
        sigma[unit.group.leader_index].pattern,
        unit.assignment,
        unit.block_nodes,
    )


def _replayed(sigma, unit, materialiser, match_store):
    """The unit's resident ``(steps, match items, block)``, if stored."""
    if match_store is None:
        return None
    stored = match_store.get(_store_key(sigma, unit))
    if stored is None:
        return None
    steps, items = stored
    return steps, items, materialiser.block(unit.block_nodes)


def _execute_detect(
    sigma: Sequence[GFD],
    unit: WorkUnit,
    materialiser: BlockMaterialiser,
    match_store: Optional["MatchStore"] = None,
) -> UnitResult:
    """Local error detection (the original unit semantics).

    With a match store, a unit whose enumeration is resident (discovery's
    ``confirm`` phase re-skins mining units as ``detect``) replays it —
    the mined-Σ validation pass then runs zero VF2 on warm blocks.
    """
    replay = _replayed(sigma, unit, materialiser, match_store)
    if replay is not None:
        steps, items, block = replay
        matches = (dict(match_items) for match_items in items)
    else:
        stats = MatchStats()
        block, matches = _pinned_matches(sigma, unit, materialiser, stats)
    violations: Set[Violation] = set()
    for match in matches:
        for member in unit.group.members:
            if not match_satisfies_all(block, match, member.lhs):
                continue
            if match_satisfies_all(block, match, member.rhs):
                continue
            member_gfd = sigma[member.index]
            member_match = {
                member.iso[var]: node for var, node in match.items()
            }
            violations.add(make_violation(member_gfd, member_match))
    return UnitResult(
        violations=violations,
        steps=steps if replay is not None else stats.steps,
        block_size=unit.block_size,
        enumerated=replay is None,
    )


def _factorised_mine(
    sigma: Sequence[GFD],
    unit: WorkUnit,
    materialiser: BlockMaterialiser,
    strict: bool,
) -> Optional[UnitResult]:
    """The aggregate mine result by factorised evaluation, if possible.

    Sums the leader pattern's evidence over the unit's re-expanded pivot
    permutations straight off the block's factorised plan — no VF2, and
    nothing deposited in the match store (there are no matches to
    retain; later phases on the factorised path don't replay either).
    Returns ``None`` when the pattern does not factorise on this block
    (``strict`` raises instead — the ``eval_mode="factorised"``
    contract).
    """
    block, matcher = materialiser.matcher(
        sigma, unit.group.leader_index, unit.block_nodes
    )
    plan = matcher.factorised_plan()
    if plan is None:
        if strict:
            raise ValueError(
                "eval_mode='factorised' but the unit's leader pattern "
                "does not factorise"
            )
        return None
    leader = sigma[unit.group.leader_index]
    stats = MatchStats()
    count = 0
    aggregate = EvidenceAggregate()
    for pinned in candidate_permutations(
        leader.pattern, leader.pivot, unit.pivot_assignment
    ):
        restrict = matcher._pin_indices(pinned)
        if restrict is _NO_MATCH:
            continue
        pin_count, pin_aggregate = plan.evidence(block, restrict, stats=stats)
        count += pin_count
        aggregate.merge(pin_aggregate)
    return UnitResult(
        violations=set(),
        steps=stats.steps,
        block_size=unit.block_size,
        payload=("agg", count, aggregate.to_payload()),
    )


def _factorised_count(
    sigma: Sequence[GFD],
    unit: WorkUnit,
    materialiser: BlockMaterialiser,
    member_deps,
    strict: bool,
) -> Optional[UnitResult]:
    """The count-unit tallies by factorised evaluation, if possible.

    Falls back (``None``) as one whole unit — pattern not factorisable,
    a member candidate spanning more than two variables, or unhashable
    attribute values — so the enumeration fallback stays a single
    shared VF2 walk over all members, exactly as before.
    """
    block, matcher = materialiser.matcher(
        sigma, unit.group.leader_index, unit.block_nodes
    )
    plan = matcher.factorised_plan()
    if plan is None or not all(
        plan.supports_tallies(deps) for deps in member_deps
    ):
        if strict:
            raise ValueError(
                "eval_mode='factorised' but the unit does not factorise "
                "(cyclic pattern or unsupported dependency forms)"
            )
        return None
    leader = sigma[unit.group.leader_index]
    stats = MatchStats()
    counts = [[[0, 0] for _ in deps] for deps in member_deps]
    for pinned in candidate_permutations(
        leader.pattern, leader.pivot, unit.pivot_assignment
    ):
        restrict = matcher._pin_indices(pinned)
        if restrict is _NO_MATCH:
            continue
        for member_pos, deps in enumerate(member_deps):
            tallies = plan.dependency_tallies(
                block, deps, restrict, stats=stats
            )
            if tallies is None:
                if strict:
                    raise ValueError(
                        "eval_mode='factorised' but a dependency "
                        "candidate's attribute values are unhashable"
                    )
                return None
            for tally, (supported, satisfied) in zip(
                counts[member_pos], tallies
            ):
                tally[0] += supported
                tally[1] += satisfied
    return UnitResult(
        violations=set(),
        steps=stats.steps,
        block_size=unit.block_size,
        payload=_sparse_tallies(counts),
    )


def _sparse_tallies(counts) -> tuple:
    """The count result payload: per member, supported-only triples."""
    return tuple(
        tuple(
            (dep_pos, supported, satisfied)
            for dep_pos, (supported, satisfied) in enumerate(deps)
            if supported
        )
        for deps in counts
    )


def _match_list_payload(
    items: Sequence[Tuple], count: int, cap: Optional[int], members
) -> tuple:
    """The match-shipping payload for a complete canonical match list.

    Mirrors the incremental selection of :func:`_execute_mine`'s
    enumeration path (same threshold, same per-member canonical cap), so
    a replayed unit ships the byte-identical payload a fresh enumeration
    would have.
    """
    threshold = max(2 * cap, 4096) if cap is not None else None
    if threshold is None or count <= threshold:
        return ("shared", tuple(items))
    return (
        "members",
        count,
        tuple(
            tuple(
                heapq.nsmallest(
                    cap,
                    (
                        tuple(sorted((member.iso[var], node)
                                     for var, node in match_items))
                        for match_items in items
                    ),
                    key=match_items_key,
                )
            )
            for member in members
        ),
    )


def _execute_mine(
    sigma: Sequence[GFD],
    unit: WorkUnit,
    materialiser: BlockMaterialiser,
    match_store: Optional["MatchStore"] = None,
) -> UnitResult:
    """Discovery's enumeration phase: fold or return the pivoted matches.

    The result payload is a pure value — equal across execution backends
    and enumeration orders.  Pivot candidates partition the match space
    (each match pins the pivot variables at exactly one deduplicated
    candidate), so merging unit payloads over a plan covers every match
    of the leader pattern exactly once.

    ``unit.payload`` is ``(max_matches, mode)``:

    * ``mode="aggregate"`` (discovery's default): matches are folded
      worker-side into a mergeable
      :class:`~repro.core.discovery.EvidenceAggregate` and the unit
      ships ``("agg", count, aggregate_payload)`` — ``O(vars × attrs)``
      however many matches the block holds.  The enumerated matches are
      deposited in ``match_store`` (budget permitting) so the later
      ``count``/``confirm`` phases replay them.
    * ``mode="matches"``: the match list itself ships — the documented
      fallback the coordinator requests when a pattern's ``max_matches``
      cap bites (support/confidence must then be counted over the
      canonical capped subset only the coordinator can select) or when
      an explicit seeded evidence sample is requested.  The common case
      — a block with at most ~2×cap matches — ships ``("shared",
      matches)`` in *leader* variable space, translated per member on
      the coordinator.  A pathological block with more matches switches
      to ``("members", total_count, per_member)``: matches are
      translated into each member's variable space *on the worker* and
      kept as the member-space canonical ``cap``-smallest (the cap must
      be taken per member — variable renaming permutes the canonical
      order, so a leader-space cut could drop a member's smallest
      matches).  Either way worker memory and the shipped payload stay
      ``O(members × cap)``, and the per-unit selection commutes with
      the coordinator's global canonical cap.

    A resident entry (a warm repeated ``discover()``, or the capped
    fallback re-requesting matches the aggregate pass already
    enumerated) replays instead of re-running VF2 on either mode.
    """
    payload_in = unit.payload or ()
    cap = payload_in[0] if payload_in else None
    mode = payload_in[1] if len(payload_in) > 1 else "matches"
    members = unit.group.members

    replay = _replayed(sigma, unit, materialiser, match_store)
    if replay is not None:
        steps, items, block = replay
        if mode == "aggregate":
            aggregate = EvidenceAggregate()
            for match_items in items:
                aggregate.add(block, dict(match_items))
            payload = ("agg", len(items), aggregate.to_payload())
        else:
            payload = _match_list_payload(items, len(items), cap, members)
        return UnitResult(
            violations=set(),
            steps=steps,
            block_size=unit.block_size,
            payload=payload,
        )

    if mode == "aggregate" and unit.eval_mode != "enumerate":
        result = _factorised_mine(
            sigma, unit, materialiser,
            strict=unit.eval_mode == "factorised",
        )
        if result is not None:
            return result

    stats = MatchStats()
    block, matches = _pinned_matches(sigma, unit, materialiser, stats)

    if mode == "aggregate":
        aggregate = EvidenceAggregate()
        # Retain the canonical items for the resident store while they
        # fit its budget; past it, keep folding without retention (the
        # later phases then fall back to re-enumeration).
        retain_limit = match_store.budget if match_store is not None else 0
        found: Optional[List[Tuple]] = [] if retain_limit else None
        count = 0
        for match in matches:
            count += 1
            aggregate.add(block, match)
            if found is not None:
                found.append(tuple(sorted(match.items())))
                if len(found) > retain_limit:
                    found = None
        if found is not None and match_store is not None:
            found.sort(key=match_items_key)
            match_store.put(_store_key(sigma, unit), stats.steps,
                            tuple(found))
        return UnitResult(
            violations=set(),
            steps=stats.steps,
            block_size=unit.block_size,
            payload=("agg", count, aggregate.to_payload()),
            enumerated=True,
        )

    threshold = max(2 * cap, 4096) if cap is not None else None
    found = []
    per_member: Optional[List[List[Tuple]]] = None
    count = 0

    def translate(items, member):
        return tuple(sorted((member.iso[var], node) for var, node in items))

    for match in matches:
        count += 1
        items = tuple(sorted(match.items()))
        if per_member is None:
            found.append(items)
            if threshold is not None and len(found) > threshold:
                per_member = [
                    [translate(m, member) for m in found]
                    for member in members
                ]
                found = None
        else:
            for bucket, member in zip(per_member, members):
                bucket.append(translate(items, member))
            # Amortised overflow handling: pruning to the cap-smallest
            # commutes with appending more matches, so letting a bucket
            # run to 2×threshold before compacting keeps the final
            # selection identical while costing O(n log cap) overall
            # instead of O(n · cap) re-heaps (one per append).
            for pos, bucket in enumerate(per_member):
                if len(bucket) > 2 * threshold:
                    per_member[pos] = heapq.nsmallest(
                        cap, bucket, key=match_items_key
                    )
    if per_member is None:
        found.sort(key=match_items_key)
        found = tuple(found)
        if match_store is not None:
            match_store.put(_store_key(sigma, unit), stats.steps, found)
        payload = ("shared", found)
    else:
        payload = (
            "members",
            count,
            tuple(
                tuple(heapq.nsmallest(cap, bucket, key=match_items_key))
                for bucket in per_member
            ),
        )
    return UnitResult(
        violations=set(),
        steps=stats.steps,
        block_size=unit.block_size,
        payload=payload,
        enumerated=True,
    )


def _execute_count(
    sigma: Sequence[GFD],
    unit: WorkUnit,
    materialiser: BlockMaterialiser,
    match_store: Optional["MatchStore"] = None,
) -> UnitResult:
    """Discovery's counting phase: tally proposed dependencies.

    ``unit.payload`` carries, per group member, the member's proposed
    ``(lhs, rhs)`` candidates *rewritten into leader variable space* (the
    same alignment detection uses), so one pinned enumeration of the
    leader pattern serves every member's tallies.  The result payload is
    *sparse*: per member, ``(dep_pos, supported, satisfied)`` triples for
    the candidates some match actually supported — a typical pivot block
    supports few of the proposed premises, so dense zero rows would
    dominate the tally traffic (``satisfied`` can only tick inside a
    supported match, so ``supported == 0`` implies nothing to report).

    On a warm shard the enumeration the ``mine`` phase deposited in the
    match store replays here — the counting phase of a persistent-pool
    ``discover()`` runs zero VF2 on resident blocks.
    """
    member_deps = unit.payload or ()
    counts = [
        [[0, 0] for _ in deps] for deps in member_deps
    ]
    replay = _replayed(sigma, unit, materialiser, match_store)
    if replay is not None:
        steps, items, block = replay
        matches = (dict(match_items) for match_items in items)
    else:
        if unit.eval_mode != "enumerate":
            result = _factorised_count(
                sigma, unit, materialiser, member_deps,
                strict=unit.eval_mode == "factorised",
            )
            if result is not None:
                return result
        stats = MatchStats()
        block, matches = _pinned_matches(sigma, unit, materialiser, stats)
    for match in matches:
        for member_pos, deps in enumerate(member_deps):
            for dep_pos, (lhs, rhs) in enumerate(deps):
                if not match_satisfies_all(block, match, lhs):
                    continue
                tally = counts[member_pos][dep_pos]
                tally[0] += 1
                if match_satisfies_all(block, match, rhs):
                    tally[1] += 1
    return UnitResult(
        violations=set(),
        steps=steps if replay is not None else stats.steps,
        block_size=unit.block_size,
        payload=_sparse_tallies(counts),
        enumerated=replay is None,
    )


def expand_count_payloads(units: Sequence[WorkUnit]) -> List[WorkUnit]:
    """Materialise ``("derive", …)`` count payloads into concrete deps.

    The counting phase's unit inputs are, in the aggregate data path,
    *recipes* rather than literal lists: ``("derive", variables,
    aggregate_payload, max_attrs)`` per group member.  Re-deriving the
    candidate list locally — via the deterministic
    :meth:`~repro.core.discovery.EvidenceAggregate.propose_for_variables`
    — reproduces the coordinator's proposals exactly (same positions,
    same literals), so a slot ships one compact aggregate per pattern
    instead of ``O(proposals)`` literal objects.  Derivation is cached
    per payload object (units of a shared group reference one payload),
    and the derived deps are rewritten into leader variable space
    through each member's stored alignment, exactly as the coordinator
    used to ship them.  Units with concrete payloads pass through
    untouched (the match-shipping fallback keeps the explicit form —
    sampled proposals are not a pure function of the aggregate).
    """
    derived_cache: Dict[int, tuple] = {}
    out: List[WorkUnit] = []
    for unit in units:
        payload = unit.payload
        if (
            unit.kind != "count"
            or not payload
            or not any(spec and spec[0] == "derive" for spec in payload)
        ):
            out.append(unit)
            continue
        concrete = derived_cache.get(id(payload))
        if concrete is None:
            member_deps = []
            for spec, member in zip(payload, unit.group.members):
                if not spec or spec[0] != "derive":
                    member_deps.append(spec or ())
                    continue
                _, variables, aggregate_payload, max_attrs = spec
                aggregate = EvidenceAggregate.from_payload(aggregate_payload)
                inverse = {v: k for k, v in member.iso.items()}
                member_deps.append(tuple(
                    (
                        tuple(lit.rename(inverse) for lit in lhs),
                        tuple(lit.rename(inverse) for lit in rhs),
                    )
                    for lhs, rhs in aggregate.propose_for_variables(
                        variables, max_attrs
                    )
                ))
            concrete = tuple(member_deps)
            derived_cache[id(payload)] = concrete
        out.append(replace(unit, payload=concrete))
    return out


def consolidate_slot_results(
    units: Sequence[WorkUnit], results: Sequence[Optional[UnitResult]]
) -> None:
    """Fold one slot's mergeable result payloads per shared group, in place.

    Mine aggregates and count tallies merge associatively, so a slot
    needs to ship exactly one of each per isomorphism group — not one
    per work unit (pivot blocks are typically small and plentiful, so
    per-unit payload overhead would dominate the wire volume).  The
    first unit of each group becomes the carrier of the merged payload;
    folded units keep their per-unit ``steps`` and ``block_size`` (cost
    charging is untouched) with an empty payload marker (``None`` for
    mine, ``()`` for count — both no-ops for the coordinator's gather).
    Match-shipping mine payloads pass through unmerged: the capped
    fallback needs per-unit granularity for its per-member canonical
    caps.

    ``detect`` units fold the same way: their violation sets merge as a
    plain union, so a slot ships each distinct violation once per group
    instead of once per work unit (pivot blocks overlap, and symmetric
    pivot candidates of one group re-find the same violating matches).
    The coordinator's gather unions every result's violations anyway, so
    folding is invisible to it — only the reply volume shrinks.
    """
    mine_carriers: Dict[int, list] = {}
    count_carriers: Dict[int, list] = {}
    detect_carriers: Dict[int, "UnitResult"] = {}
    for unit, result in zip(units, results):
        if result is None:
            continue
        if unit.kind == "detect":
            carrier = detect_carriers.get(id(unit.group))
            if carrier is None:
                detect_carriers[id(unit.group)] = result
            elif result.violations:
                carrier.violations |= result.violations
                result.violations = set()
            continue
        if result.payload is None:
            continue
        gid = id(unit.group)
        if unit.kind == "mine" and result.payload[0] == "agg":
            entry = mine_carriers.get(gid)
            if entry is None:
                mine_carriers[gid] = [
                    result,
                    result.payload[1],
                    EvidenceAggregate.from_payload(result.payload[2]),
                    False,
                ]
            else:
                entry[1] += result.payload[1]
                entry[2].merge(
                    EvidenceAggregate.from_payload(result.payload[2])
                )
                entry[3] = True
                result.payload = None
        elif unit.kind == "count":
            entry = count_carriers.get(gid)
            if entry is None:
                count_carriers[gid] = [
                    result,
                    [
                        {pos: [sup, sat] for pos, sup, sat in member}
                        for member in result.payload
                    ],
                    False,
                ]
            else:
                for tally, member in zip(entry[1], result.payload):
                    for pos, sup, sat in member:
                        slot_tally = tally.get(pos)
                        if slot_tally is None:
                            tally[pos] = [sup, sat]
                        else:
                            slot_tally[0] += sup
                            slot_tally[1] += sat
                entry[2] = True
                result.payload = ()
    for result, count, aggregate, folded in mine_carriers.values():
        if folded:
            result.payload = ("agg", count, aggregate.to_payload())
    for result, tallies, folded in count_carriers.values():
        if folded:
            result.payload = tuple(
                tuple(
                    (pos, sup, sat)
                    for pos, (sup, sat) in sorted(member.items())
                )
                for member in tallies
            )


def run_assignment(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    assignment: Sequence[Sequence[WorkUnit]],
    cluster: SimulatedCluster,
    ship_partial_matches: bool = False,
    materialiser: Optional[BlockMaterialiser] = None,
    executor: str = "simulated",
    processes: Optional[int] = None,
    pool: Optional["MultiprocessExecutor"] = None,
    shard_cache: Optional["ShardCache"] = None,
    epoch: Optional[str] = None,
    sigma_key: Optional[object] = None,
    ship_mode: str = "auto",
    fault_policy: Optional["FaultPolicy"] = None,
) -> Set[Violation]:
    """Execute a per-worker unit assignment, charging costs as measured.

    Split units (replicate-and-split): the primary executes detection and
    its measured step count is shared across all sub-units with the same
    ``split_id``; replicas are charged their share.  With
    ``ship_partial_matches=True`` (the fragmented setting) replicas are
    additionally charged the partial-match shipment the strategy incurs;
    over a replicated graph the exchange is free (Section 6.1: repVal
    "requires no data exchange").  Primaries are processed first so the
    shares are known when replicas are charged.  ``materialiser`` shares
    block/matcher materialisation across units (one is created per run
    when not supplied; simulated backend only).

    ``executor`` selects how the primary units actually run —
    ``"simulated"`` (serial, in-process), ``"process"`` (real worker
    processes, ``processes`` capping the pool), or ``"auto"`` (see
    :func:`~repro.parallel.executors.resolve_executor`).  ``pool`` lends
    a caller-owned :class:`~repro.parallel.executors.MultiprocessExecutor`
    (a session's persistent pool) to the process backend, with
    ``shard_cache``/``epoch`` enabling warm shard shipping.  ``ship_mode``
    selects how ad-hoc pools ship full shards (pickle vs. shared-memory
    mapping; lent pools keep their own configured mode).  Cost
    charging happens on the coordinator from the per-unit measurements
    either way, so all backends yield identical violations *and*
    identical cluster reports.  ``fault_policy`` configures the process
    backend's supervision plane (see
    :class:`~repro.parallel.faults.FaultPolicy`); recovered runs stay
    on this same canonical folding path, so the guarantee extends to
    runs that lost and respawned workers mid-flight.
    """
    from .executors import execute_plan

    violations: Set[Violation] = set()
    split_steps: Dict[int, int] = {}

    # Pass 1: primaries (every unsplit unit is its own primary), executed
    # by the selected backend; results align 1:1 with the assignment.
    results = execute_plan(
        sigma,
        graph,
        assignment,
        executor=executor,
        processes=processes,
        materialiser=materialiser,
        pool=pool,
        shard_cache=shard_cache,
        epoch=epoch,
        sigma_key=sigma_key,
        ship_mode=ship_mode,
        fault_policy=fault_policy,
    )
    for worker, worker_units in enumerate(assignment):
        for unit, result in zip(worker_units, results[worker]):
            if not unit.primary:
                continue
            violations |= result.violations
            if unit.split_id is not None:
                split_steps[unit.split_id] = result.steps
            cluster.charge_unit(
                worker,
                steps=int(result.steps * unit.cost_share),
                block_size=unit.block_size * unit.cost_share,
            )
    # Pass 2: replicas share the primary's measured cost and ship partial
    # matches between each other.
    for worker, worker_units in enumerate(assignment):
        for unit in worker_units:
            if unit.primary:
                continue
            steps = split_steps.get(unit.split_id, 0)
            cluster.charge_unit(
                worker,
                steps=int(steps * unit.cost_share),
                block_size=unit.block_size * unit.cost_share,
            )
            if ship_partial_matches:
                cluster.ship_to(
                    worker,
                    size=unit.block_size * unit.cost_share
                    * PARTIAL_MATCH_SHIP_FACTOR,
                    messages=1,
                )
    return violations


def run_units(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    plan: Sequence[Sequence[WorkUnit]],
    cluster: SimulatedCluster,
    materialiser: Optional[BlockMaterialiser] = None,
    executor: str = "simulated",
    processes: Optional[int] = None,
    pool: Optional["MultiprocessExecutor"] = None,
    shard_cache: Optional["ShardCache"] = None,
    epoch: Optional[str] = None,
    sigma_key: Optional[object] = None,
    match_store: Optional["MatchStore"] = None,
    ship_mode: str = "auto",
    fault_policy: Optional["FaultPolicy"] = None,
) -> List[List[Optional["UnitResult"]]]:
    """Execute a plan and return the per-unit results, charging costs.

    The result-bearing sibling of :func:`run_assignment`, used by phases
    that consume unit *payloads* (discovery's mine/count phases) rather
    than unioned violations.  Cost charging is the primary-unit part of
    :func:`run_assignment` (mining plans carry no split replicas); the
    backend switches are identical.  ``match_store`` gives the simulated
    backend a coordinator-side resident match store (worker processes
    keep their own; see :func:`execute_unit`).
    """
    from .executors import execute_plan

    results = execute_plan(
        sigma,
        graph,
        plan,
        executor=executor,
        processes=processes,
        materialiser=materialiser,
        pool=pool,
        shard_cache=shard_cache,
        epoch=epoch,
        sigma_key=sigma_key,
        match_store=match_store,
        ship_mode=ship_mode,
        fault_policy=fault_policy,
    )
    for worker, worker_units in enumerate(plan):
        for unit, result in zip(worker_units, results[worker]):
            if not unit.primary or result is None:
                continue
            cluster.charge_unit(
                worker,
                steps=int(result.steps * unit.cost_share),
                block_size=unit.block_size * unit.cost_share,
            )
    return results


def sequential_run(
    sigma: Sequence[GFD],
    graph: PropertyGraph,
    cost_model: Optional[CostModel] = None,
    step_budget: Optional[int] = None,
) -> Tuple[Optional[Set[Violation]], float]:
    """``detVio`` with the same cost accounting as the parallel runs.

    Returns ``(violations, cost)``.  With ``step_budget`` set, gives up
    once the matcher exceeds the budget and returns ``(None, cost so
    far)`` — reproducing the paper's "detVio does not terminate within the
    limit" observations without actually burning the time.
    """
    model = cost_model or CostModel()
    stats = MatchStats()
    if step_budget is None:
        violations = det_vio(sigma, graph, stats=stats)
        cost = stats.steps * model.step_cost + graph.size * model.load_cost
        return violations, cost
    violations = set()
    from ..core.validation import violations_of

    for gfd in sigma:
        for violation in violations_of(gfd, graph, stats=stats):
            violations.add(violation)
            if stats.steps > step_budget:
                cost = stats.steps * model.step_cost
                return None, cost
        if stats.steps > step_budget:
            return None, stats.steps * model.step_cost
    cost = stats.steps * model.step_cost + graph.size * model.load_cost
    return violations, cost
