"""Bi-criteria workload assignment (Section 6.2, Proposition 13).

For fragmented graphs the assignment must simultaneously (a) balance the
per-worker computation and (b) minimise the data each worker must fetch
from other fragments.  The problem is NP-complete; following the paper's
Shmoys–Tardos-flavoured strategy we process units in descending weight and
assign each to the worker minimising a combined score

    score(i) = (load_i + weight) + λ · CC(unit, i),

where ``CC(unit, i)`` is the block volume *not* resident on fragment ``i``
(each block is fetched at most once per worker; re-used blocks are free).
``λ`` trades balance against communication; the default weighs a shipped
byte like a scanned byte, which keeps communication in the paper's
observed 12–24% share.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple

from .workload import WorkUnit


def bicriteria_assign(
    units: Sequence[WorkUnit],
    n: int,
    comm_weight: float = 1.0,
) -> Tuple[List[List[WorkUnit]], List[float], List[float]]:
    """Balanced, communication-aware assignment.

    Returns per-worker unit lists, their computation loads, and their
    communication volumes.  Blocks already counted for a worker are not
    charged again (the "each data block is counted only once" rule).
    """
    if n < 1:
        raise ValueError("need at least one worker")
    assignment: List[List[WorkUnit]] = [[] for _ in range(n)]
    loads = [0.0] * n
    comm = [0.0] * n
    resident_nodes: List[Set] = [set() for _ in range(n)]

    for unit in sorted(
        units, key=lambda u: u.weight * u.cost_share, reverse=True
    ):
        best_worker = 0
        best_score = None
        best_fetch = 0.0
        for worker in range(n):
            fetch = _fetch_volume(unit, worker, resident_nodes[worker])
            score = (
                loads[worker]
                + unit.weight * unit.cost_share
                + comm_weight * fetch
            )
            if best_score is None or score < best_score:
                best_score = score
                best_worker = worker
                best_fetch = fetch
        assignment[best_worker].append(unit)
        loads[best_worker] += unit.weight * unit.cost_share
        comm[best_worker] += best_fetch
        resident_nodes[best_worker] |= unit.block_nodes
    return assignment, loads, comm


def _fetch_volume(unit: WorkUnit, worker: int, resident: Set) -> float:
    """Bytes worker ``worker`` must fetch to own this unit's block.

    The locally-owned share (``fragment_sizes[worker]``) is free; nodes
    already fetched for earlier units are free too.  We scale the missing
    size by the fraction of block nodes not yet resident — an O(|block|)
    approximation of exact edge-level dedup.
    """
    missing = unit.missing_size(worker)
    if missing <= 0:
        return 0.0
    if not resident:
        return float(missing)
    new_nodes = len(unit.block_nodes - resident)
    if not unit.block_nodes:
        return 0.0
    return missing * (new_nodes / len(unit.block_nodes))


def random_assign(
    units: Sequence[WorkUnit],
    n: int,
    seed: int = 0,
) -> Tuple[List[List[WorkUnit]], List[float], List[float]]:
    """Random assignment with honest communication accounting (disran)."""
    rng = random.Random(seed)
    assignment: List[List[WorkUnit]] = [[] for _ in range(n)]
    loads = [0.0] * n
    comm = [0.0] * n
    resident_nodes: List[Set] = [set() for _ in range(n)]
    for unit in units:
        worker = rng.randrange(n)
        fetch = _fetch_volume(unit, worker, resident_nodes[worker])
        assignment[worker].append(unit)
        loads[worker] += unit.weight * unit.cost_share
        comm[worker] += fetch
        resident_nodes[worker] |= unit.block_nodes
    return assignment, loads, comm


def balance_only_assign(
    units: Sequence[WorkUnit],
    n: int,
) -> Tuple[List[List[WorkUnit]], List[float], List[float]]:
    """LPT ignoring communication — what ``disVal`` would do without the
    bi-criteria objective (used by ablation benchmarks)."""
    from .balancing import lpt_partition

    assignment, loads = lpt_partition(units, n)
    comm = [0.0] * n
    resident_nodes: List[Set] = [set() for _ in range(n)]
    for worker, worker_units in enumerate(assignment):
        for unit in worker_units:
            comm[worker] += _fetch_volume(unit, worker, resident_nodes[worker])
            resident_nodes[worker] |= unit.block_nodes
    return assignment, loads, comm
