"""Pattern containment, isomorphism and common sub-patterns.

Used by the multi-query optimisation (Appendix: "pattern containment and
sub-pattern scheduling" after [31]) to share work between GFDs whose
patterns coincide or nest, and by the satisfiability analysis to prune
duplicate overlay hosts.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from .embedding import is_embeddable
from .pattern import GraphPattern


def contains(host: GraphPattern, small: GraphPattern) -> bool:
    """Whether ``small`` is embeddable in ``host`` (pattern containment).

    Every match of ``host`` then contains a match of ``small``.
    """
    return is_embeddable(small, host)


def are_isomorphic(a: GraphPattern, b: GraphPattern) -> bool:
    """Exact pattern isomorphism (same shape, labels and edge labels)."""
    if a.num_nodes != b.num_nodes or a.num_edges != b.num_edges:
        return False
    if isomorphism_fingerprint(a) != isomorphism_fingerprint(b):
        return False
    return is_embeddable(a, b)


def isomorphism_fingerprint(pattern: GraphPattern) -> Tuple:
    """A cheap isomorphism-invariant fingerprint.

    Combines the multiset of (label, in-degree, out-degree) node signatures
    with the multiset of labelled edge type triples.  Equal fingerprints do
    not guarantee isomorphism (that is checked exactly afterwards); unequal
    fingerprints refute it.
    """
    node_sig = Counter(
        (pattern.label(v), len(pattern.in_edges(v)), len(pattern.out_edges(v)))
        for v in pattern.nodes()
    )
    edge_sig = Counter(
        (pattern.label(src), elabel, pattern.label(dst))
        for src, dst, elabel in pattern.edges()
    )
    return (tuple(sorted(node_sig.items())), tuple(sorted(edge_sig.items())))


def group_isomorphic(patterns: Sequence[GraphPattern]) -> List[List[int]]:
    """Indices of ``patterns`` grouped into isomorphism classes.

    The multi-query optimiser enumerates candidates once per class instead
    of once per GFD.
    """
    buckets: Dict[Tuple, List[int]] = {}
    for index, pattern in enumerate(patterns):
        buckets.setdefault(isomorphism_fingerprint(pattern), []).append(index)
    groups: List[List[int]] = []
    for indices in buckets.values():
        classes: List[List[int]] = []
        for index in indices:
            placed = False
            for cls in classes:
                if are_isomorphic(patterns[cls[0]], patterns[index]):
                    cls.append(index)
                    placed = True
                    break
            if not placed:
                classes.append([index])
        groups.extend(classes)
    return groups


def containment_order(patterns: Sequence[GraphPattern]) -> List[Tuple[int, int]]:
    """All pairs ``(i, j)`` with ``patterns[i]`` embeddable in ``patterns[j]``.

    ``i == j`` pairs are omitted.  This is the sub-pattern schedule the
    Appendix optimisation exploits: once ``Q_j`` has been matched, matches
    of a contained ``Q_i`` can be screened inside them first.
    """
    pairs: List[Tuple[int, int]] = []
    for i, small in enumerate(patterns):
        for j, host in enumerate(patterns):
            if i == j:
                continue
            if small.size <= host.size and is_embeddable(small, host):
                pairs.append((i, j))
    return pairs


def shared_edge_types(patterns: Iterable[GraphPattern]) -> Counter:
    """Multiset of edge type triples shared across the given patterns.

    A cheap signal for which patterns profit from shared candidate
    filtering.
    """
    total: Counter = Counter()
    for pattern in patterns:
        seen = {
            (pattern.label(src), elabel, pattern.label(dst))
            for src, dst, elabel in pattern.edges()
        }
        total.update(seen)
    return total
