"""A compact text DSL for declaring patterns.

Grammar (whitespace-insensitive)::

    pattern   := statement (';' statement)*
    statement := node (edge node)*
    node      := VAR (':' LABEL)?
    edge      := '-' LABEL? '->'          (forward edge)

Examples::

    parse_pattern("x:country -capital-> y:city; x -capital-> z:city")
    parse_pattern("x:bird; y:penguin -is_a-> x")      # Q3-style
    parse_pattern("x:R; y:R")                          # two isolated nodes
    parse_pattern("x -_-> y")                          # wildcard edge

A node's label is fixed by its first labelled occurrence; later occurrences
may omit it.  Unlabelled variables get the wildcard label.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from ..graph.graph import WILDCARD
from .pattern import GraphPattern, PatternError

_NODE_RE = re.compile(r"^\s*([A-Za-z_][\w']*)\s*(?::\s*([\w\. ']+?))?\s*$")
_EDGE_RE = re.compile(r"-\s*([\w\.']*)\s*->")


def parse_pattern(text: str) -> GraphPattern:
    """Parse the DSL described in the module docstring into a pattern."""
    pattern = GraphPattern()
    pending: List[Tuple[str, str, str]] = []
    statements = [s for s in re.split(r"[;\n]", text) if s.strip()]
    if not statements:
        raise PatternError("empty pattern text")
    for statement in statements:
        _parse_statement(statement.strip(), pattern, pending)
    for src, dst, label in pending:
        pattern.add_edge(src, dst, label)
    return pattern


def _parse_statement(
    statement: str, pattern: GraphPattern, pending: List[Tuple[str, str, str]]
) -> None:
    # Split "a:X -l-> b -m-> c:Y" into nodes and edge labels.
    parts = _EDGE_RE.split(statement)
    # parts = [node, elabel, node, elabel, node, ...]
    if len(parts) % 2 == 0:
        raise PatternError(f"malformed statement: {statement!r}")
    nodes = [_parse_node(parts[i], pattern) for i in range(0, len(parts), 2)]
    edge_labels = [parts[i].strip() or WILDCARD for i in range(1, len(parts), 2)]
    for i, elabel in enumerate(edge_labels):
        pending.append((nodes[i], nodes[i + 1], elabel))


def _parse_node(token: str, pattern: GraphPattern) -> str:
    match = _NODE_RE.match(token)
    if not match:
        raise PatternError(f"malformed node: {token!r}")
    var, label = match.group(1), match.group(2)
    if var in pattern:
        if label is not None and pattern.label(var) not in (label, WILDCARD):
            raise PatternError(
                f"variable {var!r} relabelled {pattern.label(var)!r} -> {label!r}"
            )
        return var
    pattern.add_node(var, label if label is not None else WILDCARD)
    return var


def format_pattern(pattern: GraphPattern) -> str:
    """Render a pattern back into (one valid form of) the DSL."""
    lines = []
    isolated = set(pattern.nodes())
    for src, dst, label in pattern.edges():
        isolated.discard(src)
        isolated.discard(dst)
        lines.append(
            f"{src}:{pattern.label(src)} -{label}-> {dst}:{pattern.label(dst)}"
        )
    for var in sorted(isolated):
        lines.append(f"{var}:{pattern.label(var)}")
    return "; ".join(lines)
