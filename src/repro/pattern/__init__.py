"""Graph patterns ``Q[x̄]``: structure, pivots, embeddings, containment and
a declaration DSL."""

from .pattern import GraphPattern, PatternError, pattern_from_edges
from .components import (
    PivotEntry,
    PivotVector,
    component_patterns,
    connected_components,
    pattern_eccentricity,
    pivot_vector,
)
from .embedding import Embedding, embeddings, first_embedding, is_embeddable
from .containment import (
    are_isomorphic,
    containment_order,
    contains,
    group_isomorphic,
    isomorphism_fingerprint,
    shared_edge_types,
)
from .parser import format_pattern, parse_pattern

__all__ = [
    "GraphPattern",
    "PatternError",
    "pattern_from_edges",
    "PivotEntry",
    "PivotVector",
    "component_patterns",
    "connected_components",
    "pattern_eccentricity",
    "pivot_vector",
    "Embedding",
    "embeddings",
    "first_embedding",
    "is_embeddable",
    "are_isomorphic",
    "containment_order",
    "contains",
    "group_isomorphic",
    "isomorphism_fingerprint",
    "shared_edge_types",
    "format_pattern",
    "parse_pattern",
]
