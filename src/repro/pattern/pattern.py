"""Graph patterns ``Q[x̄]`` (Section 2).

A pattern is a directed graph over *variables*: the paper's mapping ``µ``
from the variable list ``x̄`` to pattern nodes is a bijection, so we
identify each pattern node with its variable outright (the paper itself
uses ``x`` and ``µ(x)`` interchangeably).  Node and edge labels may be the
wildcard ``'_'``, which matches any label during matching and embedding.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..graph.graph import WILDCARD

Variable = str
PatternEdge = Tuple[Variable, Variable, str]


class PatternError(Exception):
    """Raised on structurally invalid pattern operations."""


class GraphPattern:
    """A directed, labelled pattern ``Q[x̄]``.

    Example (pattern ``Q2`` of the paper — a country with two capitals)::

        q = GraphPattern()
        q.add_node("x", "country")
        q.add_node("y", "city")
        q.add_node("z", "city")
        q.add_edge("x", "y", "capital")
        q.add_edge("x", "z", "capital")
    """

    __slots__ = ("_labels", "_out", "_in", "_order", "_num_edges")

    def __init__(self) -> None:
        self._labels: Dict[Variable, str] = {}
        self._out: Dict[Variable, List[Tuple[Variable, str]]] = {}
        self._in: Dict[Variable, List[Tuple[Variable, str]]] = {}
        #: insertion order of variables = the list x̄
        self._order: List[Variable] = []
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, variable: Variable, label: str = WILDCARD) -> Variable:
        """Declare pattern node ``variable`` with ``label``.

        Re-declaring with a different label is an error (µ is a bijection;
        each variable denotes one node with one label).
        """
        existing = self._labels.get(variable)
        if existing is not None:
            if existing != label:
                raise PatternError(
                    f"variable {variable!r} already has label {existing!r}"
                )
            return variable
        self._labels[variable] = label
        self._out[variable] = []
        self._in[variable] = []
        self._order.append(variable)
        return variable

    def add_edge(self, src: Variable, dst: Variable, label: str = WILDCARD) -> None:
        """Add pattern edge ``src -[label]-> dst`` (endpoints must exist)."""
        if src not in self._labels:
            raise PatternError(f"unknown variable {src!r}")
        if dst not in self._labels:
            raise PatternError(f"unknown variable {dst!r}")
        if (dst, label) in self._out[src]:
            return
        self._out[src].append((dst, label))
        self._in[dst].append((src, label))
        self._num_edges += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, variable: Variable) -> bool:
        return variable in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def variables(self) -> List[Variable]:
        """The variable list ``x̄`` in declaration order."""
        return list(self._order)

    def nodes(self) -> Iterator[Variable]:
        """Iterate over pattern variables."""
        return iter(self._order)

    @property
    def num_nodes(self) -> int:
        """``|V_Q|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """``|E_Q|``."""
        return self._num_edges

    @property
    def size(self) -> int:
        """``|V_Q| + |E_Q|`` — the pattern size ``|Q|`` of the paper."""
        return len(self._labels) + self._num_edges

    def label(self, variable: Variable) -> str:
        """The label of ``variable`` (possibly the wildcard)."""
        return self._labels[variable]

    def out_edges(self, variable: Variable) -> List[Tuple[Variable, str]]:
        """Outgoing ``(target, edge label)`` pairs of ``variable``."""
        return self._out[variable]

    def in_edges(self, variable: Variable) -> List[Tuple[Variable, str]]:
        """Incoming ``(source, edge label)`` pairs of ``variable``."""
        return self._in[variable]

    def edges(self) -> Iterator[PatternEdge]:
        """Iterate over ``(src, dst, label)`` pattern edges."""
        for src in self._order:
            for dst, label in self._out[src]:
                yield (src, dst, label)

    def degree(self, variable: Variable) -> int:
        """Total degree of ``variable`` within the pattern."""
        return len(self._out[variable]) + len(self._in[variable])

    def has_edge(self, src: Variable, dst: Variable, label: Optional[str] = None) -> bool:
        """Whether pattern edge ``src -> dst`` (with ``label``) exists."""
        for target, elabel in self._out.get(src, ()):
            if target == dst and (label is None or elabel == label):
                return True
        return False

    def labels(self) -> Set[str]:
        """All node labels used (wildcard included if used)."""
        return set(self._labels.values())

    def edge_labels(self) -> Set[str]:
        """All edge labels used (wildcard included if used)."""
        return {label for _, _, label in self.edges()}

    def is_tree(self) -> bool:
        """Whether the pattern is a forest of trees (undirected acyclic).

        Tree-structured patterns make satisfiability and implication
        tractable (Corollaries 4 and 8).
        """
        return self._num_edges == self.num_nodes - self._count_components()

    def _count_components(self) -> int:
        from .components import connected_components

        return len(connected_components(self))

    # ------------------------------------------------------------------
    # derived patterns
    # ------------------------------------------------------------------
    def copy(self) -> "GraphPattern":
        """An independent copy."""
        q = GraphPattern()
        for var in self._order:
            q.add_node(var, self._labels[var])
        for src, dst, label in self.edges():
            q.add_edge(src, dst, label)
        return q

    def rename(self, mapping: Dict[Variable, Variable]) -> "GraphPattern":
        """A copy with variables renamed by ``mapping`` (must be injective).

        Variables absent from ``mapping`` keep their names.
        """
        targets = [mapping.get(v, v) for v in self._order]
        if len(set(targets)) != len(targets):
            raise PatternError("rename mapping is not injective")
        q = GraphPattern()
        for var in self._order:
            q.add_node(mapping.get(var, var), self._labels[var])
        for src, dst, label in self.edges():
            q.add_edge(mapping.get(src, src), mapping.get(dst, dst), label)
        return q

    def restricted_to(self, variables: Sequence[Variable]) -> "GraphPattern":
        """The sub-pattern induced by ``variables``."""
        keep = set(variables)
        q = GraphPattern()
        for var in self._order:
            if var in keep:
                q.add_node(var, self._labels[var])
        for src, dst, label in self.edges():
            if src in keep and dst in keep:
                q.add_edge(src, dst, label)
        return q

    def signature(self) -> Tuple:
        """A hashable fingerprint invariant under variable *identity*.

        Two patterns with equal variables/labels/edges share a signature.
        (For isomorphism-invariant grouping see
        :func:`repro.pattern.containment.canonical_form`.)
        """
        nodes = tuple(sorted((v, self._labels[v]) for v in self._order))
        edges = tuple(sorted(self.edges()))
        return (nodes, edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphPattern):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"{v}:{self._labels[v]}" for v in self._order]
        edges = [f"{s}-{l}->{d}" for s, d, l in self.edges()]
        return f"GraphPattern({', '.join(parts)} | {', '.join(edges)})"


def pattern_from_edges(
    edges: Sequence[PatternEdge],
    labels: Optional[Dict[Variable, str]] = None,
    isolated: Optional[Dict[Variable, str]] = None,
) -> GraphPattern:
    """Build a pattern from edge triples plus label/isolated-node maps."""
    labels = labels or {}
    q = GraphPattern()
    for src, dst, elabel in edges:
        if src not in q:
            q.add_node(src, labels.get(src, WILDCARD))
        if dst not in q:
            q.add_node(dst, labels.get(dst, WILDCARD))
        q.add_edge(src, dst, elabel)
    for var, label in (isolated or {}).items():
        if var not in q:
            q.add_node(var, label)
    return q
