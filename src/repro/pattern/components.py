"""Pattern connectivity, radii and pivot selection (Section 5.2).

The workload model fixes, per (maximum) connected component ``Q_i`` of a
pattern, a *pivot* variable ``z_i`` — the node of minimum eccentricity —
whose radius ``c_i_Q`` bounds how far any match node can be from the
pivot's image (locality of subgraph isomorphism).  The pivot vector
``PV(φ) = ((z_1, c¹_Q), ..., (z_k, c^k_Q))`` is computable in ``O(|Q|²)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .pattern import GraphPattern, Variable


def connected_components(pattern: GraphPattern) -> List[Set[Variable]]:
    """Weakly connected components, ordered by first variable occurrence."""
    seen: Set[Variable] = set()
    components: List[Set[Variable]] = []
    for start in pattern.nodes():
        if start in seen:
            continue
        component: Set[Variable] = {start}
        queue = deque([start])
        while queue:
            var = queue.popleft()
            for nbr, _ in pattern.out_edges(var):
                if nbr not in component:
                    component.add(nbr)
                    queue.append(nbr)
            for nbr, _ in pattern.in_edges(var):
                if nbr not in component:
                    component.add(nbr)
                    queue.append(nbr)
        seen |= component
        components.append(component)
    return components


def pattern_eccentricity(pattern: GraphPattern, variable: Variable) -> int:
    """Longest undirected shortest-path distance from ``variable``.

    The paper's "radius of Q_i at µ(z_i)".
    """
    dist: Dict[Variable, int] = {variable: 0}
    queue = deque([variable])
    max_dist = 0
    while queue:
        var = queue.popleft()
        d = dist[var]
        for nbr, _ in pattern.out_edges(var):
            if nbr not in dist:
                dist[nbr] = d + 1
                max_dist = max(max_dist, d + 1)
                queue.append(nbr)
        for nbr, _ in pattern.in_edges(var):
            if nbr not in dist:
                dist[nbr] = d + 1
                max_dist = max(max_dist, d + 1)
                queue.append(nbr)
    return max_dist


@dataclass(frozen=True)
class PivotEntry:
    """One ``(z_i, c^i_Q)`` entry of a pivot vector."""

    variable: Variable
    radius: int
    component: Tuple[Variable, ...]


@dataclass(frozen=True)
class PivotVector:
    """The pivot vector ``PV(φ) = (z̄, c̄_Q)`` of a pattern (Section 5.2)."""

    entries: Tuple[PivotEntry, ...]

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """The pivot list ``z̄``."""
        return tuple(entry.variable for entry in self.entries)

    @property
    def radii(self) -> Tuple[int, ...]:
        """The radius list ``c̄_Q``."""
        return tuple(entry.radius for entry in self.entries)

    @property
    def arity(self) -> int:
        """``‖z̄‖`` — the number of connected components."""
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


def pivot_vector(pattern: GraphPattern) -> PivotVector:
    """Compute ``PV(φ)`` by picking the min-eccentricity node per component.

    Ties break on (eccentricity, degree descending, variable name) so the
    choice is deterministic — matching the paper's Example 9, which picks
    the structurally central ``account`` node of ``Q6``.
    """
    entries = []
    for component in connected_components(pattern):
        best: Tuple[int, int, Variable] = None  # type: ignore[assignment]
        for var in sorted(component):
            ecc = pattern_eccentricity(pattern, var)
            key = (ecc, -pattern.degree(var), var)
            if best is None or key < best:
                best = key
        ecc, _, var = best
        entries.append(
            PivotEntry(variable=var, radius=ecc, component=tuple(sorted(component)))
        )
    return PivotVector(entries=tuple(entries))


def component_patterns(pattern: GraphPattern) -> List[GraphPattern]:
    """The pattern split into its connected components (as sub-patterns)."""
    return [
        pattern.restricted_to(sorted(component))
        for component in connected_components(pattern)
    ]
