"""Pattern-into-pattern embeddings (Section 4).

A pattern ``Q'`` is *embeddable* in ``Q`` when there is an isomorphic
mapping ``f`` from ``Q'`` to a subgraph of ``Q`` preserving node and edge
labels.  Embeddings drive both static analyses: every embedding of the
pattern of a GFD ``φ' = (Q'[x̄'], X' → Y')`` into a host ``Q`` induces the
*embedded GFD* ``(Q[x̄], f(X') → f(Y'))``, and the sets ``Σ_Q`` of Lemmas 3
and 7 collect exactly these.

Wildcards: a wildcard node/edge of ``Q'`` may map to anything, because any
match of ``Q`` instantiates it regardless of label.  A *concrete* label of
``Q'`` must map to an equal concrete label — mapping it onto a wildcard of
``Q`` would be unsound, since ``Q``'s matches may bind that node to a
different label.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..graph.graph import WILDCARD
from .pattern import GraphPattern, Variable

Embedding = Dict[Variable, Variable]


def _node_compatible(small: GraphPattern, host: GraphPattern,
                     u: Variable, v: Variable) -> bool:
    label = small.label(u)
    return label == WILDCARD or label == host.label(v)


def _edge_compatible(small_label: str, host_label: str) -> bool:
    return small_label == WILDCARD or small_label == host_label


def embeddings(small: GraphPattern, host: GraphPattern) -> Iterator[Embedding]:
    """Enumerate all embeddings of ``small`` into ``host``.

    Backtracking search ordered by a connectivity-aware plan; complete and
    duplicate-free.  Patterns are tiny (the paper sweeps ``|Q|`` up to 6),
    so exhaustive enumeration is cheap.
    """
    if small.num_nodes > host.num_nodes or small.num_edges > host.num_edges:
        return
    order = _search_order(small)
    mapping: Embedding = {}
    used: set = set()
    yield from _extend(small, host, order, 0, mapping, used)


def _search_order(pattern: GraphPattern) -> List[Variable]:
    """Order variables so each (when possible) touches an earlier one."""
    order: List[Variable] = []
    placed: set = set()
    remaining = list(pattern.nodes())
    # Stable greedy: repeatedly take the unplaced variable with the most
    # already-placed neighbours (ties: higher degree, then name).
    while remaining:
        def key(var: Variable) -> Tuple[int, int, str]:
            connected = sum(
                1 for nbr, _ in pattern.out_edges(var) if nbr in placed
            ) + sum(1 for nbr, _ in pattern.in_edges(var) if nbr in placed)
            return (-connected, -pattern.degree(var), var)

        best = min(remaining, key=key)
        order.append(best)
        placed.add(best)
        remaining.remove(best)
    return order


def _extend(
    small: GraphPattern,
    host: GraphPattern,
    order: List[Variable],
    index: int,
    mapping: Embedding,
    used: set,
) -> Iterator[Embedding]:
    if index == len(order):
        yield dict(mapping)
        return
    u = order[index]
    for v in host.nodes():
        if v in used or not _node_compatible(small, host, u, v):
            continue
        if not _edges_consistent(small, host, u, v, mapping):
            continue
        mapping[u] = v
        used.add(v)
        yield from _extend(small, host, order, index + 1, mapping, used)
        del mapping[u]
        used.discard(v)


def _edges_consistent(
    small: GraphPattern,
    host: GraphPattern,
    u: Variable,
    v: Variable,
    mapping: Embedding,
) -> bool:
    """Every small-edge between ``u`` and an already-mapped node must have a
    label-compatible host edge between the images."""
    for nbr, elabel in small.out_edges(u):
        if nbr in mapping:
            if not _has_host_edge(host, v, mapping[nbr], elabel):
                return False
        elif nbr == u:  # self loop
            if not _has_host_edge(host, v, v, elabel):
                return False
    for nbr, elabel in small.in_edges(u):
        if nbr in mapping:
            if not _has_host_edge(host, mapping[nbr], v, elabel):
                return False
    return True


def _has_host_edge(host: GraphPattern, src: Variable, dst: Variable,
                   small_label: str) -> bool:
    for target, host_label in host.out_edges(src):
        if target == dst and _edge_compatible(small_label, host_label):
            return True
    return False


def is_embeddable(small: GraphPattern, host: GraphPattern) -> bool:
    """Whether at least one embedding of ``small`` into ``host`` exists."""
    return next(embeddings(small, host), None) is not None


def first_embedding(small: GraphPattern, host: GraphPattern) -> Optional[Embedding]:
    """An arbitrary embedding, or ``None``."""
    return next(embeddings(small, host), None)
