"""Tests for graph simulation (Section 6.2, partial-match estimation)."""

from repro.graph import (
    graph_from_edges,
    graph_simulation,
    has_simulation_match,
    simulation_match_count_bound,
)
from repro.matching import has_match
from repro.pattern import parse_pattern


def line_graph():
    return graph_from_edges(
        [("a", "e", "b"), ("b", "e", "c")],
        node_labels={"a": "x", "b": "y", "c": "z"},
    )


class TestSimulationRelation:
    def test_exact_images(self):
        g = line_graph()
        q = parse_pattern("u:x -e-> v:y -e-> w:z")
        sim = graph_simulation(q, g)
        assert sim == {"u": {"a"}, "v": {"b"}, "w": {"c"}}

    def test_empty_image_refutes_match(self):
        g = line_graph()
        q = parse_pattern("u:x -e-> v:z")  # x never points to z directly
        sim = graph_simulation(q, g)
        assert sim["u"] == set()
        assert not has_simulation_match(q, g)

    def test_wildcards_simulate_everything_compatible(self):
        g = line_graph()
        q = parse_pattern("u -e-> v")
        sim = graph_simulation(q, g)
        assert sim["u"] == {"a", "b"}
        assert sim["v"] == {"b", "c"}

    def test_edge_label_mismatch(self):
        g = line_graph()
        q = parse_pattern("u:x -nope-> v:y")
        assert not has_simulation_match(q, g)


class TestOverApproximation:
    def test_simulation_necessary_for_isomorphism(self):
        # Simulation may accept where isomorphism fails (a cycle simulating
        # in a path), but never the other way round.
        g = graph_from_edges(
            [("a", "e", "b"), ("b", "e", "a")],
            node_labels={"a": "n", "b": "n"},
        )
        q = parse_pattern("u:n -e-> v:n -e-> w:n")  # needs 3 distinct nodes
        assert has_simulation_match(q, g)       # loop unrolls under simulation
        assert not has_match(q, g)              # isomorphism needs injectivity

    def test_bound_dominates_match_count(self):
        g = graph_from_edges(
            [(i, "e", i + 10) for i in range(4)],
            node_labels={**{i: "s" for i in range(4)},
                         **{i + 10: "t" for i in range(4)}},
        )
        q = parse_pattern("u:s -e-> v:t")
        bound = simulation_match_count_bound(q, g)
        assert bound >= 4  # there are exactly 4 matches

    def test_zero_bound_when_unmatchable(self):
        g = line_graph()
        q = parse_pattern("u:nolabel -e-> v:y")
        assert simulation_match_count_bound(q, g) == 0
