"""Tests for load balancing (Prop. 12) and bi-criteria assignment (Prop. 13)."""

import pytest

from repro.parallel import (
    balance_only_assign,
    bicriteria_assign,
    lpt_partition,
    makespan,
    makespan_lower_bound,
    random_assign,
    random_partition,
)
from repro.parallel.multiquery import SharedGroup, GroupMember
from repro.parallel.workload import WorkUnit


def make_unit(weight, size=None, fragment_sizes=None, nodes=None):
    group = SharedGroup(
        leader_index=0,
        members=(GroupMember(index=0, iso={}, lhs=(), rhs=()),),
    )
    size = size if size is not None else int(weight)
    return WorkUnit(
        group=group,
        assignment=(),
        block_nodes=frozenset(nodes or range(size)),
        block_size=size,
        weight=float(weight),
        fragment_sizes=fragment_sizes or {},
    )


class TestLPT:
    def test_example12_assignment(self):
        """Example 12: smallest-first greedy balances 9 units to 76/78/82."""
        sizes = [22, 22, 26, 26, 30, 30, 24, 28, 28]
        units = [make_unit(s) for s in sizes]
        _, loads = lpt_partition(units, 3, smallest_first=True)
        assert sorted(loads) == [76.0, 78.0, 82.0]

    def test_lpt_at_least_as_good_as_paper_order(self):
        sizes = [22, 22, 26, 26, 30, 30, 24, 28, 28]
        units = [make_unit(s) for s in sizes]
        _, lpt_loads = lpt_partition(units, 3)
        _, paper_loads = lpt_partition(units, 3, smallest_first=True)
        assert makespan(lpt_loads) <= makespan(paper_loads)

    def test_all_units_assigned_once(self):
        units = [make_unit(w) for w in (5, 3, 8, 1, 9, 2)]
        plan, _ = lpt_partition(units, 3)
        flat = [u for worker in plan for u in worker]
        assert len(flat) == len(units)
        assert {id(u) for u in flat} == {id(u) for u in units}

    def test_within_graham_bound(self):
        units = [make_unit(w) for w in (7, 7, 6, 5, 5, 4, 4, 3, 3, 1)]
        _, loads = lpt_partition(units, 3)
        assert makespan(loads) <= 2 * makespan_lower_bound(units, 3)

    def test_single_worker(self):
        units = [make_unit(w) for w in (4, 2)]
        plan, loads = lpt_partition(units, 1)
        assert len(plan[0]) == 2
        assert loads[0] == 6.0

    def test_more_workers_than_units(self):
        units = [make_unit(5)]
        plan, loads = lpt_partition(units, 4)
        assert sum(len(w) for w in plan) == 1
        assert makespan(loads) == 5.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            lpt_partition([], 0)

    def test_lower_bound_empty(self):
        assert makespan_lower_bound([], 4) == 0.0


class TestRandomPartition:
    def test_deterministic_per_seed(self):
        units = [make_unit(w) for w in range(1, 9)]
        a, _ = random_partition(units, 3, seed=5)
        b, _ = random_partition(units, 3, seed=5)
        assert [[u.weight for u in w] for w in a] == [
            [u.weight for u in w] for w in b
        ]

    def test_usually_worse_than_lpt(self):
        units = [make_unit(w) for w in (50, 40, 30, 5, 4, 3, 2, 1)]
        _, lpt_loads = lpt_partition(units, 4)
        worse = 0
        for seed in range(10):
            _, rnd_loads = random_partition(units, 4, seed=seed)
            if makespan(rnd_loads) >= makespan(lpt_loads):
                worse += 1
        assert worse >= 8


class TestBicriteria:
    def test_prefers_local_fragment(self):
        # Unit resident on fragment 1: with balance ties, it goes there.
        units = [
            make_unit(10, size=10, fragment_sizes={1: 10}, nodes=[f"a{i}" for i in range(10)]),
        ]
        plan, loads, comm = bicriteria_assign(units, 2)
        assert plan[1] and not plan[0]
        assert comm[1] == 0.0

    def test_balances_under_equal_comm(self):
        units = [make_unit(10, nodes=[i]) for i in range(6)]
        plan, loads, _ = bicriteria_assign(units, 3)
        assert [len(w) for w in plan] == [2, 2, 2]

    def test_resident_blocks_not_recharged(self):
        shared_nodes = [f"n{i}" for i in range(10)]
        units = [
            make_unit(10, size=10, fragment_sizes={0: 10}, nodes=shared_nodes),
            make_unit(10, size=10, fragment_sizes={}, nodes=shared_nodes),
        ]
        plan, _, comm = bicriteria_assign(units, 1)
        # Second unit's block is already resident after the first fetch.
        assert comm[0] < 20.0

    def test_comm_vs_balance_tradeoff(self):
        # All units resident on fragment 0 with high comm weight: the
        # assignment accepts imbalance to avoid shipping.
        units = [
            make_unit(5, size=5, fragment_sizes={0: 5}, nodes=[f"u{i}"])
            for i in range(4)
        ]
        plan, _, _ = bicriteria_assign(units, 2, comm_weight=100.0)
        assert len(plan[0]) == 4

    def test_random_assign_accounts_comm(self):
        units = [
            make_unit(5, size=5, fragment_sizes={0: 5}, nodes=[f"u{i}"])
            for i in range(6)
        ]
        _, _, comm = random_assign(units, 2, seed=3)
        assert sum(comm) > 0  # some unit landed off-fragment

    def test_balance_only_matches_lpt_loads(self):
        units = [make_unit(w, nodes=[w]) for w in (9, 7, 5, 3)]
        _, lpt_loads = lpt_partition(units, 2)
        _, bal_loads, _ = balance_only_assign(units, 2)
        assert sorted(bal_loads) == sorted(lpt_loads)
