"""Tests for repair suggestions (quality/repair.py)."""

import pytest

from repro.core import det_vio, parse_gfd, relation_to_graph, satisfies
from repro.core.gfd import denial
from repro.graph import PropertyGraph
from repro.pattern import parse_pattern
from repro.quality.repair import (
    AttributeWrite,
    apply_repairs,
    candidate_fixes,
    repair_plan,
)


@pytest.fixture
def capital_conflict(phi2):
    graph = PropertyGraph()
    graph.add_node("au", "country", {"val": "Australia"})
    graph.add_node("c1", "city", {"val": "Canberra"})
    graph.add_node("c2", "city", {"val": "Melbourne"})
    graph.add_edge("au", "c1", "capital")
    graph.add_edge("au", "c2", "capital")
    return graph


class TestCandidateFixes:
    def test_variable_rhs_copy_fix(self, capital_conflict, phi2):
        violation = next(iter(det_vio([phi2], capital_conflict)))
        fixes = candidate_fixes(phi2, capital_conflict, violation)
        satisfy = [f for f in fixes if f.kind == "satisfy-rhs"]
        assert satisfy
        assert satisfy[0].cost == 1  # copy one val over the other

    def test_break_lhs_available_when_premise_present(self):
        graph = relation_to_graph("R", [{"A": 1, "B": 2}])
        gfd = parse_gfd("x:R", "x.A = 1 => x.B = 99", name="g")
        violation = next(iter(det_vio([gfd], graph)))
        fixes = candidate_fixes(gfd, graph, violation)
        kinds = {f.kind for f in fixes}
        assert kinds == {"satisfy-rhs", "break-lhs"}

    def test_denial_only_breakable(self, g1):
        rule = denial(parse_pattern("x:flight -number-> y:id"), name="no")
        violation = next(iter(det_vio([rule], g1)))
        fixes = candidate_fixes(rule, g1, violation)
        # The RHS binds one attribute to two constants → unsatisfiable;
        # a denial has an empty LHS, so nothing can be retracted either.
        assert all(f.kind != "satisfy-rhs" for f in fixes)


class TestRepairPlan:
    def test_plan_covers_all_violations(self, capital_conflict, phi2):
        plan = repair_plan([phi2], capital_conflict)
        assert plan.fixes
        assert not plan.unfixable
        assert plan.total_writes >= 1

    def test_conflicting_writes_deduplicated(self):
        # Two rules pulling the same attribute to different constants:
        # the plan keeps only compatible writes.
        graph = relation_to_graph("R", [{"A": 1, "B": 0}])
        up = parse_gfd("x:R", "x.A = 1 => x.B = 2", name="up")
        down = parse_gfd("x:R", "x.A = 1 => x.B = 3", name="down")
        plan = repair_plan([up, down], graph)
        writes = [w for fix in plan.fixes for w in fix.writes]
        values = {}
        for write in writes:
            key = (write.node, write.attr)
            assert values.setdefault(key, write.value) == write.value


class TestApplyRepairs:
    def test_repairs_reach_clean_state(self, capital_conflict, phi2):
        rounds, remaining = apply_repairs([phi2], capital_conflict)
        assert remaining == set()
        assert satisfies([phi2], capital_conflict)
        assert rounds >= 1

    def test_fd_repair(self):
        rows = [
            {"zip": "EH8", "street": "Mayfield"},
            {"zip": "EH8", "street": "Queen St"},
        ]
        graph = relation_to_graph("R", rows)
        fd = parse_gfd("x:R; y:R", "x.zip = y.zip => x.street = y.street",
                       name="fd")
        rounds, remaining = apply_repairs([fd], graph)
        assert remaining == set()
        streets = {graph.get_attr(n, "street") for n in graph.nodes()}
        assert len(streets) == 1  # one street copied onto the other

    def test_break_lhs_used_for_contradictory_rules(self):
        graph = relation_to_graph("R", [{"A": 1, "B": 0}])
        up = parse_gfd("x:R", "x.A = 1 => x.B = 2", name="up")
        down = parse_gfd("x:R", "x.A = 1 => x.B = 3", name="down")
        rounds, remaining = apply_repairs([up, down], graph)
        # Only retracting x.A can clean this; both rules then hold.
        assert remaining == set()
        assert not graph.has_attr(0, "A")

    def test_noop_on_clean_graph(self, g3, phi2):
        rounds, remaining = apply_repairs([phi2], g3)
        assert rounds == 0
        assert remaining == set()

    def test_yago_dataset_repairable(self):
        """Value fixes clean every non-denial rule; denial constraints
        (gfd1) need structural repair, outside this module's fragment."""
        from repro.datasets import yago_like

        ds = yago_like.build(scale=40, seed=13, family_errors=0)
        assert det_vio(ds.gfds, ds.graph)
        rounds, remaining = apply_repairs(ds.gfds, ds.graph, max_rounds=8)
        assert remaining == set()
        assert satisfies(ds.gfds, ds.graph)

    def test_denial_violations_reported_unfixable(self):
        from repro.datasets import yago_like

        ds = yago_like.build(scale=40, seed=13, flight_errors=0,
                             capital_errors=0, mayor_errors=0)
        plan = repair_plan(ds.gfds, ds.graph)
        assert plan.unfixable  # gfd1's child/parent cycles
        assert not plan.fixes


class TestAttributeWrite:
    def test_describe(self):
        assert "clear" in AttributeWrite("n", "A", None).describe()
        assert "set" in AttributeWrite("n", "A", 5).describe()
