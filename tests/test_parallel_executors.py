"""Differential suite: simulated vs. real multiprocess execution.

The central pin of the execution-backend work: for every seeded workload,
assignment strategy, and worker count below, the cost-simulated serial
backend and the real :class:`ProcessPoolExecutor` backend produce

* identical violation sets (both equal to sequential ``detVio``),
* identical per-unit :class:`UnitResult`s (violations, measured steps,
  block sizes), and
* identical :class:`ClusterReport`s (cost charging happens on the
  coordinator from per-unit measurements, so the simulated figures are
  exactly reproducible under real concurrency).

Heavier combinations carry the ``slow`` marker and are excluded from the
default (tier-1) run; CI runs the full matrix.

``REPRO_SHIP_MODE`` (``pickle``/``shm``/``auto``) overrides how the
process backend ships shards, so CI re-runs the identical matrix over
the shared-memory shard plane — same pins, zero-copy transport.
"""

import os

import pytest

from repro.core import det_vio, generate_gfds
from repro.graph import (
    greedy_edge_cut_partition,
    hash_partition,
    power_law_graph,
)
from repro.parallel import (
    MultiprocessExecutor,
    SimulatedCluster,
    build_shared_groups,
    dis_val,
    estimate_workload,
    execute_plan,
    lpt_partition,
    rep_val,
    resolve_executor,
    run_assignment,
    run_concurrently,
    worker_graph,
)
from repro.parallel.engine import BlockMaterialiser

slow = pytest.mark.slow

WORKLOAD_SEEDS = (3, 11)

#: shard transport for every process-backed run in this module — the CI
#: matrix re-runs the whole suite with ``REPRO_SHIP_MODE=shm``.
SHIP_MODE = os.environ.get("REPRO_SHIP_MODE", "auto")


@pytest.fixture(scope="module")
def workloads():
    """Seed -> (graph, sigma, expected detVio violations)."""
    out = {}
    for seed in WORKLOAD_SEEDS:
        graph = power_law_graph(220, 560, seed=seed, domain_size=12)
        sigma = generate_gfds(graph, count=4, pattern_edges=2, seed=seed)
        out[seed] = (graph, sigma, det_vio(sigma, graph))
    return out


def _pin_runs(sim, proc, expected):
    """The differential contract for one (workload, plan) combination."""
    assert sim.executor == "simulated"
    assert proc.executor == "process"
    assert sim.violations == expected
    assert proc.violations == expected
    assert sim.num_units == proc.num_units
    assert sim.report == proc.report  # planning, makespan, comm — all of it
    assert sim.algorithm == proc.algorithm


# One entry per seeded workload/assignment/worker-count combination; the
# acceptance bar is >= 20 combinations across the two parametrized suites.
REP_CASES = [
    # (seed, n, assignment, split_threshold)
    pytest.param(3, 1, "balanced", None, id="rep-s3-n1-balanced"),
    pytest.param(3, 1, "random", None, id="rep-s3-n1-random"),
    pytest.param(3, 2, "balanced", None, id="rep-s3-n2-balanced"),
    pytest.param(3, 2, "random", None, id="rep-s3-n2-random"),
    pytest.param(3, 4, "balanced", None, id="rep-s3-n4-balanced", marks=slow),
    pytest.param(3, 4, "random", None, id="rep-s3-n4-random", marks=slow),
    pytest.param(3, 2, "balanced", 40, id="rep-s3-n2-split40"),
    pytest.param(11, 1, "balanced", None, id="rep-s11-n1-balanced", marks=slow),
    pytest.param(11, 2, "balanced", None, id="rep-s11-n2-balanced"),
    pytest.param(11, 2, "random", None, id="rep-s11-n2-random", marks=slow),
    pytest.param(11, 4, "balanced", None, id="rep-s11-n4-balanced", marks=slow),
    pytest.param(11, 4, "random", None, id="rep-s11-n4-random", marks=slow),
    pytest.param(11, 4, "balanced", 40, id="rep-s11-n4-split40", marks=slow),
]

DIS_CASES = [
    # (seed, n, assignment, partitioner)
    pytest.param(3, 2, "bicriteria", "hash", id="dis-s3-n2-bicriteria"),
    pytest.param(3, 2, "balance_only", "hash", id="dis-s3-n2-balance-only"),
    pytest.param(3, 2, "random", "greedy", id="dis-s3-n2-random", marks=slow),
    pytest.param(3, 4, "bicriteria", "greedy", id="dis-s3-n4-bicriteria",
                 marks=slow),
    pytest.param(3, 4, "random", "hash", id="dis-s3-n4-random", marks=slow),
    pytest.param(3, 4, "balance_only", "greedy", id="dis-s3-n4-balance-only",
                 marks=slow),
    pytest.param(11, 2, "bicriteria", "greedy", id="dis-s11-n2-bicriteria"),
    pytest.param(11, 4, "bicriteria", "hash", id="dis-s11-n4-bicriteria",
                 marks=slow),
    pytest.param(11, 4, "random", "greedy", id="dis-s11-n4-random",
                 marks=slow),
]

PARTITIONERS = {"hash": hash_partition, "greedy": greedy_edge_cut_partition}


class TestRepValDifferential:
    @pytest.mark.parametrize("seed, n, assignment, split", REP_CASES)
    def test_simulated_vs_process(self, workloads, seed, n, assignment, split):
        graph, sigma, expected = workloads[seed]
        kwargs = dict(assignment=assignment, split_threshold=split)
        sim = rep_val(sigma, graph, n=n, **kwargs)
        proc = rep_val(
            sigma, graph, n=n, executor="process", processes=2,
            ship_mode=SHIP_MODE, **kwargs
        )
        _pin_runs(sim, proc, expected)


class TestDisValDifferential:
    @pytest.mark.parametrize("seed, n, assignment, partitioner", DIS_CASES)
    def test_simulated_vs_process(
        self, workloads, seed, n, assignment, partitioner
    ):
        graph, sigma, expected = workloads[seed]
        fragmentation = PARTITIONERS[partitioner](graph, n, seed=seed)
        sim = dis_val(sigma, fragmentation, assignment=assignment)
        proc = dis_val(
            sigma,
            fragmentation,
            assignment=assignment,
            executor="process",
            processes=2,
            ship_mode=SHIP_MODE,
        )
        _pin_runs(sim, proc, expected)


class TestPerUnitResults:
    """The fine-grained pin: every unit's result matches, not just unions."""

    @pytest.mark.parametrize(
        "seed, n",
        [
            pytest.param(3, 2, id="s3-n2"),
            pytest.param(3, 4, id="s3-n4", marks=slow),
            pytest.param(11, 2, id="s11-n2", marks=slow),
        ],
    )
    def test_unit_results_identical(self, workloads, seed, n):
        graph, sigma, _ = workloads[seed]
        units = estimate_workload(
            sigma, graph, groups=build_shared_groups(sigma)
        )
        plan, _ = lpt_partition(units, n)
        sim = execute_plan(sigma, graph, plan, executor="simulated")
        proc = execute_plan(
            sigma, graph, plan, executor="process", processes=2,
            ship_mode=SHIP_MODE,
        )
        assert [len(w) for w in sim] == [len(w) for w in proc]
        compared = 0
        for sim_worker, proc_worker in zip(sim, proc):
            for sim_result, proc_result in zip(sim_worker, proc_worker):
                assert (sim_result is None) == (proc_result is None)
                if sim_result is None:
                    continue
                assert sim_result.violations == proc_result.violations
                assert sim_result.steps == proc_result.steps
                assert sim_result.block_size == proc_result.block_size
                compared += 1
        assert compared == sum(1 for u in units if u.primary)


class TestSkewedAssignments:
    """Hand-built skewed plans: the backends agree even off the balanced path."""

    def _plans(self, units, n):
        pile_up = [list(units)] + [[] for _ in range(n - 1)]
        round_robin = [units[worker::n] for worker in range(n)]
        return {"pile-up": pile_up, "round-robin": round_robin}

    @pytest.mark.parametrize("shape", ["pile-up", "round-robin"])
    def test_skewed_plan_agrees(self, workloads, shape):
        graph, sigma, expected = workloads[3]
        units = estimate_workload(
            sigma, graph, groups=build_shared_groups(sigma)
        )
        plan = self._plans(units, 4)[shape]
        reports = {}
        violations = {}
        for executor in ("simulated", "process"):
            cluster = SimulatedCluster(4)
            violations[executor] = run_assignment(
                sigma, graph, plan, cluster, executor=executor, processes=2,
                ship_mode=SHIP_MODE,
            )
            reports[executor] = cluster.report()
        assert violations["simulated"] == expected
        assert violations["process"] == expected
        assert reports["simulated"] == reports["process"]


class TestExecutorResolution:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor("threads")

    def test_explicit_names_pass_through(self):
        assert resolve_executor("simulated") == "simulated"
        assert resolve_executor("process") == "process"

    def test_auto_small_plan_stays_simulated(self, workloads, monkeypatch):
        from repro.parallel import executors

        monkeypatch.setattr(executors, "usable_cpus", lambda: 4)
        graph, sigma, _ = workloads[3]
        units = estimate_workload(sigma, graph)[:2]
        plan = [units, []]
        assert resolve_executor("auto", plan) == "simulated"

    def test_auto_empty_plan_stays_simulated(self):
        assert resolve_executor("auto", []) == "simulated"

    def test_auto_big_plan_uses_processes_when_cpus_allow(
        self, workloads, monkeypatch
    ):
        from repro.parallel import executors

        graph, sigma, _ = workloads[3]
        units = estimate_workload(sigma, graph)
        assert len(units) >= 8
        plan = [units[0::2], units[1::2]]
        monkeypatch.setattr(executors, "usable_cpus", lambda: 4)
        assert resolve_executor("auto", plan) == "process"
        # An explicit processes= cap below 2 rules the pool out...
        assert resolve_executor("auto", plan, processes=1) == "simulated"
        # ...and a cap above the machine's CPUs cannot rule it in.
        monkeypatch.setattr(executors, "usable_cpus", lambda: 1)
        assert resolve_executor("auto", plan, processes=4) == "simulated"

    def test_auto_threaded_through_entry_points(self, workloads):
        graph, sigma, expected = workloads[3]
        run = rep_val(sigma, graph, n=2, executor="auto", processes=1)
        assert run.executor == "simulated"
        assert run.violations == expected

    def test_invalid_executor_at_entry_point(self, workloads):
        graph, sigma, _ = workloads[3]
        with pytest.raises(ValueError):
            rep_val(sigma, graph, n=2, executor="threads")

    def test_invalid_process_count_rejected(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(processes=0)


class TestWorkerGraph:
    """Shard-local payloads: exactly the union of the assigned blocks."""

    def test_contains_exactly_needed_nodes(self, workloads):
        graph, sigma, _ = workloads[3]
        units = estimate_workload(sigma, graph)
        shard = worker_graph(graph, units[:3])
        needed = set().union(*(u.block_nodes for u in units[:3]))
        assert set(shard.nodes()) == needed

    def test_blocks_from_shard_equal_blocks_from_graph(self, workloads):
        graph, sigma, _ = workloads[3]
        units = estimate_workload(sigma, graph)
        shard = worker_graph(graph, units[:3])
        for unit in units[:3]:
            assert shard.induced_subgraph(unit.block_nodes) == (
                graph.induced_subgraph(unit.block_nodes)
            )


class TestSharedMaterialiser:
    """Satellite: the LRU budget is shared safely across concurrent workers."""

    def test_no_duplicate_builds_across_threads(self, workloads):
        graph, sigma, _ = workloads[3]
        units = estimate_workload(sigma, graph)
        distinct_blocks = {u.block_nodes for u in units}
        materialiser = BlockMaterialiser(graph)
        # Four "workers" all materialise every block concurrently.
        tasks = [list(distinct_blocks) for _ in range(4)]
        run_concurrently(tasks, materialiser.block)
        assert materialiser.builds == len(distinct_blocks)

    def test_matcher_deduped_across_threads(self, workloads):
        graph, sigma, _ = workloads[3]
        units = estimate_workload(sigma, graph)
        block_nodes = units[0].block_nodes
        leader = units[0].group.leader_index
        materialiser = BlockMaterialiser(graph)
        results = run_concurrently(
            [[0]] * 4,
            lambda _task: materialiser.matcher(sigma, leader, block_nodes),
        )
        matchers = {id(worker[0][1]) for worker in results}
        assert len(matchers) == 1  # one matcher per (pattern, block)

    def test_eviction_accounting_stays_consistent(self, workloads):
        graph, sigma, _ = workloads[3]
        units = estimate_workload(sigma, graph)
        tiny = BlockMaterialiser(graph, budget=1)  # evict on every build
        for unit in units[:6]:
            tiny.block(unit.block_nodes)
        cached = sum(
            block.size for block, _ in tiny._cache.values()
        )
        assert tiny._retained == cached
        # Rebuild-on-reuse after eviction still yields correct blocks.
        block = tiny.block(units[0].block_nodes)
        assert set(block.nodes()) == set(units[0].block_nodes)
