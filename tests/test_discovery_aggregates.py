"""Satellite: the aggregates ≡ matches equivalence contract.

Discovery's parallel data path ships mergeable
:class:`~repro.core.discovery.EvidenceAggregate` payloads instead of
match lists (see ``ISSUE 5`` / ``ROADMAP``); the mined rule set is only
allowed to be identical to serial mining if dependency proposals from
*merged worker aggregates* equal proposals from the *full canonical
match list* — whatever the graph, however the matches are partitioned
into units and workers, and however the partial aggregates are merged.
This suite is the property-level lock on that contract, plus the two
documented match-shipping fallbacks (the ``max_matches`` cap and the
explicit seeded evidence sample) and the budget knob's degradation path.
"""

import random

import pytest

from repro import (
    EvidenceAggregate,
    ValidationSession,
    discover_gfds,
    power_law_graph,
)
from repro.core.discovery import (
    candidate_dependencies,
    candidate_patterns,
    canonical_matches,
)
from repro.datasets import dbpedia_like, pokec_like
from repro.matching import SubgraphMatcher

PARAMS = dict(min_support=3, min_confidence=0.85)


def graph_workloads():
    """(name, graph) pairs spanning distinct generators and shapes."""
    dense = power_law_graph(
        150, 360, seed=3, domain_size=6,
        node_labels=["person", "city", "org"],
        edge_labels=["knows", "in", "for"],
    )
    skewed = power_law_graph(
        120, 300, alpha=1.6, seed=11, domain_size=4,
        node_labels=["a", "b"], edge_labels=["e1", "e2"],
        attributes=("A", "B", "C"),
    )
    return [
        ("power_law_dense", dense),
        ("power_law_skewed", skewed),
        ("dbpedia_like", dbpedia_like.build(scale=120, seed=5).graph),
        ("pokec_like", pokec_like.build(seed=7).graph),
    ]


WORKLOADS = graph_workloads()


def pattern_matches(graph, limit=6):
    """Per candidate pattern, its full match list (patterns with any)."""
    out = []
    for pattern in candidate_patterns(graph)[:limit]:
        matches = list(SubgraphMatcher(pattern, graph).matches())
        if matches:
            out.append((pattern, matches))
    return out


def chunked(matches, pieces, seed):
    """A seeded partition of the match list into ``pieces`` chunks."""
    shuffled = list(matches)
    random.Random(seed).shuffle(shuffled)
    chunks = [[] for _ in range(pieces)]
    for position, match in enumerate(shuffled):
        chunks[position % pieces].append(match)
    return chunks


class TestAggregateEquivalence:
    """Merged chunk folds ≡ one fold ≡ the match-list proposal."""

    @pytest.mark.parametrize("name,graph", WORKLOADS,
                             ids=[name for name, _ in WORKLOADS])
    @pytest.mark.parametrize("pieces", [1, 2, 3, 5])
    def test_merged_chunks_propose_identically(self, name, graph, pieces):
        found_any = False
        for pattern, matches in pattern_matches(graph):
            reference = candidate_dependencies(
                pattern, graph, canonical_matches(matches)
            )
            merged = EvidenceAggregate()
            for chunk in chunked(matches, pieces, seed=pieces):
                merged.merge(EvidenceAggregate.from_matches(graph, chunk))
            assert merged.propose(pattern) == reference, (name, pieces)
            assert merged.count == len(matches)
            found_any = found_any or bool(reference)
        assert found_any, f"{name}: no pattern proposed anything"

    @pytest.mark.parametrize("merge_seed", range(4))
    def test_merge_order_invariance(self, merge_seed):
        _, graph = WORKLOADS[0]
        pattern, matches = max(
            pattern_matches(graph), key=lambda pair: len(pair[1])
        )
        parts = [
            EvidenceAggregate.from_matches(graph, chunk)
            for chunk in chunked(matches, 6, seed=1)
        ]
        random.Random(merge_seed).shuffle(parts)
        merged = EvidenceAggregate()
        for part in parts:
            merged.merge(part)
        baseline = EvidenceAggregate.from_matches(
            graph, canonical_matches(matches)
        )
        # Same payload byte-for-byte, not merely the same proposals:
        # folding is commutative and associative all the way down.
        assert merged.to_payload() == baseline.to_payload()

    def test_payload_round_trip(self):
        _, graph = WORKLOADS[0]
        for pattern, matches in pattern_matches(graph):
            aggregate = EvidenceAggregate.from_matches(graph, matches)
            restored = EvidenceAggregate.from_payload(aggregate.to_payload())
            assert restored.to_payload() == aggregate.to_payload()
            assert restored.propose(pattern) == aggregate.propose(pattern)

    def test_rename_commutes_with_folding(self):
        """Renaming the aggregate ≡ folding the translated matches (the
        isomorphism-group member view of the leader's enumeration)."""
        _, graph = WORKLOADS[0]
        pattern, matches = pattern_matches(graph)[0]
        iso = {var: f"m_{var}" for var in pattern.variables}
        renamed = EvidenceAggregate.from_matches(graph, matches).rename(iso)
        translated = EvidenceAggregate.from_matches(
            graph,
            [{iso[var]: node for var, node in match.items()}
             for match in matches],
        )
        assert renamed.to_payload() == translated.to_payload()

    def test_value_table_many_semantics(self):
        """Exactly one distinct value proposes a constant rule; a second
        value anywhere (same unit or a merged one) kills it."""
        from repro.graph import PropertyGraph

        graph = PropertyGraph()
        for index in range(6):
            graph.add_node(f"p{index}", "person",
                           {"uniform": "k", "varied": f"v{index % 2}"})
            graph.add_node(f"c{index}", "city", None)
            graph.add_edge(f"p{index}", f"c{index}", "in")
        pattern = candidate_patterns(graph)[0]
        matches = list(SubgraphMatcher(pattern, graph).matches())
        halves = chunked(matches, 2, seed=0)
        merged = EvidenceAggregate.from_matches(graph, halves[0]).merge(
            EvidenceAggregate.from_matches(graph, halves[1])
        )
        constants = {
            (rhs[0].attr, rhs[0].const)
            for lhs, rhs in merged.propose(pattern)
            if not lhs and rhs[0].var == "x"
        }
        assert ("uniform", "k") in constants
        assert not any(attr == "varied" for attr, _ in constants)
        assert merged.values[("x", "varied")] is EvidenceAggregate.MANY

    def test_empty_aggregate_proposes_nothing(self):
        _, graph = WORKLOADS[0]
        pattern, _ = pattern_matches(graph)[0]
        assert EvidenceAggregate().propose(pattern) == []


class TestFactorisedEquivalence:
    """Tentpole lock: count-only factorised evaluation is observationally
    identical to VF2 enumeration — exact counts, byte-identical
    :class:`EvidenceAggregate` payloads, identical dependency tallies,
    and the same mined rule set — across every workload generator and
    however the pivot space is partitioned into pinned sub-queries
    (mirroring the parallel engine's per-unit evaluation)."""

    @pytest.mark.parametrize("name,graph", WORKLOADS,
                             ids=[name for name, _ in WORKLOADS])
    def test_counts_evidence_tallies_match_enumeration(self, name, graph):
        covered = 0
        for pattern in candidate_patterns(graph)[:8]:
            matcher = SubgraphMatcher(pattern, graph)
            if matcher.factorised_plan() is None:
                continue
            covered += 1
            matches = list(matcher.matches())
            assert matcher.count_matches(eval_mode="factorised") \
                == len(matches)
            fact_count, fact_agg = matcher.evidence(eval_mode="factorised")
            enum_count, enum_agg = matcher.evidence(eval_mode="enumerate")
            assert fact_count == enum_count == len(matches)
            # Byte-identical evidence, not merely identical proposals.
            assert fact_agg.to_payload() == enum_agg.to_payload()
            deps = enum_agg.propose(pattern)
            if deps:
                assert matcher.dependency_tallies(
                    deps, eval_mode="factorised"
                ) == matcher.dependency_tallies(
                    deps, eval_mode="enumerate"
                )
        assert covered, f"{name}: no factorisable candidate pattern"

    @pytest.mark.parametrize("name,graph", WORKLOADS,
                             ids=[name for name, _ in WORKLOADS])
    @pytest.mark.parametrize("pieces", [1, 2, 3, 5])
    def test_pinned_partitions_fold_to_whole(self, name, graph, pieces):
        """Splitting a pattern's pivot space into pinned sub-queries and
        folding the per-pin factorised evidence reproduces the unpinned
        whole — the invariant the engine's mine units rely on."""
        from repro.matching import compute_candidates

        covered = 0
        for pattern in candidate_patterns(graph)[:4]:
            matcher = SubgraphMatcher(pattern, graph)
            if matcher.factorised_plan() is None:
                continue
            covered += 1
            whole_count, whole_agg = matcher.evidence(
                eval_mode="factorised"
            )
            var = min(pattern.variables)
            nodes = sorted(compute_candidates(pattern, graph)[var], key=str)
            merged = EvidenceAggregate()
            total = 0
            for chunk in chunked(nodes, pieces, seed=pieces):
                part = EvidenceAggregate()
                for node in chunk:
                    pin_count, pin_agg = matcher.evidence(
                        fixed={var: node}, eval_mode="factorised"
                    )
                    total += pin_count
                    part.merge(pin_agg)
                merged.merge(part)
            assert total == whole_count, (name, pieces)
            assert merged.to_payload() == whole_agg.to_payload()
        assert covered, f"{name}: no factorisable candidate pattern"

    @pytest.mark.parametrize("name,graph", WORKLOADS,
                             ids=[name for name, _ in WORKLOADS])
    def test_mined_rules_identical_across_eval_modes(self, name, graph):
        runs = {
            mode: discover_gfds(graph, eval_mode=mode, **PARAMS)
            for mode in ("auto", "factorised", "enumerate")
        }
        keys = {
            mode: [(d.gfd.name, d.support, d.confidence) for d in run]
            for mode, run in runs.items()
        }
        assert keys["auto"] == keys["factorised"] == keys["enumerate"]


class TestFallbackPaths:
    """The two documented match-shipping fallbacks, plus the budget knob."""

    @pytest.fixture(scope="class")
    def mining_graph(self):
        return power_law_graph(
            170, 400, seed=0, domain_size=7,
            node_labels=["person", "city", "org"],
            edge_labels=["knows", "in", "for"],
        )

    @pytest.mark.parametrize("executor,processes", [
        ("simulated", None), ("process", 2),
    ])
    def test_seeded_sample_falls_back_to_match_shipping(
        self, mining_graph, executor, processes
    ):
        serial = discover_gfds(mining_graph, sample_size=12, seed=4, **PARAMS)
        with ValidationSession(
            mining_graph, [], executor=executor, processes=processes
        ) as session:
            run = session.discover(n=3, sample_size=12, seed=4, **PARAMS)
        assert [(d.gfd.name, d.support, d.confidence) for d in run.rules] \
            == [(d.gfd.name, d.support, d.confidence) for d in serial]

    @pytest.mark.parametrize("executor,processes", [
        ("simulated", None), ("process", 2),
    ])
    def test_capped_pattern_falls_back_to_match_fetch(
        self, mining_graph, executor, processes
    ):
        serial = discover_gfds(mining_graph, max_matches=15, **PARAMS)
        with ValidationSession(
            mining_graph, [], executor=executor, processes=processes
        ) as session:
            run = session.discover(n=3, max_matches=15, **PARAMS)
        assert [(d.gfd.name, d.support, d.confidence) for d in run.rules] \
            == [(d.gfd.name, d.support, d.confidence) for d in serial]
        assert run.capped_rules or any(
            d.support == 15 for d in run.rules
        )  # the cap demonstrably engaged somewhere

    def test_zero_match_budget_disables_replay_not_correctness(
        self, mining_graph
    ):
        serial = discover_gfds(mining_graph, **PARAMS)
        with ValidationSession(
            mining_graph, [], executor="process", processes=2,
            match_store_budget=0,
        ) as session:
            run = session.discover(n=3, **PARAMS)
            count_phase = run.phase("count")
        assert [(d.gfd.name, d.support, d.confidence) for d in run.rules] \
            == [(d.gfd.name, d.support, d.confidence) for d in serial]
        # Nothing was resident, so counting re-enumerated — and still
        # shipped zero block-shares (the shard stays warm regardless).
        store = count_phase.match_store
        assert store is not None and store.hits == 0
        assert count_phase.shipping.full == 0
        assert count_phase.shipping.shipped_nodes == 0

    @pytest.mark.parametrize("executor,processes", [
        ("simulated", None), ("process", 2),
    ])
    def test_eval_modes_agree_with_serial_mining(
        self, mining_graph, executor, processes
    ):
        """Every evaluation mode, on every backend, mines the serial
        rule set — and the telemetry proves which path actually ran."""
        serial = discover_gfds(mining_graph, **PARAMS)
        assert serial
        reference = [(d.gfd.name, d.support, d.confidence) for d in serial]
        for mode in ("auto", "factorised", "enumerate"):
            with ValidationSession(
                mining_graph, [], executor=executor, processes=processes
            ) as session:
                run = session.discover(n=3, eval_mode=mode, **PARAMS)
            assert [(d.gfd.name, d.support, d.confidence)
                    for d in run.rules] == reference, (executor, mode)
            if mode == "factorised":
                # Strict mode: zero VF2 enumerations in mine and count.
                assert run.phase("enumerate").vf2_units == 0
                assert run.phase("count").vf2_units == 0
            if mode == "enumerate":
                assert run.phase("enumerate").vf2_units > 0

    def test_tiny_match_budget_evicts_and_reenumerates(self, mining_graph):
        # Pinned under eval_mode="enumerate": the eviction/re-enumeration
        # degradation path only exists when mining deposits matches.
        serial = discover_gfds(mining_graph, **PARAMS)
        with ValidationSession(
            mining_graph, [], executor="process", processes=2,
            match_store_budget=8,
        ) as session:
            run = session.discover(n=3, eval_mode="enumerate", **PARAMS)
            count_phase = run.phase("count")
        assert [(d.gfd.name, d.support, d.confidence) for d in run.rules] \
            == [(d.gfd.name, d.support, d.confidence) for d in serial]
        store = count_phase.match_store
        # Some units miss (their entries were evicted or refused) —
        # the fallback is transparent re-enumeration, not wrong counts.
        assert store is not None and store.misses > 0
