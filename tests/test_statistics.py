"""Tests for graph statistics: histograms and balanced ranges (§6.1)."""

import pytest

from repro.graph import (
    EquiDepthHistogram,
    PropertyGraph,
    balanced_ranges,
    candidates_in_range,
    degree_statistics,
    edge_label_frequencies,
    label_frequencies,
    power_law_graph,
    skewness_ratio,
    uniform_random_graph,
)


@pytest.fixture
def labelled():
    g = PropertyGraph()
    for i in range(9):
        g.add_node(i, "flight" if i < 6 else "city", {"val": f"f{i:02d}"})
    g.add_edge(0, 6, "from")
    g.add_edge(1, 6, "from")
    g.add_edge(2, 7, "to")
    return g


class TestFrequencies:
    def test_label_frequencies(self, labelled):
        freq = label_frequencies(labelled)
        assert freq["flight"] == 6
        assert freq["city"] == 3

    def test_edge_label_frequencies(self, labelled):
        freq = edge_label_frequencies(labelled)
        assert freq["from"] == 2
        assert freq["to"] == 1

    def test_degree_statistics(self, labelled):
        stats = degree_statistics(labelled)
        assert stats["max"] == 2  # node 6 has two in-edges
        assert stats["min"] == 0


class TestEquiDepthHistogram:
    def test_even_depths(self):
        hist = EquiDepthHistogram(list(range(12)), buckets=3)
        assert hist.depths == [4, 4, 4]

    def test_uneven_split(self):
        hist = EquiDepthHistogram(list(range(10)), buckets=3)
        assert sorted(hist.depths) == [3, 3, 4]
        assert sum(hist.depths) == 10

    def test_bucket_lookup(self):
        hist = EquiDepthHistogram([1, 2, 3, 10, 20, 30], buckets=2)
        assert hist.bucket_of(2) == 0
        assert hist.bucket_of(20) == 1

    def test_lookup_clamps_out_of_range(self):
        hist = EquiDepthHistogram([5, 6, 7], buckets=1)
        assert hist.bucket_of(-100) == 0
        assert hist.bucket_of(100) == 0

    def test_more_buckets_than_values(self):
        hist = EquiDepthHistogram([1, 2], buckets=5)
        assert len(hist) == 2

    def test_empty(self):
        hist = EquiDepthHistogram([], buckets=3)
        assert len(hist) == 0
        with pytest.raises(ValueError):
            hist.bucket_of(1)

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram([1], buckets=0)


class TestBalancedRanges:
    def test_ranges_cover_candidates_evenly(self, labelled):
        ranges = balanced_ranges(labelled, "flight", "val", m=3)
        assert len(ranges) == 3
        counts = [
            len(candidates_in_range(labelled, "flight", "val", r))
            for r in ranges
        ]
        assert counts == [2, 2, 2]

    def test_union_of_ranges_covers_all(self, labelled):
        ranges = balanced_ranges(labelled, "flight", "val", m=2)
        seen = set()
        for r in ranges:
            seen.update(candidates_in_range(labelled, "flight", "val", r))
        assert seen == labelled.nodes_with_label("flight")

    def test_missing_label(self, labelled):
        assert balanced_ranges(labelled, "nothing", "val", m=2) == []


class TestSkewness:
    def test_skewed_graph_has_smaller_ratio(self):
        uniform = uniform_random_graph(150, 400, seed=3)
        skewed = power_law_graph(150, 400, alpha=1.6, seed=3)
        assert skewness_ratio(skewed, d=2) < skewness_ratio(uniform, d=2)

    def test_ratio_bounded(self):
        g = uniform_random_graph(60, 120, seed=1)
        ratio = skewness_ratio(g, d=2)
        assert 0 < ratio <= 1.0
