"""Unit tests for the property-graph core (Section 2 data model)."""

import pytest

from repro.graph import GraphError, PropertyGraph, graph_from_edges


@pytest.fixture
def triangle():
    g = PropertyGraph()
    g.add_node(1, "a", {"val": 1})
    g.add_node(2, "b", {"val": 2})
    g.add_node(3, "c")
    g.add_edge(1, 2, "e")
    g.add_edge(2, 3, "f")
    g.add_edge(3, 1, "g")
    return g


class TestConstruction:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert triangle.size == 6
        assert len(triangle) == 3

    def test_contains(self, triangle):
        assert 1 in triangle
        assert 99 not in triangle

    def test_add_edge_requires_endpoints(self, triangle):
        with pytest.raises(GraphError):
            triangle.add_edge(1, 99, "e")
        with pytest.raises(GraphError):
            triangle.add_edge(99, 1, "e")

    def test_duplicate_edge_is_noop(self, triangle):
        triangle.add_edge(1, 2, "e")
        assert triangle.num_edges == 3

    def test_parallel_edges_different_labels(self, triangle):
        triangle.add_edge(1, 2, "other")
        assert triangle.num_edges == 4
        assert triangle.has_edge(1, 2, "e")
        assert triangle.has_edge(1, 2, "other")

    def test_relabel_node_updates_index(self, triangle):
        triangle.add_node(1, "z")
        assert 1 in triangle.nodes_with_label("z")
        assert 1 not in triangle.nodes_with_label("a")

    def test_readding_node_merges_attrs(self, triangle):
        triangle.add_node(1, "a", {"extra": True})
        assert triangle.get_attr(1, "val") == 1
        assert triangle.get_attr(1, "extra") is True


class TestRemoval:
    def test_remove_edge(self, triangle):
        triangle.remove_edge(1, 2, "e")
        assert not triangle.has_edge(1, 2)
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_edge(1, 3, "nope")

    def test_remove_node_drops_incident_edges(self, triangle):
        triangle.remove_node(2)
        assert 2 not in triangle
        assert triangle.num_edges == 1  # only 3 -g-> 1 remains
        assert triangle.has_edge(3, 1, "g")

    def test_remove_unknown_node_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_node(42)


class TestAttributes:
    def test_get_set(self, triangle):
        triangle.set_attr(3, "color", "red")
        assert triangle.get_attr(3, "color") == "red"
        assert triangle.has_attr(3, "color")

    def test_missing_attr_default(self, triangle):
        assert triangle.get_attr(3, "nope") is None
        assert triangle.get_attr(3, "nope", 7) == 7
        assert not triangle.has_attr(3, "nope")

    def test_set_attr_unknown_node(self, triangle):
        with pytest.raises(GraphError):
            triangle.set_attr(99, "a", 1)


class TestAdjacency:
    def test_neighbors(self, triangle):
        assert set(triangle.out_neighbors(1)) == {2}
        assert set(triangle.in_neighbors(1)) == {3}

    def test_degrees(self, triangle):
        assert triangle.out_degree(1) == 1
        assert triangle.in_degree(1) == 1
        assert triangle.degree(1) == 2

    def test_labels(self, triangle):
        assert triangle.labels() == {"a", "b", "c"}
        assert triangle.edge_labels() == {"e", "f", "g"}

    def test_nodes_with_label(self, triangle):
        assert triangle.nodes_with_label("a") == {1}
        assert triangle.nodes_with_label("unknown") == set()

    def test_edges_iteration(self, triangle):
        assert set(triangle.edges()) == {(1, 2, "e"), (2, 3, "f"), (3, 1, "g")}


class TestDerivedGraphs:
    def test_copy_independent(self, triangle):
        clone = triangle.copy()
        clone.add_node(4, "d")
        clone.set_attr(1, "val", 99)
        assert 4 not in triangle
        assert triangle.get_attr(1, "val") == 1
        assert clone == clone

    def test_equality(self, triangle):
        assert triangle == triangle.copy()
        other = triangle.copy()
        other.set_attr(1, "val", 0)
        assert triangle != other

    def test_induced_subgraph(self, triangle):
        sub = triangle.induced_subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.has_edge(1, 2, "e")

    def test_induced_subgraph_unknown_node(self, triangle):
        with pytest.raises(GraphError):
            triangle.induced_subgraph([1, 42])

    def test_is_subgraph_of(self, triangle):
        sub = triangle.induced_subgraph([1, 2])
        assert sub.is_subgraph_of(triangle)
        assert not triangle.is_subgraph_of(sub)

    def test_subgraph_requires_equal_attrs(self, triangle):
        sub = triangle.induced_subgraph([1, 2])
        sub.set_attr(1, "val", 42)
        assert not sub.is_subgraph_of(triangle)

    def test_merge(self, triangle):
        other = PropertyGraph()
        other.add_node(3, "c", {"fresh": 1})
        other.add_node(4, "d")
        other.add_edge(3, 4, "h")
        triangle.merge(other)
        assert triangle.num_nodes == 4
        assert triangle.has_edge(3, 4, "h")
        assert triangle.get_attr(3, "fresh") == 1


class TestGraphFromEdges:
    def test_basic(self):
        g = graph_from_edges(
            [("a", "knows", "b"), ("b", "knows", "c")],
            node_labels={"a": "person", "b": "person", "c": "person"},
        )
        assert g.num_nodes == 3
        assert g.has_edge("a", "b", "knows")

    def test_default_label_and_isolated(self):
        g = graph_from_edges([("x", "e", "y")], node_labels={"z": "lonely"})
        assert g.label("x") == "node"
        assert g.label("z") == "lonely"
        assert g.num_nodes == 3
