"""Tests for typed (finite-domain) satisfiability — the §8 extension."""

import pytest

from repro.core import is_satisfiable, parse_gfd
from repro.core.typed import TypeSchema, is_satisfiable_typed, type_conflicts


class TestTypeSchema:
    def test_declare_and_lookup(self):
        schema = TypeSchema()
        schema.declare("account", "is_fake", {"true", "false"})
        assert schema.domain("account", "is_fake") == {"true", "false"}
        assert schema.domain("account", "age") is None
        assert len(schema) == 1

    def test_empty_domain_rejected(self):
        schema = TypeSchema()
        with pytest.raises(ValueError):
            schema.declare("x", "a", set())

    def test_conformance_check(self):
        from repro.graph import PropertyGraph

        schema = TypeSchema()
        schema.declare("account", "is_fake", {"true", "false"})
        g = PropertyGraph()
        g.add_node(1, "account", {"is_fake": "maybe"})
        g.add_node(2, "account", {"is_fake": "true"})
        bad = schema.conforms(g)
        assert bad == [(1, "is_fake", "maybe")]


class TestTypedSatisfiability:
    def test_unconstrained_matches_classical(self):
        phi7 = parse_gfd("x:tau", " => x.A = 'c'")
        phi7b = parse_gfd("x:tau", " => x.A = 'd'")
        schema = TypeSchema()
        assert is_satisfiable_typed([phi7], schema)
        assert not is_satisfiable_typed([phi7, phi7b], schema)

    def test_out_of_domain_conclusion_unsatisfiable(self):
        """Classically fine, but the forced value is outside the domain."""
        rule = parse_gfd("x:account", " => x.is_fake = 'maybe'", name="weird")
        schema = TypeSchema()
        schema.declare("account", "is_fake", {"true", "false"})
        assert is_satisfiable([rule])  # no schema: fine
        assert not is_satisfiable_typed([rule], schema)
        assert type_conflicts([rule], schema)

    def test_case_split_conflict(self):
        """Both domain values trigger a clash — the CFD-style gadget.

        Classically satisfiable (leave x.flag absent), but the Boolean
        domain plus a completeness rule forces one of the two branches.
        """
        parse_gfd("x:tau", " => x.flag = x.flag")  # flag must exist
        # Under satisfaction semantics the tautological RHS enforces
        # presence, but for reasoning it is vacuous — so drive the split
        # through premise rules instead:
        on = parse_gfd("x:tau", "x.flag = 'on' => x.A = '1'", name="on")
        off = parse_gfd("x:tau", "x.flag = 'off' => x.A = '2'", name="off")
        pin = parse_gfd("x:tau", " => x.A = '3'", name="pin")
        schema = TypeSchema()
        schema.declare("tau", "flag", {"on", "off"})
        # Classically: leave flag absent → only 'pin' fires → satisfiable.
        assert is_satisfiable([on, off, pin])
        # With the domain, flag may still be ABSENT (domains constrain
        # values, not existence), so the set stays satisfiable...
        assert is_satisfiable_typed([on, off, pin], schema)

    def test_forced_split_both_branches_conflict(self):
        """When a rule *forces* the attribute to exist with some domain
        value, and every value conflicts, Σ is unsatisfiable."""
        force_on = parse_gfd("x:tau", " => x.flag = 'on'", name="force")
        on = parse_gfd("x:tau", "x.flag = 'on' => x.A = '1'", name="on")
        pin = parse_gfd("x:tau", " => x.A = '3'", name="pin")
        schema = TypeSchema()
        schema.declare("tau", "flag", {"on", "off"})
        assert not is_satisfiable_typed([force_on, on, pin], schema)
        # Without the firing chain it stays satisfiable.
        assert is_satisfiable_typed([force_on, pin], schema)

    def test_split_on_existence_forcing_rule(self):
        """A variable-literal conclusion forces the attribute to exist
        with an unknown value; the Boolean domain then case-splits, and
        both branches clash — unsatisfiable under the schema only."""
        exists = parse_gfd(
            "x:tau -e-> y:tau", " => x.flag = y.flag", name="exists"
        )
        on = parse_gfd("x:tau", "x.flag = 'on' => x.A = '1'", name="on")
        off = parse_gfd("x:tau", "x.flag = 'off' => x.A = '2'", name="off")
        pin = parse_gfd("x:tau", " => x.A = '3'", name="pin")
        sigma = [exists, on, off, pin]
        assert is_satisfiable(sigma)  # classically: flag gets a fresh value
        schema = TypeSchema()
        schema.declare("tau", "flag", {"on", "off"})
        assert not is_satisfiable_typed(sigma, schema)
        # A three-valued domain leaves an escape hatch.
        wider = TypeSchema()
        wider.declare("tau", "flag", {"on", "off", "dunno"})
        assert is_satisfiable_typed(sigma, wider)

    def test_split_resolves_when_one_branch_survives(self):
        force = parse_gfd("x:tau", " => x.flag = 'off'", name="force")
        on = parse_gfd("x:tau", "x.flag = 'on' => x.A = '1'", name="on")
        pin = parse_gfd("x:tau", " => x.A = '3'", name="pin")
        schema = TypeSchema()
        schema.declare("tau", "flag", {"on", "off"})
        # flag = 'off' avoids the clash branch entirely.
        assert is_satisfiable_typed([force, on, pin], schema)

    def test_empty_sigma(self):
        assert is_satisfiable_typed([], TypeSchema())

    def test_type_conflicts_reports_nothing_when_clean(self):
        rule = parse_gfd("x:account", " => x.is_fake = 'true'")
        schema = TypeSchema()
        schema.declare("account", "is_fake", {"true", "false"})
        assert type_conflicts([rule], schema) == []
