"""Tests for GFD satisfaction semantics (Section 3)."""

from repro.graph import PropertyGraph
from repro.core import (
    match_satisfies,
    match_satisfies_all,
    match_satisfies_literal,
    make_gfd,
    parse_gfd,
    satisfies_generic,
)
from repro.core.literals import ConstantLiteral, VariableLiteral
from repro.core.satisfaction import GENERIC_ATTR
from repro.pattern import parse_pattern


def single_node_graph(attrs):
    g = PropertyGraph()
    g.add_node("v", "R", attrs)
    return g


class TestLiteralSatisfaction:
    def test_constant_holds(self):
        g = single_node_graph({"A": 1})
        assert match_satisfies_literal(g, {"x": "v"}, ConstantLiteral("x", "A", 1))

    def test_constant_wrong_value(self):
        g = single_node_graph({"A": 2})
        assert not match_satisfies_literal(g, {"x": "v"}, ConstantLiteral("x", "A", 1))

    def test_missing_attribute_fails_literal(self):
        g = single_node_graph({})
        assert not match_satisfies_literal(g, {"x": "v"}, ConstantLiteral("x", "A", 1))

    def test_variable_literal(self):
        g = PropertyGraph()
        g.add_node("u", "R", {"A": 5})
        g.add_node("w", "R", {"B": 5})
        match = {"x": "u", "y": "w"}
        assert match_satisfies_literal(g, match, VariableLiteral("x", "A", "y", "B"))
        assert not match_satisfies_literal(g, match, VariableLiteral("x", "A", "y", "C"))

    def test_empty_conjunction_holds(self):
        g = single_node_graph({})
        assert match_satisfies_all(g, {"x": "v"}, [])


class TestDependencySemantics:
    def test_missing_lhs_attribute_trivially_satisfies(self):
        """Section 3, observation (1): absent X-attribute ⇒ trivial holds."""
        g = single_node_graph({})  # no attribute A at all
        gfd = parse_gfd("x:R", "x.A = 1 => x.B = 2")
        assert match_satisfies(g, {"x": "v"}, gfd)

    def test_rhs_attribute_must_exist(self):
        """Section 3, observation (2): Y-literals require the attribute."""
        g = single_node_graph({"A": 1})  # B absent
        gfd = parse_gfd("x:R", "x.A = 1 => x.B = 2")
        assert not match_satisfies(g, {"x": "v"}, gfd)

    def test_satisfied_dependency(self):
        g = single_node_graph({"A": 1, "B": 2})
        gfd = parse_gfd("x:R", "x.A = 1 => x.B = 2")
        assert match_satisfies(g, {"x": "v"}, gfd)

    def test_empty_lhs_applies_to_all_matches(self):
        g = single_node_graph({"B": 3})
        gfd = parse_gfd("x:R", " => x.B = 2")
        assert not match_satisfies(g, {"x": "v"}, gfd)


class TestGenericAttributes:
    def test_is_a_inheritance_violation(self):
        """Example 5(3): penguins marked as birds that can fly."""
        g = PropertyGraph()
        g.add_node("bird", "bird", {"can_fly": "true"})
        g.add_node("penguin", "penguin", {"can_fly": "false"})
        g.add_edge("penguin", "bird", "is_a")
        pattern = parse_pattern("y -is_a-> x")
        gfd = make_gfd(
            pattern,
            rhs=[VariableLiteral("x", GENERIC_ATTR, "y", GENERIC_ATTR)],
            name="phi3",
        )
        match = {"x": "bird", "y": "penguin"}
        assert not satisfies_generic(g, match, gfd)

    def test_is_a_consistent(self):
        g = PropertyGraph()
        g.add_node("bird", "bird", {"can_fly": "true"})
        g.add_node("robin", "robin", {"can_fly": "true"})
        g.add_edge("robin", "bird", "is_a")
        pattern = parse_pattern("y -is_a-> x")
        gfd = make_gfd(
            pattern, rhs=[VariableLiteral("x", GENERIC_ATTR, "y", GENERIC_ATTR)]
        )
        assert satisfies_generic(g, {"x": "bird", "y": "robin"}, gfd)

    def test_generic_falls_back_to_plain(self):
        g = single_node_graph({"A": 1, "B": 2})
        gfd = parse_gfd("x:R", "x.A = 1 => x.B = 2")
        assert satisfies_generic(g, {"x": "v"}, gfd)
