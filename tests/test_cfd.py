"""Tests for FDs/CFDs as GFD special cases (Section 3, Example 5(4))."""

from repro.core import CFD, FD, det_vio, relation_to_graph, satisfies
from repro.core.cfd import UNCONSTRAINED, type_requirement


ROWS = [
    {"country": 44, "zip": "EH8", "street": "Mayfield", "area_code": 131,
     "city": "Edi"},
    {"country": 44, "zip": "EH8", "street": "Mayfield", "area_code": 131,
     "city": "Edi"},
    {"country": 1, "zip": "10001", "street": "Broadway", "area_code": 212,
     "city": "NYC"},
]


class TestRelationEncoding:
    def test_one_node_per_tuple(self):
        g = relation_to_graph("R", ROWS)
        assert g.num_nodes == 3
        assert g.labels() == {"R"}
        assert g.get_attr(0, "city") == "Edi"

    def test_start_id(self):
        g = relation_to_graph("R", ROWS, start_id=100)
        assert 100 in g and 102 in g


class TestFD:
    def test_fd_to_variable_gfd(self):
        gfd = FD("R", ("zip",), ("street",)).to_gfd()
        assert gfd.is_variable
        assert gfd.pattern.num_nodes == 2
        assert gfd.pattern.num_edges == 0

    def test_fd_holds(self):
        g = relation_to_graph("R", ROWS)
        gfd = FD("R", ("zip",), ("street",)).to_gfd()
        assert satisfies([gfd], g)

    def test_fd_violated(self):
        rows = ROWS + [{"country": 44, "zip": "EH8", "street": "Queen St",
                        "area_code": 131, "city": "Edi"}]
        g = relation_to_graph("R", rows)
        gfd = FD("R", ("zip",), ("street",)).to_gfd()
        vio = det_vio([gfd], g)
        assert vio
        assert all(v.match["x"] != v.match["y"] for v in vio)

    def test_multi_attribute_fd(self):
        gfd = FD("R", ("country", "zip"), ("street", "city")).to_gfd()
        assert len(gfd.lhs) == 2
        assert len(gfd.rhs) == 2


class TestVariableCFD:
    """φ′4: R(country = 44, zip → street)."""

    def setup_method(self):
        self.cfd = CFD(
            relation="R",
            lhs=("country", "zip"),
            rhs="street",
            pattern_tuple={"country": 44, "zip": UNCONSTRAINED,
                           "street": UNCONSTRAINED},
        )

    def test_encoding_shape(self):
        gfd = self.cfd.to_gfd()
        assert not gfd.is_constant and not gfd.is_variable  # mixed, like φ'4
        assert gfd.pattern.num_nodes == 2

    def test_holds_on_clean_data(self):
        g = relation_to_graph("R", ROWS)
        assert satisfies([self.cfd.to_gfd()], g)

    def test_condition_scopes_the_rule(self):
        # A zip/street clash *outside* country 44 is not a violation.
        rows = ROWS + [
            {"country": 1, "zip": "10001", "street": "5th Ave",
             "area_code": 212, "city": "NYC"},
        ]
        g = relation_to_graph("R", rows)
        assert satisfies([self.cfd.to_gfd()], g)

    def test_violation_inside_condition(self):
        rows = ROWS + [
            {"country": 44, "zip": "EH8", "street": "Queen St",
             "area_code": 131, "city": "Edi"},
        ]
        g = relation_to_graph("R", rows)
        assert not satisfies([self.cfd.to_gfd()], g)


class TestConstantCFD:
    """φ″4: R(country = 44, area_code = 131 → city = Edi)."""

    def setup_method(self):
        self.cfd = CFD(
            relation="R",
            lhs=("country", "area_code"),
            rhs="city",
            pattern_tuple={"country": 44, "area_code": 131, "city": "Edi"},
        )

    def test_single_node_pattern(self):
        gfd = self.cfd.to_gfd()
        assert self.cfd.is_constant()
        assert gfd.is_constant
        assert gfd.pattern.num_nodes == 1

    def test_holds(self):
        g = relation_to_graph("R", ROWS)
        assert satisfies([self.cfd.to_gfd()], g)

    def test_violation(self):
        rows = ROWS + [{"country": 44, "zip": "G1", "street": "High St",
                        "area_code": 131, "city": "Glasgow"}]
        g = relation_to_graph("R", rows)
        vio = det_vio([self.cfd.to_gfd()], g)
        assert len(vio) == 1


class TestTypeRequirement:
    def test_enforces_attribute_presence(self):
        g = relation_to_graph("person", [{"name": "Ann"}, {"other": 1}])
        requirement = type_requirement("person", "name")
        vio = det_vio([requirement], g)
        assert len(vio) == 1
        assert next(iter(vio)).match["x"] == 1
