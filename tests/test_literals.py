"""Tests for GFD literals and their parsing."""

import pytest

from repro.core import (
    ConstantLiteral,
    LiteralParseError,
    VariableLiteral,
    is_constant_literal,
    is_variable_literal,
    literal_variables,
    parse_literal,
    parse_literals,
)


class TestConstruction:
    def test_constant_literal(self):
        lit = ConstantLiteral("x", "city", "Edi")
        assert lit.variables() == frozenset({"x"})
        assert not lit.is_tautology()
        assert is_constant_literal(lit)

    def test_variable_literal(self):
        lit = VariableLiteral("x", "zip", "y", "zip")
        assert lit.variables() == frozenset({"x", "y"})
        assert is_variable_literal(lit)

    def test_tautology(self):
        assert VariableLiteral("x", "A", "x", "A").is_tautology()
        assert not VariableLiteral("x", "A", "x", "B").is_tautology()
        assert not VariableLiteral("x", "A", "y", "A").is_tautology()

    def test_rename(self):
        lit = VariableLiteral("x", "A", "y", "B").rename({"x": "u"})
        assert lit == VariableLiteral("u", "A", "y", "B")

    def test_rename_constant(self):
        lit = ConstantLiteral("x", "A", 1).rename({"x": "v", "other": "w"})
        assert lit == ConstantLiteral("v", "A", 1)

    def test_normalized_symmetry(self):
        a = VariableLiteral("y", "B", "x", "A").normalized()
        b = VariableLiteral("x", "A", "y", "B").normalized()
        assert a == b

    def test_literal_variables_union(self):
        lits = [ConstantLiteral("x", "A", 1), VariableLiteral("y", "B", "z", "C")]
        assert literal_variables(lits) == frozenset({"x", "y", "z"})


class TestParsing:
    def test_quoted_constant(self):
        assert parse_literal("x.city = 'Edi'") == ConstantLiteral("x", "city", "Edi")

    def test_double_quoted(self):
        assert parse_literal('x.city = "NYC"') == ConstantLiteral("x", "city", "NYC")

    def test_integer(self):
        assert parse_literal("x.country = 44") == ConstantLiteral("x", "country", 44)

    def test_float(self):
        assert parse_literal("x.score = 1.5") == ConstantLiteral("x", "score", 1.5)

    def test_bare_word(self):
        assert parse_literal("x.is_fake = true") == ConstantLiteral(
            "x", "is_fake", "true"
        )

    def test_variable_form(self):
        assert parse_literal("x.zip = y.zip") == VariableLiteral("x", "zip", "y", "zip")

    def test_primed_variable(self):
        lit = parse_literal("z.id = z'.id")
        assert lit == VariableLiteral("z", "id", "z'", "id")

    def test_missing_equals(self):
        with pytest.raises(LiteralParseError):
            parse_literal("x.city")

    def test_bad_left_side(self):
        with pytest.raises(LiteralParseError):
            parse_literal("42 = x.A")

    def test_empty_right_side(self):
        with pytest.raises(LiteralParseError):
            parse_literal("x.A = ")


class TestConjunctions:
    def test_comma_separated(self):
        lits = parse_literals("x.A = y.A, x.B = 'v'")
        assert len(lits) == 2

    def test_ampersand_separated(self):
        lits = parse_literals("x.A = y.A & y.B = 1")
        assert len(lits) == 2

    def test_empty_means_empty_set(self):
        assert parse_literals("") == ()
        assert parse_literals("   ") == ()
        assert parse_literals("true") == ()

    def test_str_roundtrip(self):
        lit = parse_literal("x.city = 'Edi'")
        assert parse_literal(str(lit)) == lit
        var = parse_literal("x.A = y.B")
        assert parse_literal(str(var)) == var
