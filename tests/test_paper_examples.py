"""End-to-end reproduction of the paper's worked examples (Examples 1–13,
Figures 1–3 and 7) — the integration layer of the test suite."""


from repro.core import (
    det_vio,
    implies,
    is_satisfiable,
    parse_gfd,
    satisfies,
    violation_entities,
)
from repro.graph import PropertyGraph
from repro.matching import count_matches, find_matches
from repro.parallel import estimate_workload, lpt_partition, rep_val
from repro.pattern import parse_pattern, pivot_vector
from repro.datasets import dbpedia_like, yago_like


class TestExample1KnowledgeBaseInconsistencies:
    """The three knowledge-base inconsistencies of Example 1 are each
    caught by a GFD."""

    def test_flight_inconsistency(self, g1, phi1):
        vio = det_vio([phi1], g1)
        assert violation_entities(vio) >= {"flight1", "flight2"}

    def test_capital_inconsistency(self, phi2):
        graph = PropertyGraph()
        graph.add_node("au", "country", {"val": "Australia"})
        graph.add_node("c1", "city", {"val": "Canberra"})
        graph.add_node("c2", "city", {"val": "Melbourne"})
        graph.add_edge("au", "c1", "capital")
        graph.add_edge("au", "c2", "capital")
        vio = det_vio([phi2], graph)
        assert len(vio) == 2  # both (y,z) orders

    def test_penguin_inconsistency(self):
        """Birds fly, penguins are birds, penguins don't fly."""
        graph = PropertyGraph()
        graph.add_node("bird", "bird", {"can_fly": "true"})
        graph.add_node("penguin", "penguin", {"can_fly": "false"})
        graph.add_edge("penguin", "bird", "is_a")
        phi3 = parse_gfd("y -is_a-> x", " => x.can_fly = y.can_fly", name="phi3")
        assert not satisfies([phi3], graph)


class TestExample1SocialGraphs:
    def test_blog_status_rule(self):
        """φ5: the status annotation must match the photo description."""
        graph = PropertyGraph()
        graph.add_node("z", "blog", {})
        graph.add_node("x", "status", {"text": "sunset"})
        graph.add_node("y", "photo", {"desc": "sunrise"})
        graph.add_edge("z", "x", "has_status")
        graph.add_edge("z", "y", "has_photo")
        graph.add_edge("x", "y", "has_attachment")
        phi5 = parse_gfd(
            "z:blog -has_status-> x:status; z -has_photo-> y:photo; "
            "x -has_attachment-> y",
            " => x.text = y.desc",
            name="phi5",
        )
        assert not satisfies([phi5], graph)
        graph.set_attr("x", "text", "sunrise")
        assert satisfies([phi5], graph)

    def test_fake_account_rule(self, g2, phi6):
        vio = det_vio([phi6], g2)
        assert {"acct4"} == {v.match["x"] for v in vio}


class TestExamples4And6:
    def test_match_counts(self, q1, q2, g1, g3):
        assert count_matches(q1, g1) == 2
        assert count_matches(q2, g3) == 0

    def test_g2_has_clean_and_dirty_matches(self, g2, phi6):
        """Example 6: some Q6 matches satisfy X6 → Y6 (acct1/acct2), yet
        G2 ⊭ φ6 because one match does not."""
        matches = list(find_matches(phi6.pattern, g2))
        assert len(matches) > len(det_vio([phi6], g2))
        assert not satisfies([phi6], g2)


class TestExample7Satisfiability:
    def test_phi7_pair(self):
        phi7 = parse_gfd("x:tau", " => x.A = 'c'")
        phi7b = parse_gfd("x:tau", " => x.A = 'd'")
        assert not is_satisfiable([phi7, phi7b])

    def test_phi8_phi9(self):
        q8 = "x:tau -l-> y:tau; x -l-> z:tau; y -l-> z"
        q9 = q8 + "; y -l-> w:tau; z -l-> w"
        phi8 = parse_gfd(q8, " => x.A = 'c'")
        phi9 = parse_gfd(q9, " => x.A = 'd'")
        assert is_satisfiable([phi8])
        assert is_satisfiable([phi9])
        assert not is_satisfiable([phi8, phi9])


class TestExample8Implication:
    def test_phi11_implied(self):
        q8 = "x:tau -l-> y:tau; x -l-> z:tau; y -l-> z"
        q9 = q8 + "; y -l-> w:tau; z -l-> w"
        sigma = [
            parse_gfd(q8, "x.A = y.A => x.B = y.B"),
            parse_gfd(q9, "x.B = y.B => z.C = w.C"),
        ]
        phi11 = parse_gfd(q9, "x.A = y.A => z.C = w.C")
        assert implies(sigma, phi11)


class TestExamples9To13Workload:
    def test_example9_pivot_vectors(self, q1, q2):
        assert pivot_vector(q1).radii == (1, 1)
        assert pivot_vector(q2).radii == (1,)
        q4 = parse_pattern("x:R; y:R")
        assert pivot_vector(q4).radii == (0, 0)

    def test_example11_work_unit(self, phi1, g1):
        """The (flight1, flight2) unit's block is all 22 of G1's elements."""
        units = estimate_workload([phi1], g1)
        assert len(units) == 1
        assert units[0].block_size == 22

    def test_example12_partition(self):
        from tests.test_balancing_assignment import make_unit

        units = [make_unit(s) for s in (22, 22, 26, 26, 30, 30, 24, 28, 28)]
        _, loads = lpt_partition(units, 3, smallest_first=True)
        assert sorted(loads) == [76.0, 78.0, 82.0]

    def test_example13_local_detection(self, phi1, g1):
        """repVal finds exactly the φ1 violations via its work units."""
        run = rep_val([phi1], g1, n=2)
        assert run.violations == det_vio([phi1], g1)


class TestExamplesOnSnapshotBackend:
    """The same worked examples pinned through the indexed
    :class:`GraphSnapshot` backend, so tier-1 exercises both matching
    paths (the differential harness covers random inputs; these cover the
    paper's own figures)."""

    def test_example4_match_counts(self, q1, q2, g1, g3):
        assert count_matches(q1, g1, backend="snapshot") == 2
        assert count_matches(q2, g3, backend="snapshot") == 0
        # ...and identically over an explicitly-built snapshot object.
        assert count_matches(q1, g1.snapshot()) == 2

    def test_example1_flight_inconsistency(self, g1, phi1):
        vio = det_vio([phi1], g1, backend="snapshot")
        assert vio == det_vio([phi1], g1, backend="legacy")
        assert violation_entities(vio) >= {"flight1", "flight2"}

    def test_example1_capital_inconsistency(self, phi2):
        graph = PropertyGraph()
        graph.add_node("au", "country", {"val": "Australia"})
        graph.add_node("c1", "city", {"val": "Canberra"})
        graph.add_node("c2", "city", {"val": "Melbourne"})
        graph.add_edge("au", "c1", "capital")
        graph.add_edge("au", "c2", "capital")
        vio = det_vio([phi2], graph, backend="snapshot")
        assert len(vio) == 2  # both (y,z) orders

    def test_example6_fake_account_rule(self, g2, phi6):
        vio = det_vio([phi6], g2, backend="snapshot")
        assert {"acct4"} == {v.match["x"] for v in vio}
        matches = list(find_matches(phi6.pattern, g2, backend="snapshot"))
        assert {tuple(sorted(m.items())) for m in matches} == {
            tuple(sorted(m.items()))
            for m in find_matches(phi6.pattern, g2, backend="legacy")
        }

    def test_example13_local_detection_uses_snapshots(self, phi1, g1):
        """repVal's engine (snapshot-backed blocks) equals legacy detVio."""
        run = rep_val([phi1], g1, n=2)
        assert run.violations == det_vio([phi1], g1, backend="legacy")


class TestFigure7RealLifeGFDs:
    def test_gfd1_child_parent(self):
        ds = yago_like.build(scale=50, seed=20, flight_errors=0,
                             capital_errors=0, mayor_errors=0)
        vio = det_vio(ds.gfds, ds.graph)
        assert vio
        assert {v.gfd_name for v in vio} == {"gfd1-child-parent"}

    def test_gfd2_disjoint_types(self):
        ds = dbpedia_like.build(scale=60, seed=21)
        vio = det_vio(ds.gfds, ds.graph)
        assert {v.gfd_name for v in vio} == {"gfd2-disjoint-types"}

    def test_gfd3_mayor_party(self):
        ds = yago_like.build(scale=50, seed=22, flight_errors=0,
                             capital_errors=0, family_errors=0)
        vio = det_vio(ds.gfds, ds.graph)
        assert vio
        assert {v.gfd_name for v in vio} == {"gfd3-mayor-party"}
