"""The fault-tolerant execution plane (PR 10): recovered ≡ fault-free.

Four pillars:

* **plan/policy surface** — ``FaultPlan.from_spec`` (the
  ``REPRO_FAULT_PLAN`` JSON format) parses, pads and *rejects* exactly
  as documented; ``FaultPolicy`` validates its knobs; ``FaultStats``
  merges and proves;
* **recovery differential matrix** — for every injected worker fault
  (hard crash before a unit, delay-turned-stall, dropped reply,
  death mid-shm-attach) the recovered run's violations and report are
  byte-identical to the fault-free run's, with ``ShippingStats.faults``
  proving the fault actually fired — a recovery pin over a silent miss
  proves nothing;
* **failure paths** — retry exhaustion and zero-retry policies fail
  loudly ("lost a process"), and the pool is torn down clean;
* **service applier supervision** — an injected applier exception is
  retried with idempotent replay, the subscriber's ``ViolationDiff``
  stream (epochs included) stays byte-identical to the fault-free
  stream, and a terminal applier failure surfaces with its cause
  chained and recorded on ``ServiceStats.failure``.

The shm-lifecycle side of recovery (segment residue, re-attach) lives
in ``test_shard_plane.py``; CI additionally re-runs the executor
differential matrix wholesale under ``REPRO_FAULT_PLAN`` crash and
delay plans in both ship modes.
"""

from __future__ import annotations

import warnings

import pytest

from repro import ValidationService, ValidationSession, det_vio
from repro.core import generate_gfds
from repro.graph import power_law_graph
from repro.parallel import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultPolicy,
    FaultStats,
    resolve_fault_policy,
    shm_available,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this host"
)

# Two-worker pools on a single-CPU runner trip the (intentional)
# oversubscription warning everywhere.
pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.fixture(autouse=True)
def no_env_plan(monkeypatch):
    """Injection here is explicit-only: a CI ``REPRO_FAULT_PLAN`` run
    must not stack a second plan under these pins."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


def workload(seed: int = 3):
    graph = power_law_graph(220, 560, seed=seed, domain_size=12)
    sigma = generate_gfds(graph, count=4, pattern_edges=2, seed=seed)
    return graph, sigma


def quiet_session(*args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ValidationSession(*args, **kwargs)


#: fast-recovery knobs shared by every injected-fault session; the
#: tight heartbeat keeps stall detection (10 missed beats) sub-second
FAST = dict(backoff=0.01, heartbeat_interval=0.05)


class TestFaultPlanSpec:
    def test_parse_pads_and_normalises(self):
        plan = FaultPlan.from_spec(
            '{"crashes": [[1, 4], 0], "delays": [[0, 2, 0.25]],'
            ' "drop_replies": [1], "die_mid_attach": [[0, 2]],'
            ' "applier_failures": [[3, 2]],'
            ' "policy": {"max_retries": 5, "unit_deadline": 0.5}}'
        )
        assert plan.crashes == ((1, 4, 1), (0, 0, 1))  # padded counts
        assert plan.delays == ((0, 2, 0.25),)
        assert plan.drop_replies == ((1, 1),)
        assert plan.die_mid_attach == ((0, 2),)
        assert plan.applier_failures == ((3, 2),)
        assert plan.policy == {"max_retries": 5, "unit_deadline": 0.5}
        assert not plan.empty and not plan.worker_empty

    def test_empty_and_worker_empty(self):
        assert FaultPlan().empty
        applier_only = FaultPlan(applier_failures=((1, 1),))
        assert applier_only.worker_empty and not applier_only.empty

    @pytest.mark.parametrize("spec,match", [
        ("not json", "not valid JSON"),
        ("[1, 2]", "JSON object"),
        ('{"meteor_strike": []}', "unknown fault-plan key"),
        ('{"crashes": [[0, 0, 1, 9]]}', "malformed fault-plan entry"),
        ('{"crashes": [[]]}', "malformed fault-plan entry"),
        ('{"policy": ["max_retries"]}', "'policy' must be an object"),
        ('{"policy": {"warp_speed": 1}}', "unknown fault-policy override"),
        ('{"policy": {"plan": {}}}', "unknown fault-policy override"),
    ])
    def test_malformed_specs_fail_loudly(self, spec, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.from_spec(spec)

    def test_from_env(self, monkeypatch):
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, '{"crashes": [[0, 0, 1]]}')
        plan = FaultPlan.from_env()
        assert plan is not None and plan.crashes == ((0, 0, 1),)


class TestFaultPolicy:
    @pytest.mark.parametrize("kwargs,match", [
        (dict(max_retries=-1), "max_retries"),
        (dict(backoff=-0.1), "backoff"),
        (dict(heartbeat_interval=0.0), "heartbeat_interval"),
        (dict(unit_deadline=0.0), "unit_deadline"),
        (dict(degrade_floor=0), "degrade_floor"),
    ])
    def test_knob_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultPolicy(**kwargs)

    def test_retry_wait_is_exponential(self):
        policy = FaultPolicy(backoff=0.1)
        assert [policy.retry_wait(k) for k in (1, 2, 3)] == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4),
        ]

    def test_stall_timeout_tracks_heartbeat(self):
        assert FaultPolicy(heartbeat_interval=0.05).stall_timeout == (
            pytest.approx(0.5)
        )

    def test_resolve_env_plan_overrides_defaults(self, monkeypatch):
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            '{"delays": [[0, 0, 0.3]],'
            ' "policy": {"unit_deadline": 0.1, "max_retries": 7}}',
        )
        resolved = resolve_fault_policy(None)
        assert resolved.max_retries == 7
        assert resolved.unit_deadline == pytest.approx(0.1)
        assert resolved.plan is not None and resolved.plan.delays

    def test_resolve_explicit_policy_wins(self, monkeypatch):
        monkeypatch.setenv(
            FAULT_PLAN_ENV, '{"policy": {"max_retries": 7}}'
        )
        explicit = FaultPolicy(max_retries=1)
        resolved = resolve_fault_policy(explicit)
        assert resolved.max_retries == 1  # env policy does not override
        assert resolved.plan is not None  # but the env plan still loads

    def test_resolve_explicit_plan_wins(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, '{"crashes": [[1, 1, 1]]}')
        mine = FaultPlan(delays=((0, 0, 0.1),))
        resolved = resolve_fault_policy(FaultPolicy(plan=mine))
        assert resolved.plan is mine

    def test_session_rejects_non_policy(self):
        graph, sigma = workload()
        with pytest.raises(TypeError, match="fault_policy"):
            ValidationSession(graph, sigma, fault_policy="retry-lots")


class TestFaultStats:
    def test_faulted_requires_a_fired_fault(self):
        assert not FaultStats().faulted
        assert not FaultStats(respawns=1, retried_units=5).faulted
        assert FaultStats(crashes=1).faulted
        assert FaultStats(stalls=1).faulted
        assert FaultStats(worker_errors=1).faulted

    def test_merge_and_heartbeat_accounting(self):
        left, right = FaultStats(crashes=1), FaultStats(stalls=2, respawns=1)
        left.record_heartbeat(0.010)
        left.record_heartbeat(0.030)
        right.record_heartbeat(0.020)
        left.merge(right)
        assert (left.crashes, left.stalls, left.respawns) == (1, 2, 1)
        assert left.heartbeats == 3
        assert left.heartbeat_latency_mean == pytest.approx(0.020)
        assert left.heartbeat_latency_max == pytest.approx(0.030)


def fault_run(graph, sigma, plan, ship_mode="pickle", **knobs):
    """One full validate under ``plan``; returns the run result."""
    policy = FaultPolicy(plan=plan, **{**FAST, **knobs})
    with quiet_session(
        graph, sigma, executor="process", processes=2, ship_mode=ship_mode,
        fault_policy=policy,
    ) as session:
        return session.validate(n=2)


class TestRecoveryDifferential:
    """Recovered runs must be byte-identical to fault-free runs, and
    the stats channel must prove the fault actually fired."""

    def assert_recovered(self, run, baseline, expected):
        assert run.violations == expected
        assert run.report == baseline.report
        faults = run.shipping.faults
        assert faults is not None and faults.faulted
        assert faults.respawns >= 1
        assert faults.retried_units > 0
        return faults

    @pytest.fixture(scope="class")
    def fixed(self):
        graph, sigma = workload()
        expected = det_vio(sigma, graph)
        baseline = fault_run(graph, sigma, plan=None)
        assert baseline.shipping.faults is not None
        assert not baseline.shipping.faults.faulted
        return graph, sigma, expected, baseline

    def test_hard_crash_recovers_identically(self, fixed):
        graph, sigma, expected, baseline = fixed
        run = fault_run(graph, sigma, FaultPlan(crashes=((0, 0, 1),)))
        faults = self.assert_recovered(run, baseline, expected)
        assert faults.crashes >= 1

    def test_mid_batch_crash_recovers_identically(self, fixed):
        graph, sigma, expected, baseline = fixed
        run = fault_run(graph, sigma, FaultPlan(crashes=((1, 2, 1),)))
        faults = self.assert_recovered(run, baseline, expected)
        assert faults.crashes >= 1

    def test_stall_is_detected_and_recovered(self, fixed):
        graph, sigma, expected, baseline = fixed
        run = fault_run(
            graph, sigma, FaultPlan(delays=((0, 0, 2.0),)),
            unit_deadline=0.2,
        )
        faults = self.assert_recovered(run, baseline, expected)
        assert faults.stalls >= 1

    def test_dropped_reply_is_a_stall(self, fixed):
        """A worker that finishes its batch but never replies is only
        distinguishable by silence: the missed-heartbeat limit reaps it."""
        graph, sigma, expected, baseline = fixed
        run = fault_run(
            graph, sigma, FaultPlan(drop_replies=((0, 1),)),
            heartbeat_interval=0.02,
        )
        faults = self.assert_recovered(run, baseline, expected)
        assert faults.stalls + faults.crashes >= 1

    @needs_shm
    def test_mid_attach_death_recovers_identically(self, fixed):
        graph, sigma, expected, _ = fixed
        shm_baseline = fault_run(graph, sigma, plan=None, ship_mode="shm")
        run = fault_run(
            graph, sigma, FaultPlan(die_mid_attach=((1, 1),)),
            ship_mode="shm",
        )
        faults = self.assert_recovered(run, shm_baseline, expected)
        assert faults.crashes >= 1

    def test_recovery_keeps_cost_accounting_canonical(self, fixed):
        """Cost is charged coordinator-side exactly once per unit, so a
        retried batch must not double-charge the cluster report."""
        graph, sigma, expected, baseline = fixed
        run = fault_run(graph, sigma, FaultPlan(crashes=((0, 0, 1),)))
        assert run.report.makespan == baseline.report.makespan
        assert run.report.total_computation == (
            baseline.report.total_computation
        )

    def test_discovery_mines_identical_rules_under_faults(self):
        graph, _ = workload()
        results = {}
        for plan in (None, FaultPlan(crashes=((0, 0, 1),))):
            policy = FaultPolicy(plan=plan, **FAST)
            with quiet_session(
                graph, [], executor="process", processes=2,
                fault_policy=policy,
            ) as session:
                results[plan is None] = session.discover(
                    min_support=4, max_edges=2, n=2
                )
        clean, faulted = results[True], results[False]
        assert [
            (m.gfd.name, m.support, m.confidence) for m in clean.rules
        ] == [
            (m.gfd.name, m.support, m.confidence) for m in faulted.rules
        ]
        assert clean.violations == faulted.violations


class TestFailurePaths:
    def test_retry_exhaustion_fails_loudly(self):
        """A worker that dies on every incarnation burns the whole
        retry budget and the run fails for real."""
        graph, sigma = workload()
        with pytest.raises(RuntimeError, match="lost a process"):
            fault_run(
                graph, sigma, FaultPlan(crashes=((0, 0, 10),)),
                max_retries=2,
            )

    def test_zero_retry_policy_is_fail_stop(self):
        graph, sigma = workload()
        with pytest.raises(RuntimeError, match="lost a process"):
            fault_run(
                graph, sigma, FaultPlan(crashes=((0, 0, 1),)),
                max_retries=0,
            )

    def test_cold_restart_refires_the_plan_deterministically(self):
        """Exhaustion tears the pool down; the next validate restarts
        it cold, which resets incarnations — so the same single-shot
        plan fires again and fails the same way.  Determinism holds
        across restarts, not just within one run; and a session whose
        retry budget absorbs the plan succeeds outright."""
        graph, sigma = workload()
        expected = det_vio(sigma, graph)
        policy = FaultPolicy(
            plan=FaultPlan(crashes=((0, 0, 1),)), max_retries=0, **FAST
        )
        with quiet_session(
            graph, sigma, executor="process", processes=2,
            fault_policy=policy,
        ) as session:
            for _ in range(2):  # identical failure on the cold restart
                with pytest.raises(RuntimeError, match="lost a process"):
                    session.validate(n=2)
        tolerant = FaultPolicy(plan=FaultPlan(crashes=((0, 0, 1),)), **FAST)
        with quiet_session(
            graph, sigma, executor="process", processes=2,
            fault_policy=tolerant,
        ) as session:
            run = session.validate(n=2)
            assert run.violations == expected
            assert run.shipping.faults.crashes >= 1


class TestServiceApplierSupervision:
    """The applier survives injected failures with exact diff replay."""

    def stream(self, plan, policy_knobs=None):
        """Run one scripted service stream; returns (diffs, stats,
        expected violations)."""
        graph, sigma = workload()
        mirror, _ = workload()
        nodes = sorted(graph.nodes())
        script = [
            ("attr", nodes[i % len(nodes)], "val", f"s{i}")
            for i in range(24)
        ]
        policy = None
        if plan is not None or policy_knobs:
            policy = FaultPolicy(
                plan=plan, **(policy_knobs or {"backoff": 0.01})
            )
        with ValidationSession(graph, sigma, executor="simulated") as session:
            session.validate(n=2)
            with ValidationService(
                session, max_batch_ops=8, fault_policy=policy
            ) as service:
                subscriber = service.subscribe()
                baseline = set(subscriber.baseline)
                for start in range(0, len(script), 8):
                    service.submit(script[start:start + 8])
                assert service.flush(timeout=120)
                diffs = subscriber.drain()
                stats = service.stats()
        for op in script:
            mirror.set_attr(op[1], op[2], op[3])
        expected = det_vio(sigma, mirror)
        return diffs, stats, baseline, expected

    def test_applier_failures_replay_to_identical_diffs(self):
        clean = self.stream(plan=None)
        faulted = self.stream(
            plan=FaultPlan(applier_failures=((1, 2), (3, 1)))
        )
        clean_diffs, clean_stats, baseline, expected = clean
        fault_diffs, fault_stats, fault_baseline, fault_expected = faulted
        assert expected == fault_expected
        assert baseline == fault_baseline
        # The subscriber streams are byte-identical: same epochs, same
        # added/removed sets, same order — restart-with-replay preserved
        # the exact ViolationDiff stream.
        assert [
            (d.epoch, d.added, d.removed) for d in clean_diffs
        ] == [
            (d.epoch, d.added, d.removed) for d in fault_diffs
        ]
        current = set(baseline)
        for diff in fault_diffs:
            current = diff.apply(current)
        assert current == expected
        # Proof the injection fired and was absorbed by replay.
        assert not clean_stats.faults.faulted
        assert fault_stats.faults.worker_errors == 3
        assert fault_stats.faults.respawns == 3
        assert fault_stats.failure is None

    def test_epochs_stay_contiguous_under_replay(self):
        diffs, stats, _, _ = self.stream(
            plan=FaultPlan(applier_failures=((1, 1), (2, 1)))
        )
        epochs = [diff.epoch for diff in diffs]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)  # no epoch re-emitted
        assert all(1 <= e <= stats.batches for e in epochs)
        assert stats.faults.worker_errors == 2  # both injections fired

    def test_terminal_applier_failure_chains_cause(self):
        graph, sigma = workload()
        policy = FaultPolicy(
            plan=FaultPlan(applier_failures=((1, 99),)),
            max_retries=1, backoff=0.01,
        )
        with ValidationSession(graph, sigma, executor="simulated") as session:
            session.validate(n=2)
            service = ValidationService(
                session, max_batch_ops=8, fault_policy=policy
            )
            node = sorted(graph.nodes())[0]
            with pytest.raises(RuntimeError, match="applier failed") as info:
                with service:
                    service.submit([("attr", node, "val", "x")])
                    service.flush(timeout=30)
            cause = info.value.__cause__
            assert isinstance(cause, RuntimeError)
            assert "injected applier failure at epoch 1" in str(cause)
            stats = service.stats()
            assert stats.failure is cause  # satellite: recorded, not lost
            assert stats.faults.worker_errors == 2  # attempts accounted
            assert stats.faults.respawns == 1  # the one replay that ran
