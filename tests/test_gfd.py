"""Tests for the GFD class: construction, classification, normal form."""

import pytest

from repro.core import GFDError, make_gfd, parse_gfd
from repro.core.gfd import denial
from repro.core.literals import ConstantLiteral, VariableLiteral
from repro.pattern import parse_pattern


class TestConstruction:
    def test_literals_must_use_pattern_variables(self):
        pattern = parse_pattern("x:R")
        with pytest.raises(GFDError):
            make_gfd(pattern, rhs=[ConstantLiteral("ghost", "A", 1)])

    def test_parse_gfd(self, phi1):
        assert phi1.name == "phi1"
        assert len(phi1.lhs) == 1
        assert len(phi1.rhs) == 2

    def test_parse_gfd_requires_arrow(self):
        with pytest.raises(GFDError):
            parse_gfd("x:R", "x.A = 1")

    def test_empty_sides(self):
        gfd = parse_gfd("x:R", " => x.A = 1")
        assert gfd.has_empty_lhs
        assert len(gfd.rhs) == 1

    def test_size(self):
        gfd = parse_gfd("x:R", "x.A = 1 => x.B = 2")
        assert gfd.size == 1 + 2  # single node pattern + two literals

    def test_hashable(self, phi1, phi2):
        assert len({phi1, phi2, phi1}) == 2


class TestClassification:
    def test_variable_gfd(self, phi1):
        """φ1–φ5 are variable GFDs (Example 5)."""
        assert phi1.is_variable
        assert not phi1.is_constant

    def test_constant_gfd(self, phi6):
        """φ6 is a constant GFD (Example 5)."""
        assert phi6.is_constant
        assert not phi6.is_variable

    def test_mixed_gfd_is_neither(self):
        """φ'4 is neither constant nor variable (Example 5)."""
        gfd = parse_gfd(
            "x:R; y:R",
            "x.country = 44, y.country = 44, x.zip = y.zip => x.street = y.street",
        )
        assert not gfd.is_constant
        assert not gfd.is_variable

    def test_tree_patterned(self, phi2, phi6):
        assert phi2.is_tree_patterned
        assert not phi6.is_tree_patterned  # Q6 has cycles through the likes


class TestNormalForm:
    def test_splits_rhs(self, phi1):
        parts = phi1.normal_form()
        assert len(parts) == 2
        assert all(len(p.rhs) == 1 for p in parts)
        assert all(p.lhs == phi1.lhs for p in parts)

    def test_drops_tautologies(self):
        pattern = parse_pattern("x:R")
        gfd = make_gfd(
            pattern,
            rhs=[VariableLiteral("x", "A", "x", "A"), ConstantLiteral("x", "B", 1)],
        )
        parts = gfd.normal_form()
        assert len(parts) == 1
        assert parts[0].rhs[0] == ConstantLiteral("x", "B", 1)

    def test_empty_rhs_vacuous(self):
        gfd = parse_gfd("x:R", "x.A = 1 => ")
        assert gfd.normal_form() == []


class TestRenameAndPivot:
    def test_rename_consistent(self, phi2):
        renamed = phi2.rename({"x": "c", "y": "a", "z": "b"})
        assert "c" in renamed.pattern
        assert all(
            var in renamed.pattern
            for literal in renamed.rhs
            for var in literal.variables()
        )

    def test_pivot_cached(self, phi2):
        assert phi2.pivot is phi2.pivot
        assert phi2.pivot.variables == ("x",)


class TestDenial:
    def test_denial_violated_by_every_match(self, g1):
        from repro.core import violations_of

        pattern = parse_pattern("x:flight -number-> y:id")
        never = denial(pattern, name="no-flights")
        violations = list(violations_of(never, g1))
        assert len(violations) == 2  # one per flight

    def test_denial_has_impossible_rhs(self):
        gfd = denial(parse_pattern("x:R"))
        constants = {lit.const for lit in gfd.rhs}
        assert len(constants) == 2
