"""Tests for the equality-atom closure engine (Section 4)."""

from repro.core import EqualityClosure, Rule, literals_conflict, saturate
from repro.core.closure import attr_term
from repro.core.literals import ConstantLiteral, VariableLiteral


class TestUnionFind:
    def test_reflexive(self):
        closure = EqualityClosure()
        assert closure.find(attr_term("x", "A")) == closure.find(attr_term("x", "A"))

    def test_union_links(self):
        closure = EqualityClosure()
        closure.union(attr_term("x", "A"), attr_term("y", "B"))
        assert closure.entails(VariableLiteral("x", "A", "y", "B"))

    def test_transitivity(self):
        closure = EqualityClosure()
        closure.add_literal(VariableLiteral("x", "A", "y", "B"))
        closure.add_literal(VariableLiteral("y", "B", "z", "C"))
        assert closure.entails(VariableLiteral("x", "A", "z", "C"))

    def test_constant_propagation(self):
        closure = EqualityClosure()
        closure.add_literal(ConstantLiteral("x", "A", "c"))
        closure.add_literal(VariableLiteral("x", "A", "y", "B"))
        assert closure.entails(ConstantLiteral("y", "B", "c"))
        assert closure.constant_of("y", "B") == "c"

    def test_paper_transitivity_example(self):
        """§4: x.A = c and y.B = c entail x.A = y.B."""
        closure = EqualityClosure()
        closure.add_literal(ConstantLiteral("x", "A", "c"))
        closure.add_literal(ConstantLiteral("y", "B", "c"))
        assert closure.entails(VariableLiteral("x", "A", "y", "B"))

    def test_conflict_detection(self):
        closure = EqualityClosure()
        closure.add_literal(ConstantLiteral("x", "A", "c"))
        assert not closure.conflicting
        closure.add_literal(ConstantLiteral("x", "A", "d"))
        assert closure.conflicting
        assert closure.conflict_witness is not None

    def test_distinct_types_are_distinct_constants(self):
        closure = EqualityClosure()
        closure.add_literal(ConstantLiteral("x", "A", "1"))
        closure.add_literal(ConstantLiteral("x", "A", 1))
        assert closure.conflicting  # string "1" vs int 1

    def test_tautology_always_entailed(self):
        closure = EqualityClosure()
        assert closure.entails(VariableLiteral("x", "A", "x", "A"))

    def test_unrelated_not_entailed(self):
        closure = EqualityClosure()
        closure.add_literal(ConstantLiteral("x", "A", "c"))
        assert not closure.entails(ConstantLiteral("y", "B", "c"))
        assert not closure.entails(VariableLiteral("x", "A", "y", "B"))

    def test_copy_independent(self):
        closure = EqualityClosure()
        closure.add_literal(ConstantLiteral("x", "A", "c"))
        clone = closure.copy()
        clone.add_literal(ConstantLiteral("x", "A", "d"))
        assert clone.conflicting
        assert not closure.conflicting


class TestSaturation:
    def test_empty_lhs_rules_fire(self):
        rules = [Rule(lhs=(), rhs=(ConstantLiteral("x", "A", 1),))]
        closure = saturate(rules)
        assert closure.entails(ConstantLiteral("x", "A", 1))

    def test_chained_firing(self):
        rules = [
            Rule(lhs=(), rhs=(ConstantLiteral("x", "A", 1),)),
            Rule(
                lhs=(ConstantLiteral("x", "A", 1),),
                rhs=(ConstantLiteral("x", "B", 2),),
            ),
            Rule(
                lhs=(ConstantLiteral("x", "B", 2),),
                rhs=(ConstantLiteral("x", "C", 3),),
            ),
        ]
        closure = saturate(rules)
        assert closure.entails(ConstantLiteral("x", "C", 3))

    def test_unfired_rules_stay_dormant(self):
        rules = [
            Rule(
                lhs=(ConstantLiteral("x", "A", 1),),
                rhs=(ConstantLiteral("x", "B", 2),),
            )
        ]
        closure = saturate(rules)
        assert not closure.entails(ConstantLiteral("x", "B", 2))

    def test_seed_starts_the_chain(self):
        rules = [
            Rule(
                lhs=(ConstantLiteral("x", "A", 1),),
                rhs=(ConstantLiteral("x", "B", 2),),
            )
        ]
        closure = saturate(rules, seed=[ConstantLiteral("x", "A", 1)])
        assert closure.entails(ConstantLiteral("x", "B", 2))

    def test_order_independent(self):
        rules = [
            Rule(
                lhs=(ConstantLiteral("x", "A", 1),),
                rhs=(ConstantLiteral("x", "B", 2),),
            ),
            Rule(lhs=(), rhs=(ConstantLiteral("x", "A", 1),)),
        ]
        closure = saturate(rules)  # firing rule listed before its trigger
        assert closure.entails(ConstantLiteral("x", "B", 2))

    def test_conflict_through_rules(self):
        rules = [
            Rule(lhs=(), rhs=(ConstantLiteral("x", "A", "c"),)),
            Rule(lhs=(), rhs=(ConstantLiteral("x", "A", "d"),)),
        ]
        assert saturate(rules).conflicting


class TestLiteralConflict:
    def test_plain_conflict(self):
        assert literals_conflict(
            [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "A", 2)]
        )

    def test_transitive_conflict(self):
        assert literals_conflict(
            [
                ConstantLiteral("x", "A", 1),
                VariableLiteral("x", "A", "y", "B"),
                ConstantLiteral("y", "B", 2),
            ]
        )

    def test_consistent(self):
        assert not literals_conflict(
            [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "B", 2)]
        )
