"""Tests for the continuous validation service (:mod:`repro.service`).

Five pillars:

* **diff algebra** — ``UpdateDiff``/``ViolationDiff`` composition is
  exact: flickering violations cancel, telescoping any diff stream
  reproduces the endpoint violation sets (randomized against a replay
  oracle);
* **satellite bugfixes** — ``session.update([])`` is a true no-op, and
  ``update()`` exposes *resolved* violations alongside added ones;
* **coalescing** — per-batch op folding (attr last-wins, edge
  final-state cancellation, node-op pass-through) preserves the batch's
  net effect;
* **stream-vs-batch differential** — concurrent producers streaming
  through a :class:`~repro.service.ValidationService` converge to the
  same violation set as one from-scratch ``det_vio`` on an identically
  mutated graph, with subscriber diffs telescoping exactly — on both
  the simulated and process executors, with the process path staying on
  warm delta shipping (zero block rebuilds, in-place patches);
* **backpressure + lifecycle** — slow subscribers degrade to merged
  diffs (never lost ones), full ingestion queues block producers,
  applier failures fail stop, and shutdown leaks neither threads nor
  shared-memory segments.
"""

import random
import threading
import time
from types import SimpleNamespace

import pytest

from repro import (
    UpdateDiff,
    ValidationService,
    ValidationSession,
    ViolationDiff,
    coalesce_ops,
    det_vio,
    generate_gfds,
    power_law_graph,
)
from repro.parallel.engine import UnitResult, consolidate_slot_results
from repro.parallel.executors import shm_available
from repro.service import Subscription


def make_workload(seed):
    graph = power_law_graph(220, 560, seed=seed, domain_size=12)
    sigma = generate_gfds(graph, count=4, pattern_edges=2, seed=seed)
    return graph, sigma


def telescope(baseline, diffs):
    current = set(baseline)
    for diff in diffs:
        current = diff.apply(current)
    return current


class TestDiffAlgebra:
    def test_then_cancels_flicker(self):
        first = UpdateDiff(added=("v1",), removed=("v0",))
        second = UpdateDiff(added=("v0",), removed=("v1",))
        composed = first.then(second)
        assert set(composed) == set() and composed.removed == set()

    def test_then_is_exact_against_replay(self):
        rng = random.Random(17)
        universe = [f"v{i}" for i in range(12)]
        for _ in range(200):
            state = {v for v in universe if rng.random() < 0.5}
            start = set(state)
            total = UpdateDiff()
            for _ in range(rng.randint(1, 6)):
                added = {
                    v for v in universe
                    if v not in state and rng.random() < 0.3
                }
                removed = {v for v in state if rng.random() < 0.3}
                state = (state - removed) | added
                total = total.then(UpdateDiff(added, removed))
            assert total.apply(start) == state
            assert set(total) == state - start
            assert total.removed == start - state

    def test_violation_diff_same_algebra_and_epoch(self):
        first = ViolationDiff(
            epoch=3, added=frozenset({"a"}), removed=frozenset({"b"})
        )
        second = ViolationDiff(
            epoch=4, added=frozenset({"b"}), removed=frozenset({"a"})
        )
        composed = first.then(second)
        assert composed.epoch == 4
        assert composed.empty
        assert first.apply({"b", "c"}) == {"a", "c"}

    def test_update_diff_is_set_of_added(self):
        diff = UpdateDiff(added=("v1", "v2"), removed=("v3",))
        assert diff == {"v1", "v2"}  # backward-compat: iterable of added
        assert diff.added == {"v1", "v2"}
        assert diff.removed == {"v3"}


class TestSatelliteFixes:
    def test_empty_update_is_true_noop(self):
        graph, sigma = make_workload(3)
        with ValidationSession(graph, sigma, executor="simulated") as session:
            session.validate(n=4)
            version = graph._version
            diff = session.update([])
            assert isinstance(diff, UpdateDiff)
            assert set(diff) == set() and diff.removed == set()
            assert graph._version == version  # no version bump
            run = session.validate(n=4)
            # the block cache survived — nothing was cleared
            assert run.cache.builds == 0 and run.cache.hits > 0

    def test_update_exposes_removed_violations(self, g1, phi1):
        with ValidationSession(g1, [phi1], executor="simulated") as session:
            run = session.validate(n=2)
            assert run.violations  # DL1 flies to both NYC and Singapore
            stale = set(session.violations)
            diff = session.update([("attr", "flight2_to", "val", "NYC")])
            assert diff.removed == stale
            assert set(diff) == set()
            assert session.violations == set()
            back = session.update([("attr", "flight2_to", "val", "Singapore")])
            assert set(back) == stale and back.removed == set()
            assert session.violations == stale

    def test_update_diff_tracks_violation_sets(self):
        graph, sigma = make_workload(11)
        rng = random.Random(11)
        nodes = sorted(graph.nodes())
        with ValidationSession(graph, sigma, executor="simulated") as session:
            session.validate(n=4)
            for step in range(20):
                before = set(session.violations)
                diff = session.update([
                    ("attr", rng.choice(nodes), "val", f"d{step}")
                ])
                assert diff.apply(before) == set(session.violations)
                assert set(diff) & diff.removed == set()


class TestCoalesce:
    def setup_method(self):
        self.graph = power_law_graph(30, 60, seed=5, domain_size=4)

    def test_attr_last_wins(self):
        node = sorted(self.graph.nodes())[0]
        ops, cancelled = coalesce_ops(
            [
                ("attr", node, "val", "a"),
                ("attr", node, "other", "x"),
                ("attr", node, "val", "b"),
            ],
            self.graph,
        )
        assert cancelled == 1
        assert ("attr", node, "val", "b") in ops
        assert ("attr", node, "other", "x") in ops
        assert len(ops) == 2

    def test_edge_round_trip_cancels(self):
        nodes = sorted(self.graph.nodes())[:2]
        ops, cancelled = coalesce_ops(
            [
                ("edge+", nodes[0], nodes[1], "fresh"),
                ("edge-", nodes[0], nodes[1], "fresh"),
            ],
            self.graph,
        )
        assert ops == [] and cancelled == 2

    def test_edge_remove_readd_of_existing_edge_cancels(self):
        src, dst, label = next(iter(self.graph.edges()))
        ops, cancelled = coalesce_ops(
            [("edge-", src, dst, label), ("edge+", src, dst, label)],
            self.graph,
        )
        assert ops == [] and cancelled == 2

    def test_effective_edge_ops_survive(self):
        src, dst, label = next(iter(self.graph.edges()))
        nodes = sorted(self.graph.nodes())
        ops, cancelled = coalesce_ops(
            [
                ("edge-", src, dst, label),
                ("edge+", nodes[0], nodes[1], "fresh"),
            ],
            self.graph,
        )
        assert cancelled == 0
        assert set(ops) == {
            ("edge-", src, dst, label),
            ("edge+", nodes[0], nodes[1], "fresh"),
        }

    def test_node_ops_disable_folding_and_keep_order(self):
        batch = [
            ("node", "brand-new", "city", {"val": "Oslo"}),
            ("attr", "brand-new", "val", "Bergen"),
            ("edge+", "brand-new", "brand-new-2", "road"),
            ("node", "brand-new-2", "city", None),
        ]
        ops, cancelled = coalesce_ops(batch, self.graph)
        assert ops == batch and cancelled == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown update kind"):
            coalesce_ops([("frobnicate", "x")], self.graph)


def producer_script(seed, producer, graph_nodes):
    """A deterministic op stream whose net effect is interleaving-proof.

    Attribute keys, edge labels and node ids are producer-unique, so any
    interleaving of the producers' streams (which each preserve their own
    order) reaches the same final graph.
    """
    rng = random.Random(f"{seed}-{producer}")
    ops = []
    live_edges = []
    for step in range(40):
        roll = rng.random()
        if roll < 0.5:
            ops.append((
                "attr", rng.choice(graph_nodes),
                f"p{producer}", f"s{step}",
            ))
        elif roll < 0.7:
            src, dst = rng.sample(graph_nodes, 2)
            if (src, dst) not in live_edges:  # duplicate add = graph no-op,
                ops.append(("edge+", src, dst, f"link{producer}"))
                live_edges.append((src, dst))  # but must not double-remove
        elif roll < 0.8 and live_edges:
            src, dst = live_edges.pop(rng.randrange(len(live_edges)))
            ops.append(("edge-", src, dst, f"link{producer}"))
        else:
            name = f"new-{producer}-{step}"
            ops.append(("node", name, "city", {"val": f"c{step}"}))
            ops.append(("edge+", rng.choice(graph_nodes), name, "to"))
    return ops


def chunked(ops, rng):
    index = 0
    while index < len(ops):
        size = rng.randint(1, 7)
        yield ops[index:index + size]
        index += size


class TestStreamVsBatchDifferential:
    @pytest.mark.parametrize("seed", (3, 11))
    def test_simulated_stream_matches_batch_detect(self, seed):
        graph, sigma = make_workload(seed)
        mirror, _ = make_workload(seed)
        scripts = [
            producer_script(seed, producer, sorted(graph.nodes()))
            for producer in range(3)
        ]
        with ValidationSession(graph, sigma, executor="simulated") as session:
            session.validate(n=4)
            with ValidationService(
                session, max_batch_ops=16, max_batch_age=0.005
            ) as service:
                subscriber = service.subscribe()
                threads = [
                    threading.Thread(
                        target=lambda s=script, p=producer: [
                            service.submit(chunk)
                            for chunk in chunked(
                                s, random.Random(f"{seed}-{p}-chunks")
                            )
                        ]
                    )
                    for producer, script in enumerate(scripts)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert service.flush(timeout=120)
                stats = service.stats()
                assert stats.submitted == sum(map(len, scripts))
                assert stats.applied + stats.cancelled == stats.submitted
                assert service.epoch == stats.batches
                diffs = subscriber.drain()
                # every op already applied: mutate the mirror per-producer
                for script in scripts:
                    apply_script(mirror, script)
                expected = det_vio(sigma, mirror)
                assert set(session.violations) == expected
                assert telescope(subscriber.baseline, diffs) == expected
                epochs = [diff.epoch for diff in diffs]
                assert epochs == sorted(epochs)
            # the session survives the service and re-validates warm
            run = session.validate(n=4)
            assert run.violations == expected

    def test_process_stream_stays_on_delta_path(self):
        seed = 3
        graph, sigma = make_workload(seed)
        mirror, _ = make_workload(seed)
        nodes = sorted(graph.nodes())
        rng = random.Random(seed)
        script = [
            ("attr", rng.choice(nodes), "val", f"s{step}")
            for step in range(80)
        ]
        with ValidationSession(
            graph, sigma, executor="process", processes=2
        ) as session:
            session.validate(n=4)
            with ValidationService(
                session, max_batch_ops=16, max_batch_age=0.005
            ) as service:
                subscriber = service.subscribe()
                for chunk in chunked(script, rng):
                    service.submit(chunk)
                assert service.flush(timeout=120)
                diffs = subscriber.drain()
            run = session.validate(n=4)
            apply_script(mirror, script)
            expected = det_vio(sigma, mirror)
            assert run.violations == expected
            assert telescope(subscriber.baseline, diffs) == expected
            # warm delta shipping end to end: nothing reshipped wholesale,
            # worker block caches patched in place — zero rebuilds
            assert run.shipping.full == 0
            assert run.shipping.delta > 0
            assert run.shipping.block_cache is not None
            assert run.shipping.block_cache.builds == 0
            assert run.shipping.block_cache.patched > 0


def apply_script(graph, ops):
    for op in ops:
        kind = op[0]
        if kind == "attr":
            graph.set_attr(op[1], op[2], op[3])
        elif kind == "edge+":
            graph.add_edge(op[1], op[2], op[3])
        elif kind == "edge-":
            graph.remove_edge(op[1], op[2], op[3])
        else:
            graph.add_node(op[1], op[2], op[3])


class TestBackpressure:
    def test_slow_subscriber_merges_oldest_diffs(self, g1, phi1):
        with ValidationSession(g1, [phi1], executor="simulated") as session:
            session.validate(n=2)
            with ValidationService(
                session, max_batch_ops=1, max_batch_age=0.0
            ) as service:
                subscriber = service.subscribe(max_pending=2)
                baseline = subscriber.baseline
                # each flip toggles the violation set → a non-empty diff
                for flip in range(8):
                    city = "NYC" if flip % 2 == 0 else "Singapore"
                    service.submit([("attr", "flight2_to", "val", city)])
                    assert service.flush(timeout=30)
                assert subscriber.merged > 0
                diffs = subscriber.drain()
                assert len(diffs) <= 2
                assert telescope(baseline, diffs) == set(session.violations)
                stats = service.stats()
                assert stats.diffs_merged >= subscriber.merged

    def test_full_queue_blocks_producers(self, g1, phi1, monkeypatch):
        with ValidationSession(g1, [phi1], executor="simulated") as session:
            session.validate(n=2)
            gate = threading.Event()
            real_update = session.update

            def slow_update(ops):
                gate.wait(timeout=30)
                return real_update(ops)

            monkeypatch.setattr(session, "update", slow_update)
            with ValidationService(
                session,
                max_batch_ops=2,
                max_batch_age=0.0,
                max_pending_ops=4,
            ) as service:
                done = threading.Event()

                def producer():
                    for step in range(12):
                        service.submit([
                            ("attr", "flight2_to", "val", f"c{step}")
                        ])
                    done.set()

                thread = threading.Thread(target=producer)
                thread.start()
                # the applier is gated, the queue bound is 4: the producer
                # cannot finish its 12 ops until the gate opens
                assert not done.wait(timeout=0.3)
                gate.set()
                assert done.wait(timeout=30)
                thread.join()
                assert service.flush(timeout=30)
                stats = service.stats()
                assert stats.submitted == 12
                assert stats.applied + stats.cancelled == 12


class TestLifecycle:
    def test_close_drains_and_session_survives(self, g1, phi1):
        with ValidationSession(g1, [phi1], executor="simulated") as session:
            run = session.validate(n=2)
            expected = run.violations
            service = ValidationService(session, max_batch_age=30.0)
            service.submit([("attr", "flight2_to", "val", "NYC")])
            service.submit([("attr", "flight2_to", "val", "Singapore")])
            service.close()  # drains the queue before stopping
            service.close()  # idempotent
            stats = service.stats()
            assert stats.submitted == stats.applied + stats.cancelled == 2
            assert session.validate(n=2).violations == expected
            with pytest.raises(RuntimeError, match="closed"):
                service.submit([("attr", "flight2_to", "val", "NYC")])

    def test_applier_failure_fails_stop(self, g1, phi1):
        with ValidationSession(g1, [phi1], executor="simulated") as session:
            session.validate(n=2)
            with pytest.raises(RuntimeError, match="applier failed"):
                with ValidationService(session, max_batch_age=0.0) as service:
                    subscriber = service.subscribe()
                    # attr on an unknown node raises inside the applier
                    service.submit([("attr", "no-such-node", "val", "x")])
                    service.flush(timeout=30)
            assert subscriber.next(timeout=0.1) is None  # woken, not hung

    def test_shutdown_leaks_no_threads(self, g1, phi1):
        def service_threads():
            return [
                thread for thread in threading.enumerate()
                if "validation-service" in thread.name
            ]

        with ValidationSession(g1, [phi1], executor="simulated") as session:
            session.validate(n=2)
            with ValidationService(session) as service:
                service.submit([("attr", "flight2_to", "val", "NYC")])
                service.flush(timeout=30)
                assert service_threads()
        deadline = time.monotonic() + 5
        while service_threads() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service_threads() == []

    @pytest.mark.skipif(not shm_available(), reason="no usable /dev/shm")
    def test_shutdown_leaves_no_shm_residue(self):
        import glob

        graph, sigma = make_workload(3)
        with ValidationSession(
            graph, sigma, executor="process", processes=2, ship_mode="shm"
        ) as session:
            session.validate(n=4)
            with ValidationService(session, max_batch_ops=8) as service:
                nodes = sorted(graph.nodes())
                service.submit(
                    [("attr", node, "val", "x") for node in nodes[:20]]
                )
                assert service.flush(timeout=120)
            session.validate(n=4)
        assert glob.glob("/dev/shm/rgfd-*") == []

    def test_subscription_close_detaches(self, g1, phi1):
        with ValidationSession(g1, [phi1], executor="simulated") as session:
            session.validate(n=2)
            with ValidationService(
                session, max_batch_ops=1, max_batch_age=0.0
            ) as service:
                subscriber = service.subscribe()
                assert isinstance(subscriber, Subscription)
                subscriber.close()
                service.submit([("attr", "flight2_to", "val", "NYC")])
                assert service.flush(timeout=30)
                assert subscriber.next(timeout=0.1) is None

    def test_bad_construction_rejected(self, g1, phi1):
        with ValidationSession(g1, [phi1], executor="simulated") as session:
            with pytest.raises(ValueError, match="max_batch_ops"):
                ValidationService(session, max_batch_ops=0)
            with pytest.raises(ValueError, match="max_pending_ops"):
                ValidationService(session, max_batch_ops=64, max_pending_ops=8)
            with pytest.raises(ValueError, match="unknown update kind"):
                with ValidationService(session) as service:
                    service.submit([("drop-table", "x")])


class TestServeCli:
    def test_serve_replay_emits_diffs_and_summary(self, tmp_path, g1, phi1):
        import io
        import json

        from repro.cli import format_rule_file, main as cli_main
        from repro.graph import save_graph

        graph_file = tmp_path / "g.jsonl"
        save_graph(g1, graph_file)
        rules_file = tmp_path / "rules.txt"
        rules_file.write_text(format_rule_file([phi1]))
        replay = tmp_path / "ops.jsonl"
        replay.write_text(
            '["attr", "flight2_to", "val", "NYC"]\n'
            "# comments and blank lines are skipped\n\n"
            '[["attr", "flight1_dep", "val", "15:00"]]\n'
        )
        out = io.StringIO()
        code = cli_main(
            [
                "serve", str(graph_file), str(rules_file),
                "--replay", str(replay), "--json",
            ],
            out,
        )
        assert code == 0  # the replay repairs the DL1 inconsistency
        lines = [json.loads(line) for line in out.getvalue().splitlines()]
        diffs = [line for line in lines if "epoch" in line]
        assert diffs and diffs[0]["removed"] and not diffs[0]["added"]
        summary = lines[-1]["summary"]
        assert summary["submitted"] == 2
        assert summary["violations"] == 0
        assert summary["applied"] + summary["cancelled"] == 2


class TestDetectConsolidation:
    def test_detect_results_union_into_group_carrier(self):
        group_a, group_b = object(), object()
        units = [
            SimpleNamespace(kind="detect", group=group_a),
            SimpleNamespace(kind="detect", group=group_a),
            SimpleNamespace(kind="detect", group=group_b),
            SimpleNamespace(kind="detect", group=group_a),
        ]
        results = [
            UnitResult(violations={"v1"}, steps=3, block_size=5),
            UnitResult(violations={"v1", "v2"}, steps=2, block_size=4),
            UnitResult(violations={"v3"}, steps=1, block_size=2),
            None,  # skipped unit: consolidation must tolerate holes
        ]
        consolidate_slot_results(units, results)
        assert results[0].violations == {"v1", "v2"}
        assert results[1].violations == set()
        assert results[2].violations == {"v3"}
        # cost accounting is untouched by the fold
        assert [r.steps for r in results[:3]] == [3, 2, 1]
