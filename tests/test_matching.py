"""Tests for subgraph isomorphism matching (Section 2 semantics)."""

import pytest

from repro.graph import PropertyGraph, graph_from_edges
from repro.matching import (
    MatchStats,
    SubgraphMatcher,
    compute_candidates,
    count_matches,
    find_matches,
    has_match,
)
from repro.matching.locality import (
    candidate_permutations,
    data_block,
    pivot_candidates,
)
from repro.pattern import parse_pattern, pivot_vector


class TestPaperExample4:
    def test_q1_match_in_g1(self, q1, g1):
        """Example 4: h1 maps x→flight1, y→flight2 (and the symmetric h)."""
        matches = list(find_matches(q1, g1))
        assert len(matches) == 2
        bindings = {(m["x"], m["y"]) for m in matches}
        assert bindings == {("flight1", "flight2"), ("flight2", "flight1")}
        for m in matches:
            if m["x"] == "flight1":
                assert m["x3"] == "flight1_to"
                assert m["y3"] == "flight2_to"

    def test_q6_match_in_g2(self, g2):
        """Example 4: Q6 (k=2) matches acct3/acct4 among others."""
        q6 = parse_pattern(
            "x:account -like-> y1:blog; x':account -like-> y1; "
            "x -like-> y2:blog; x' -like-> y2; "
            "x' -post-> z1:blog; x -post-> z2:blog"
        )
        matches = list(find_matches(q6, g2))
        pairs = {(m["x'"], m["x"]) for m in matches}
        assert ("acct3", "acct4") in pairs
        assert ("acct1", "acct2") in pairs

    def test_q2_no_match_in_g3(self, q2, g3):
        """Example 6(b): G3's country has a unique capital."""
        assert not has_match(q2, g3)


class TestSemantics:
    def test_injectivity(self):
        g = graph_from_edges([("a", "e", "b")], node_labels={"a": "n", "b": "n"})
        q = parse_pattern("x:n; y:n")
        matches = list(find_matches(q, g))
        assert all(m["x"] != m["y"] for m in matches)
        assert len(matches) == 2

    def test_non_induced(self):
        # Extra edges between matched nodes are fine.
        g = graph_from_edges(
            [("a", "e", "b"), ("b", "e", "a")], node_labels={"a": "n", "b": "n"}
        )
        q = parse_pattern("x:n -e-> y:n")
        assert count_matches(q, g) == 2

    def test_edge_label_must_match(self):
        g = graph_from_edges([("a", "e", "b")], node_labels={"a": "n", "b": "n"})
        q = parse_pattern("x:n -f-> y:n")
        assert not has_match(q, g)

    def test_wildcard_node_label(self):
        g = graph_from_edges([("a", "e", "b")], node_labels={"a": "p", "b": "q"})
        q = parse_pattern("x -e-> y")
        assert count_matches(q, g) == 1

    def test_wildcard_edge_label(self):
        g = graph_from_edges([("a", "weird", "b")], node_labels={"a": "p", "b": "q"})
        q = parse_pattern("x:p --> y:q")
        assert count_matches(q, g) == 1

    def test_directionality(self):
        g = graph_from_edges([("a", "e", "b")], node_labels={"a": "p", "b": "q"})
        backwards = parse_pattern("x:q -e-> y:p")
        assert not has_match(backwards, g)

    def test_self_loop(self):
        g = PropertyGraph()
        g.add_node("a", "n")
        g.add_edge("a", "a", "loop")
        q = parse_pattern("x:n -loop-> x")
        assert count_matches(q, g) == 1

    def test_disconnected_pattern_spans_graph(self):
        g = graph_from_edges(
            [("a", "e", "b"), ("c", "f", "d")],
            node_labels={"a": "p", "b": "q", "c": "p", "d": "r"},
        )
        q = parse_pattern("x:p -e-> y:q; u:p -f-> v:r")
        matches = list(find_matches(q, g))
        assert len(matches) == 1
        assert matches[0] == {"x": "a", "y": "b", "u": "c", "v": "d"}


class TestMatcherFeatures:
    def test_fixed_assignment(self, q1, g1):
        matcher = SubgraphMatcher(q1, g1)
        pinned = list(matcher.matches(fixed={"x": "flight1", "y": "flight2"}))
        assert len(pinned) == 1

    def test_fixed_incompatible_label(self, q1, g1):
        matcher = SubgraphMatcher(q1, g1)
        assert list(matcher.matches(fixed={"x": "flight1_id"})) == []

    def test_fixed_non_injective(self, q1, g1):
        matcher = SubgraphMatcher(q1, g1)
        assert list(matcher.matches(fixed={"x": "flight1", "y": "flight1"})) == []

    def test_fixed_unknown_variable(self, q1, g1):
        matcher = SubgraphMatcher(q1, g1)
        with pytest.raises(KeyError):
            list(matcher.matches(fixed={"nope": "flight1"}))

    def test_limit(self, g2):
        q = parse_pattern("x:account -like-> y:blog")
        limited = list(find_matches(q, g2, limit=3))
        assert len(limited) == 3

    def test_limit_zero_yields_nothing(self, g2):
        # Regression: limit=0 used to be checked only *after* the first
        # match was yielded, so one match slipped through.
        q = parse_pattern("x:account -like-> y:blog")
        assert list(find_matches(q, g2, limit=0)) == []
        matcher = SubgraphMatcher(q, g2)
        assert list(matcher.matches(limit=0)) == []

    def test_limit_is_per_call_under_shared_stats(self, g2):
        # Regression: the limit used to be compared against the shared
        # stats object's *cumulative* match count, so a second run with
        # the same stats stopped early (or returned nothing at all).
        q = parse_pattern("x:account -like-> y:blog")
        shared = MatchStats()
        first = list(find_matches(q, g2, limit=3, stats=shared))
        second = list(find_matches(q, g2, limit=3, stats=shared))
        assert len(first) == 3
        assert second == first
        assert shared.matches == 6  # stats still accumulate across calls

    def test_stats_accumulate(self, q2, g3):
        stats = MatchStats()
        list(find_matches(q2, g3, stats=stats))
        assert stats.matches == 0
        assert stats.steps >= 0

    def test_count(self, g2):
        q = parse_pattern("x:account -like-> y:blog")
        assert count_matches(q, g2) == 8


class TestEvalModeKnob:
    """The ``eval_mode`` switch on the counting/evidence entry points."""

    def test_count_matches_modes_agree(self, g2):
        q = parse_pattern("x:account -like-> y:blog")
        matcher = SubgraphMatcher(q, g2)
        reference = len(list(matcher.matches()))
        for mode in ("auto", "factorised", "enumerate"):
            assert matcher.count_matches(eval_mode=mode) == reference

    def test_pinned_count_matches_modes_agree(self, g2):
        q = parse_pattern("x:account -like-> y:blog")
        matcher = SubgraphMatcher(q, g2)
        pins = [{"x": node} for node in sorted(
            SubgraphMatcher(q, g2).candidates["x"], key=str
        )]
        for fixed in pins:
            reference = len(list(matcher.matches(fixed=fixed)))
            for mode in ("auto", "factorised", "enumerate"):
                assert matcher.count_matches(
                    fixed=fixed, eval_mode=mode
                ) == reference
        # A non-injective pin is zero under every mode.
        q2 = parse_pattern("x:account -like-> y:blog; x2:account -like-> y")
        matcher2 = SubgraphMatcher(q2, g2)
        account = sorted(matcher2.candidates["x"], key=str)[0]
        for mode in ("auto", "factorised", "enumerate"):
            assert matcher2.count_matches(
                fixed={"x": account, "x2": account}, eval_mode=mode
            ) == 0

    def test_cyclic_pattern_falls_back_to_enumeration(self):
        g = graph_from_edges(
            [("a", "e", "b"), ("b", "e", "c"), ("c", "e", "a")],
            node_labels={"a": "n", "b": "n", "c": "n"},
        )
        q = parse_pattern("x:n -e-> y:n; y -e-> z:n; z -e-> x")
        matcher = SubgraphMatcher(q, g)
        assert matcher.factorised_plan() is None
        assert matcher.count_matches(eval_mode="auto") == 3
        with pytest.raises(ValueError):
            matcher.count_matches(eval_mode="factorised")

    def test_unknown_eval_mode_rejected(self, g2):
        q = parse_pattern("x:account -like-> y:blog")
        with pytest.raises(ValueError):
            SubgraphMatcher(q, g2).count_matches(eval_mode="bogus")

    def test_evidence_counts_stats_not_matches(self, g2):
        """Factorised evidence must not inflate ``stats.matches`` — the
        whole point is that no match is ever materialised."""
        q = parse_pattern("x:account -like-> y:blog")
        matcher = SubgraphMatcher(q, g2)
        stats = MatchStats()
        count, aggregate = matcher.evidence(eval_mode="factorised",
                                            stats=stats)
        assert count == aggregate.count == 8
        assert stats.matches == 0
        assert stats.steps > 0  # the DP work is still accounted for


class TestCandidates:
    def test_label_filtering(self, q1, g1):
        candidates = compute_candidates(q1, g1)
        assert candidates["x"] == {"flight1", "flight2"}
        assert candidates["x1"] == {"flight1_id", "flight2_id"}

    def test_degree_filtering_prunes(self):
        g = graph_from_edges(
            [("hub", "e", "l1"), ("hub", "e", "l2"), ("poor", "e", "l3")],
            node_labels={"hub": "n", "poor": "n", "l1": "m", "l2": "m", "l3": "m"},
        )
        q = parse_pattern("x:n -e-> a:m; x -e-> b:m")
        candidates = compute_candidates(q, g)
        assert candidates["x"] == {"hub"}


class TestLocality:
    def test_pivot_candidates_dedup_symmetric(self, q1, g1):
        pv = pivot_vector(q1)
        tuples = list(pivot_candidates(g1, q1, pv))
        # flights {flight1, flight2}: symmetric dedup keeps one of two orders
        assert len(tuples) == 1

    def test_candidate_permutations_expand(self, q1, g1):
        pv = pivot_vector(q1)
        base = next(pivot_candidates(g1, q1, pv))
        perms = list(candidate_permutations(q1, pv, base))
        assert len(perms) == 2
        assert {tuple(sorted(p.values())) for p in perms} == {
            ("flight1", "flight2")
        }

    def test_asymmetric_pivots_not_deduped(self, g1):
        q = parse_pattern("x:flight -number-> i:id; y:city")
        pv = pivot_vector(q)
        tuples = list(pivot_candidates(g1, q, pv))
        # 2 flights × 4 city value-nodes, no symmetry
        assert len(tuples) == 8

    def test_block_contains_all_match_nodes(self, q1, g1):
        pv = pivot_vector(q1)
        base = next(pivot_candidates(g1, q1, pv))
        block = data_block(g1, pv, base)
        for match in find_matches(q1, g1):
            assert all(node in block for node in match.values())
