"""Differential harness: the indexed (snapshot) matcher must agree with
the legacy dict-backed matcher on everything observable — match sets,
violation sets, and ``MatchStats.matches`` — across seeded random
graph/pattern pairs.

This is the lock on the backend refactor: any divergence between the two
search paths (candidate seeding, frontier expansion, consistency checks,
pivoted matching) shows up here as a set difference on a reproducible
seed.
"""

from __future__ import annotations

import random

import pytest

from repro.core import det_vio, generate_gfds
from repro.graph import WILDCARD, power_law_graph, uniform_random_graph
from repro.matching import MatchStats, SubgraphMatcher
from repro.pattern import GraphPattern

NODE_LABELS = tuple(f"L{i}" for i in range(6))
EDGE_LABELS = tuple(f"e{i}" for i in range(3))

#: seeded (graph, pattern) pair count — the harness contract from ISSUE 1
NUM_PAIRS = 50


def random_pattern(rng: random.Random) -> GraphPattern:
    """A small random pattern over the generator's label alphabet.

    Mixes concrete and wildcard node/edge labels; every variable gets at
    least one incident edge so match counts stay bounded on the dense
    test graphs.
    """
    q = GraphPattern()
    num_vars = rng.randint(2, 4)
    variables = [f"x{i}" for i in range(num_vars)]
    for var in variables:
        label = WILDCARD if rng.random() < 0.25 else rng.choice(NODE_LABELS)
        q.add_node(var, label)
    num_edges = rng.randint(num_vars - 1, num_vars + 1)
    for _ in range(num_edges):
        src, dst = rng.sample(variables, 2)
        elabel = WILDCARD if rng.random() < 0.25 else rng.choice(EDGE_LABELS)
        q.add_edge(src, dst, elabel)
    for var in variables:
        if q.degree(var) == 0:
            other = rng.choice([v for v in variables if v != var])
            q.add_edge(var, other, rng.choice(EDGE_LABELS))
    return q


def make_pair(seed: int):
    """The ``seed``-th random graph/pattern pair."""
    rng = random.Random(seed)
    build = power_law_graph if seed % 2 == 0 else uniform_random_graph
    graph = build(
        num_nodes=rng.randint(60, 140),
        num_edges=rng.randint(150, 320),
        node_labels=NODE_LABELS,
        edge_labels=EDGE_LABELS,
        domain_size=20,
        seed=seed,
    )
    return graph, random_pattern(rng)


def match_set(matcher: SubgraphMatcher, fixed=None):
    stats = MatchStats()
    found = frozenset(
        frozenset(m.items()) for m in matcher.matches(fixed=fixed, stats=stats)
    )
    return found, stats


@pytest.mark.parametrize("seed", range(NUM_PAIRS))
def test_backends_agree(seed):
    """Match sets and match counts are identical on pair ``seed``."""
    graph, pattern = make_pair(seed)
    legacy = SubgraphMatcher(pattern, graph, backend="legacy")
    indexed = SubgraphMatcher(pattern, graph, backend="snapshot")

    legacy_matches, legacy_stats = match_set(legacy)
    indexed_matches, indexed_stats = match_set(indexed)
    assert legacy_matches == indexed_matches
    assert legacy_stats.matches == indexed_stats.matches
    assert legacy_stats.matches == len(legacy_matches)

    # The indexed candidates are a (pair-index-narrowed) subset of the
    # legacy ones, and both contain every match image.
    for var in pattern.nodes():
        assert indexed.candidates[var] <= legacy.candidates[var]
    for match in legacy_matches:
        for var, node in match:
            assert node in indexed.candidates[var]


@pytest.mark.parametrize("seed", range(0, NUM_PAIRS, 5))
def test_pivoted_backends_agree(seed):
    """Pivoted (fixed-variable) matching agrees on matching and
    non-matching pivots alike."""
    graph, pattern = make_pair(seed)
    legacy = SubgraphMatcher(pattern, graph, backend="legacy")
    indexed = SubgraphMatcher(pattern, graph, backend="snapshot")

    variables = list(pattern.nodes())
    pivots = []
    first = next(legacy.matches(), None)
    if first is not None:
        pivots.append({variables[0]: first[variables[0]]})
        pivots.append(dict(list(first.items())[:2]))
    rng = random.Random(seed + 1000)
    nodes = list(graph.nodes())
    pivots.append({variables[0]: rng.choice(nodes)})
    pivots.append({variables[-1]: rng.choice(nodes)})
    pivots.append({variables[0]: "no-such-node"})

    for fixed in pivots:
        legacy_matches, legacy_stats = match_set(legacy, fixed=fixed)
        indexed_matches, indexed_stats = match_set(indexed, fixed=fixed)
        assert legacy_matches == indexed_matches, f"pivot {fixed!r} diverged"
        assert legacy_stats.matches == indexed_stats.matches


@pytest.mark.parametrize("seed", range(0, NUM_PAIRS, 2))
def test_violation_sets_agree(seed):
    """``Vio(Σ, G)`` is backend-independent on generated rule sets."""
    graph, _ = make_pair(seed)
    sigma = generate_gfds(graph, count=3, pattern_edges=2, seed=seed)
    legacy_vio = det_vio(sigma, graph, backend="legacy")
    indexed_vio = det_vio(sigma, graph, backend="snapshot")
    assert legacy_vio == indexed_vio
