"""Differential suite for :meth:`GraphSnapshot.apply_delta`.

Two pins, applied after every update of randomized op sequences:

1. **Semantic equality with a full rebuild** — the delta-applied snapshot
   answers every public query (nodes, labels, edges, pools, histograms,
   degrees, pair index, label index) identically to ``GraphSnapshot``
   built from scratch over the mutated graph.  Interned *codes* may
   legitimately differ (a delta never renumbers surviving labels), so the
   comparison runs in original-id / label-name space.
2. **Derived-index exactness** — every derived structure of the patched
   snapshot is byte-equal to what ``_derive_indices`` produces from the
   patched primary CSR state (via a pickle round-trip, which re-derives).
   This catches any drift between the surgical per-op maintenance and the
   one-shot derivation they must agree with.

Plus the acceptance pin for the session layer: an
:class:`IncrementalValidator` on the snapshot backend maintains violation
sets identical to a legacy-backend validator and to from-scratch
re-validation after every update.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core import det_vio, generate_gfds
from repro.core.incremental import IncrementalValidator
from repro.graph import GraphSnapshot, PropertyGraph, power_law_graph
from repro.graph.snapshot import WILD_CODE
from repro.matching import SubgraphMatcher

#: every derived (non-pickled) structure of a snapshot
DERIVED = (
    "index",
    "node_label_ids",
    "edge_label_ids",
    "nodes_by_label",
    "out_slices",
    "out_uniq",
    "out_hist",
    "out_deg",
    "in_slices",
    "in_uniq",
    "in_hist",
    "in_deg",
    "edge_set",
    "adj_set",
    "pair_src",
    "pair_dst",
    "num_edges",
)


def generated(seed: int) -> PropertyGraph:
    return power_law_graph(
        num_nodes=70 + 15 * seed,
        num_edges=180 + 30 * seed,
        node_labels=tuple(f"L{i}" for i in range(6)),
        edge_labels=tuple(f"e{i}" for i in range(4)),
        domain_size=8,
        seed=seed,
    )


def by_repr(items):
    return sorted(items, key=repr)


def fingerprint(snap: GraphSnapshot) -> dict:
    """Everything a snapshot knows, in original-id / label-name space."""
    nodes = list(snap.nodes())
    out = {
        "nodes": nodes,  # order matters: delta and rebuild must agree
        "labels": {n: snap.label(n) for n in nodes},
        "edges": by_repr(snap.edges()),
        "num_edges": snap.num_edges,
        "size": snap.size,
        "node_labels": sorted(snap.labels()),
        "edge_labels": sorted(snap.edge_labels()),
        "by_label": {
            label: by_repr(snap.nodes_with_label(label))
            for label in snap.labels()
        },
        "degrees": {
            n: (snap.out_degree(n), snap.in_degree(n)) for n in nodes
        },
        "hists": {
            n: (
                snap.neighbor_label_counts(n, out=True),
                snap.neighbor_label_counts(n, out=False),
            )
            for n in nodes
        },
    }
    pools = {}
    for n in nodes:
        idx = snap.index_of(n)
        pools[(n, None)] = (
            by_repr(snap.node_of(i) for i in snap.out_pool(idx, WILD_CODE)),
            by_repr(snap.node_of(i) for i in snap.in_pool(idx, WILD_CODE)),
        )
        for elabel in snap.edge_labels():
            code = snap.edge_label_code(elabel)
            pools[(n, elabel)] = (
                by_repr(snap.node_of(i) for i in snap.out_pool(idx, code)),
                by_repr(snap.node_of(i) for i in snap.in_pool(idx, code)),
            )
    out["pools"] = pools
    # The raw pair tables (not just triples of current edges) so *stale*
    # entries a buggy delta left behind are caught too.
    for attr in ("pair_src", "pair_dst"):
        table = {}
        for (sl, el, dl), members in getattr(snap, attr).items():
            key = (
                snap.node_label_names[sl],
                snap.edge_label_names[el],
                snap.node_label_names[dl],
            )
            table[key] = by_repr(snap.node_of(i) for i in members)
        out[attr] = table
    out["edge_set"] = by_repr(
        (snap.node_of(s), snap.node_of(d), snap.edge_label_names[c])
        for s, d, c in snap.edge_set
    )
    out["adj_set"] = by_repr(
        (snap.node_of(s), snap.node_of(d)) for s, d in snap.adj_set
    )
    return out


def assert_delta_snapshot_exact(graph: PropertyGraph) -> None:
    """The two pins: vs. full rebuild, and vs. re-derivation."""
    snap = graph.snapshot()  # delta-applied (or rebuilt — both must hold)
    rebuilt = GraphSnapshot(graph)
    assert snap.node_ids == rebuilt.node_ids
    assert fingerprint(snap) == fingerprint(rebuilt)
    rederived = pickle.loads(pickle.dumps(snap))
    for name in DERIVED:
        assert getattr(snap, name) == getattr(rederived, name), name


def random_op(rng: random.Random, graph: PropertyGraph, labels, elabels):
    """Apply one random structural/attribute update; returns its kind."""
    nodes = list(graph.nodes())
    kind = rng.choice(
        ["edge+", "edge+", "edge-", "edge-", "node+", "node-", "relabel",
         "attr"]
    )
    if kind == "edge+" and len(nodes) >= 2:
        src, dst = rng.sample(nodes, 2)
        if rng.random() < 0.1:
            dst = src  # self loop
        graph.add_edge(src, dst, rng.choice(elabels))
    elif kind == "edge-":
        edges = list(graph.edges())
        if edges:
            graph.remove_edge(*rng.choice(edges))
    elif kind == "node+":
        node = f"fresh-{rng.randrange(10**9)}"
        graph.add_node(node, rng.choice(labels + ("Lnew",)))
        if nodes and rng.random() < 0.8:
            graph.add_edge(node, rng.choice(nodes), rng.choice(elabels))
    elif kind == "node-" and nodes:
        graph.remove_node(rng.choice(nodes))
    elif kind == "relabel" and nodes:
        graph.add_node(rng.choice(nodes), rng.choice(labels + ("Lre",)))
    elif nodes:
        graph.set_attr(rng.choice(nodes), "A0", f"v{rng.randrange(5)}")
    return kind


class TestRandomisedDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_op_sequence_stays_exact(self, seed):
        rng = random.Random(seed)
        graph = generated(seed)
        labels = tuple(f"L{i}" for i in range(6))
        elabels = tuple(f"e{i}" for i in range(4)) + ("e-new",)
        graph.snapshot()  # warm the cache so deltas are exercised
        for _step in range(40):
            random_op(rng, graph, labels, elabels)
            assert_delta_snapshot_exact(graph)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_batched_ops_stay_exact(self, seed):
        """Several ops per snapshot() call — the delta log replays them."""
        rng = random.Random(100 + seed)
        graph = generated(seed)
        labels = tuple(f"L{i}" for i in range(6))
        elabels = tuple(f"e{i}" for i in range(4))
        graph.snapshot()
        for _ in range(8):
            for _ in range(5):
                random_op(rng, graph, labels, elabels)
            assert_delta_snapshot_exact(graph)

    @pytest.mark.parametrize("seed", [0, 2])
    def test_matching_after_deltas(self, seed):
        """End-to-end: the patched index enumerates the same matches as
        the legacy dict backend over the mutated graph."""
        rng = random.Random(7 + seed)
        graph = generated(seed)
        sigma = generate_gfds(graph, count=3, pattern_edges=2, seed=seed)
        labels = tuple(f"L{i}" for i in range(6))
        elabels = tuple(f"e{i}" for i in range(4))
        graph.snapshot()
        for _ in range(12):
            random_op(rng, graph, labels, elabels)
        snap = graph.snapshot()
        def key(m):
            return sorted(m.items(), key=repr)
        for gfd in sigma:
            indexed = SubgraphMatcher(gfd.pattern, snap)
            legacy = SubgraphMatcher(gfd.pattern, graph, backend="legacy")
            assert sorted(map(key, indexed.matches())) == sorted(
                map(key, legacy.matches())
            )


class TestTargetedDeltas:
    """Hand-picked corners the randomized sweep may visit rarely."""

    def _world(self):
        graph = PropertyGraph()
        graph.add_node("a", "person")
        graph.add_node("b", "person")
        graph.add_node("c", "city")
        graph.add_edge("a", "b", "knows")
        graph.add_edge("a", "c", "lives_in")
        graph.snapshot()
        return graph

    def test_new_edge_label(self):
        graph = self._world()
        graph.add_edge("b", "c", "visits")  # label unseen at build time
        assert_delta_snapshot_exact(graph)

    def test_self_loop_insert_and_relabel(self):
        graph = self._world()
        graph.add_edge("a", "a", "knows")
        assert_delta_snapshot_exact(graph)
        graph.add_node("a", "robot")  # relabel with a live self loop
        assert_delta_snapshot_exact(graph)
        graph.remove_edge("a", "a", "knows")
        assert_delta_snapshot_exact(graph)

    def test_removing_last_node_of_a_label(self):
        graph = self._world()
        graph.remove_node("c")  # the only "city"
        assert_delta_snapshot_exact(graph)
        assert graph.snapshot().nodes_with_label("city") == set()

    def test_node_readded_after_removal(self):
        graph = self._world()
        graph.remove_node("b")
        assert_delta_snapshot_exact(graph)
        graph.add_node("b", "city")
        graph.add_edge("b", "c", "twin")
        assert_delta_snapshot_exact(graph)

    def test_parallel_edges_with_distinct_labels(self):
        graph = self._world()
        graph.add_edge("a", "b", "likes")
        assert_delta_snapshot_exact(graph)
        graph.remove_edge("a", "b", "knows")  # adjacency must survive
        assert_delta_snapshot_exact(graph)
        snap = graph.snapshot()
        assert snap.has_edge("a", "b")
        assert not snap.has_edge("a", "b", "knows")

    def test_attr_ops_are_structure_neutral(self):
        graph = self._world()
        snap = graph.snapshot()
        graph.set_attr("a", "age", 30)
        assert graph.snapshot() is snap
        assert_delta_snapshot_exact(graph)

    def test_direct_node_removal_delta(self):
        """apply_delta's node- path, driven directly — the graph-level
        recorder prefers a full rebuild for removals (compaction costs a
        re-derive anyway), so this is the API-level coverage."""
        graph = self._world()
        snap = pickle.loads(pickle.dumps(graph.snapshot()))  # private copy
        graph.remove_node("b")
        snap.apply_delta([("edge-", "a", "b", "knows"), ("node-", "b")])
        rebuilt = GraphSnapshot(graph)
        assert snap.node_ids == rebuilt.node_ids
        assert fingerprint(snap) == fingerprint(rebuilt)

    def test_node_removal_through_graph_falls_back_to_rebuild(self):
        """remove_node drops the cached snapshot rather than queueing an
        op whose replay costs as much as a rebuild."""
        graph = self._world()
        snap = graph.snapshot()
        graph.remove_node("b")
        fresh = graph.snapshot()
        assert fresh is not snap
        assert "b" not in fresh
        assert_delta_snapshot_exact(graph)

    def test_apply_delta_rejects_garbage(self):
        graph = self._world()
        snap = graph.snapshot()
        with pytest.raises(ValueError):
            snap.apply_delta([("wat",)])
        with pytest.raises(ValueError):
            snap.apply_delta([("edge+", "a", "ghost", "knows")])
        with pytest.raises(ValueError):
            snap.apply_delta([("node-", "a")])  # incident edges present


class TestIncrementalValidatorBackends:
    """Acceptance pin: the incremental validator on the snapshot backend
    maintains violation sets identical to the legacy backend and to a
    from-scratch legacy re-validation after every update."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_snapshot_vs_legacy_update_stream(self, seed):
        rng = random.Random(seed)
        graph = power_law_graph(110, 280, seed=seed, domain_size=5)
        mirror = graph.copy()
        sigma = generate_gfds(graph, count=3, pattern_edges=2, seed=seed)
        indexed = IncrementalValidator(sigma, graph, backend="auto")
        legacy = IncrementalValidator(sigma, mirror, backend="legacy")
        assert indexed.violations == legacy.violations
        nodes = list(graph.nodes())
        elabels = sorted(graph.edge_labels())
        for step in range(12):
            kind = rng.choice(["attr", "edge+", "edge-", "node"])
            if kind == "attr":
                node = rng.choice(nodes)
                attr, value = rng.choice(["A0", "A1"]), f"v{rng.randrange(5)}"
                indexed.set_attr(node, attr, value)
                legacy.set_attr(node, attr, value)
            elif kind == "edge+":
                src, dst = rng.sample(nodes, 2)
                label = rng.choice(elabels)
                indexed.add_edge(src, dst, label)
                legacy.add_edge(src, dst, label)
            elif kind == "edge-":
                edges = list(graph.edges())
                if not edges:
                    continue
                edge = rng.choice(edges)
                indexed.remove_edge(*edge)
                legacy.remove_edge(*edge)
            else:
                node = f"n{step}"
                indexed.add_node(node, "L0", {"A0": "v0"})
                legacy.add_node(node, "L0", {"A0": "v0"})
                nodes.append(node)
            assert indexed.violations == legacy.violations, f"step {step}"
            assert indexed.violations == det_vio(
                sigma, graph, backend="legacy"
            ), f"step {step}: diverged from full legacy re-validation"

    def test_backend_recorded_and_validated(self):
        graph = power_law_graph(40, 80, seed=0, domain_size=4)
        sigma = generate_gfds(graph, count=2, pattern_edges=1, seed=0)
        with pytest.raises(ValueError):
            IncrementalValidator(sigma, graph, backend="threads")
