"""Tests for graph fragmentation (Section 6.2)."""

import pytest

from repro.graph import (
    Fragmentation,
    PropertyGraph,
    greedy_edge_cut_partition,
    hash_partition,
    power_law_graph,
)


@pytest.fixture
def graph():
    return power_law_graph(120, 300, seed=5)


class TestFragmentationInvariants:
    def test_every_node_owned_once(self, graph):
        fr = hash_partition(graph, 4)
        owners = list(fr.fragments)
        total = sum(len(frag.owned) for frag in owners)
        assert total == graph.num_nodes
        for node in graph.nodes():
            assert node in fr.fragment_of(node).owned

    def test_edge_union_covers_graph(self, graph):
        fr = hash_partition(graph, 4)
        union = set()
        for frag in fr.fragments:
            union |= set(frag.graph.edges())
        assert union == set(graph.edges())

    def test_border_bookkeeping(self, graph):
        fr = hash_partition(graph, 3)
        for src, dst, _ in graph.edges():
            if fr.owner[src] != fr.owner[dst]:
                assert dst in fr.fragments[fr.owner[src]].out_nodes
                assert dst in fr.fragments[fr.owner[dst]].in_nodes

    def test_local_edges_have_no_border_entries(self):
        g = PropertyGraph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_edge(1, 2, "e")
        fr = Fragmentation(g, {1: 0, 2: 0}, n=2)
        assert not fr.fragments[0].border_nodes
        assert fr.edge_cut() == 0

    def test_stub_copies_carry_attributes(self):
        g = PropertyGraph()
        g.add_node(1, "a", {"val": "x"})
        g.add_node(2, "b", {"val": "y"})
        g.add_edge(1, 2, "e")
        fr = Fragmentation(g, {1: 0, 2: 1}, n=2)
        local = fr.fragments[0].graph
        assert local.get_attr(2, "val") == "y"  # stub replicated with attrs

    def test_missing_owner_rejected(self):
        g = PropertyGraph()
        g.add_node(1, "a")
        with pytest.raises(ValueError):
            Fragmentation(g, {}, n=2)

    def test_zero_fragments_rejected(self, graph):
        with pytest.raises(ValueError):
            Fragmentation(graph, {}, n=0)


class TestPartitioners:
    def test_hash_partition_balance(self, graph):
        fr = hash_partition(graph, 4)
        assert fr.balance() < 1.1

    def test_hash_partition_deterministic(self, graph):
        a = hash_partition(graph, 4, seed=9)
        b = hash_partition(graph, 4, seed=9)
        assert a.owner == b.owner

    def test_greedy_reduces_cut(self, graph):
        hashed = hash_partition(graph, 4, seed=1)
        greedy = greedy_edge_cut_partition(graph, 4, seed=1)
        assert greedy.edge_cut() <= hashed.edge_cut()

    def test_greedy_covers_all_nodes(self, graph):
        fr = greedy_edge_cut_partition(graph, 5, seed=2)
        assert sum(len(f.owned) for f in fr.fragments) == graph.num_nodes

    def test_greedy_respects_capacity_roughly(self, graph):
        fr = greedy_edge_cut_partition(graph, 4, seed=3)
        assert fr.balance() <= 1.5


class TestShardSnapshots:
    """Shard-local snapshots index exactly the fragment's resident share
    (the partition contract disVal's worker processes rely on)."""

    def test_every_local_node_and_edge_in_shard_snapshot(self, graph):
        fr = hash_partition(graph, 4)
        for frag in fr.fragments:
            snap = frag.snapshot()
            for node in frag.graph.nodes():
                assert node in snap
                assert snap.label(node) == frag.graph.label(node)
            assert set(snap.edges()) == set(frag.graph.edges())

    def test_owned_nodes_all_indexed(self, graph):
        fr = greedy_edge_cut_partition(graph, 3)
        for frag in fr.fragments:
            for node in frag.owned:
                assert node in frag.snapshot()

    def test_cross_shard_edges_follow_partition_contract(self, graph):
        """A cross-fragment edge is indexed at the source's owner, with a
        stub for the foreign endpoint; the destination's owner indexes the
        node but not the edge (unless it owns another source of one)."""
        fr = hash_partition(graph, 3)
        cross = [
            (src, dst, label)
            for src, dst, label in graph.edges()
            if fr.owner[src] != fr.owner[dst]
        ]
        assert cross  # hash partitioning of this graph always cuts edges
        for src, dst, label in cross:
            src_snap = fr.fragments[fr.owner[src]].snapshot()
            assert src_snap.has_edge(src, dst, label)
            assert src_snap.label(dst) == graph.label(dst)  # stub labelled
            dst_snap = fr.fragments[fr.owner[dst]].snapshot()
            assert dst in dst_snap
            assert not dst_snap.has_edge(src, dst, label)

    def test_shard_snapshot_union_covers_graph_edges(self, graph):
        fr = hash_partition(graph, 4)
        union = set()
        for frag in fr.fragments:
            union |= set(frag.snapshot().edges())
        assert union == set(graph.edges())

    def test_shard_snapshot_is_cached_per_version(self, graph):
        fr = hash_partition(graph, 2)
        frag = fr.fragments[0]
        assert frag.snapshot() is frag.snapshot()

    def test_shard_snapshot_pickles(self, graph):
        import pickle

        fr = hash_partition(graph, 3)
        for frag in fr.fragments:
            restored = pickle.loads(pickle.dumps(frag.snapshot()))
            assert set(restored.edges()) == set(frag.graph.edges())
