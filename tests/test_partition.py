"""Tests for graph fragmentation (Section 6.2)."""

import pytest

from repro.graph import (
    Fragmentation,
    PropertyGraph,
    greedy_edge_cut_partition,
    hash_partition,
    power_law_graph,
)


@pytest.fixture
def graph():
    return power_law_graph(120, 300, seed=5)


class TestFragmentationInvariants:
    def test_every_node_owned_once(self, graph):
        fr = hash_partition(graph, 4)
        owners = [frag for frag in fr.fragments]
        total = sum(len(frag.owned) for frag in owners)
        assert total == graph.num_nodes
        for node in graph.nodes():
            assert node in fr.fragment_of(node).owned

    def test_edge_union_covers_graph(self, graph):
        fr = hash_partition(graph, 4)
        union = set()
        for frag in fr.fragments:
            union |= set(frag.graph.edges())
        assert union == set(graph.edges())

    def test_border_bookkeeping(self, graph):
        fr = hash_partition(graph, 3)
        for src, dst, _ in graph.edges():
            if fr.owner[src] != fr.owner[dst]:
                assert dst in fr.fragments[fr.owner[src]].out_nodes
                assert dst in fr.fragments[fr.owner[dst]].in_nodes

    def test_local_edges_have_no_border_entries(self):
        g = PropertyGraph()
        g.add_node(1, "a")
        g.add_node(2, "b")
        g.add_edge(1, 2, "e")
        fr = Fragmentation(g, {1: 0, 2: 0}, n=2)
        assert not fr.fragments[0].border_nodes
        assert fr.edge_cut() == 0

    def test_stub_copies_carry_attributes(self):
        g = PropertyGraph()
        g.add_node(1, "a", {"val": "x"})
        g.add_node(2, "b", {"val": "y"})
        g.add_edge(1, 2, "e")
        fr = Fragmentation(g, {1: 0, 2: 1}, n=2)
        local = fr.fragments[0].graph
        assert local.get_attr(2, "val") == "y"  # stub replicated with attrs

    def test_missing_owner_rejected(self):
        g = PropertyGraph()
        g.add_node(1, "a")
        with pytest.raises(ValueError):
            Fragmentation(g, {}, n=2)

    def test_zero_fragments_rejected(self, graph):
        with pytest.raises(ValueError):
            Fragmentation(graph, {}, n=0)


class TestPartitioners:
    def test_hash_partition_balance(self, graph):
        fr = hash_partition(graph, 4)
        assert fr.balance() < 1.1

    def test_hash_partition_deterministic(self, graph):
        a = hash_partition(graph, 4, seed=9)
        b = hash_partition(graph, 4, seed=9)
        assert a.owner == b.owner

    def test_greedy_reduces_cut(self, graph):
        hashed = hash_partition(graph, 4, seed=1)
        greedy = greedy_edge_cut_partition(graph, 4, seed=1)
        assert greedy.edge_cut() <= hashed.edge_cut()

    def test_greedy_covers_all_nodes(self, graph):
        fr = greedy_edge_cut_partition(graph, 5, seed=2)
        assert sum(len(f.owned) for f in fr.fragments) == graph.num_nodes

    def test_greedy_respects_capacity_roughly(self, graph):
        fr = greedy_edge_cut_partition(graph, 4, seed=3)
        assert fr.balance() <= 1.5
