"""Tests for the synthetic graph generator (Section 7, Exp-4 / Fig. 8)."""

import pytest

from repro.graph import (
    power_law_graph,
    skewed_power_law_graph,
    skewness_ratio,
    uniform_random_graph,
)


class TestPowerLaw:
    def test_requested_counts(self):
        g = power_law_graph(200, 600, seed=0)
        assert g.num_nodes == 200
        assert g.num_edges == 600

    def test_deterministic_per_seed(self):
        a = power_law_graph(100, 250, seed=4)
        b = power_law_graph(100, 250, seed=4)
        assert a == b

    def test_different_seeds_differ(self):
        a = power_law_graph(100, 250, seed=1)
        b = power_law_graph(100, 250, seed=2)
        assert a != b

    def test_attributes_present(self):
        g = power_law_graph(50, 100, seed=0)
        node = next(g.nodes())
        attrs = g.attrs(node)
        assert set(attrs) == {"A0", "A1", "A2", "A3", "A4"}
        assert all(v.startswith("v") for v in attrs.values())

    def test_domain_size_respected(self):
        g = power_law_graph(80, 150, seed=0, domain_size=3)
        values = {g.get_attr(n, "A0") for n in g.nodes()}
        assert values <= {"v0", "v1", "v2"}

    def test_no_self_loops(self):
        g = power_law_graph(100, 300, seed=1)
        assert all(src != dst for src, dst, _ in g.edges())

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            power_law_graph(0, 10)

    def test_alpha_increases_hubbiness(self):
        flat = power_law_graph(150, 450, alpha=0.0, seed=6)
        steep = power_law_graph(150, 450, alpha=1.8, seed=6)
        max_flat = max(flat.degree(n) for n in flat.nodes())
        max_steep = max(steep.degree(n) for n in steep.nodes())
        assert max_steep > max_flat


class TestSkewKnob:
    def test_smaller_skew_parameter_means_more_skewed(self):
        mild = skewed_power_law_graph(150, 400, skew=0.9, seed=2)
        harsh = skewed_power_law_graph(150, 400, skew=0.05, seed=2)
        assert skewness_ratio(harsh, d=2) < skewness_ratio(mild, d=2)

    def test_invalid_skew(self):
        with pytest.raises(ValueError):
            skewed_power_law_graph(10, 20, skew=0.0)
        with pytest.raises(ValueError):
            skewed_power_law_graph(10, 20, skew=1.5)

    def test_uniform_is_alpha_zero(self):
        g = uniform_random_graph(50, 100, seed=0)
        assert g.num_nodes == 50
