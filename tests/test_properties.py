"""Property-based tests (hypothesis) for core invariants.

Each property pins an invariant the paper's machinery relies on:
matcher completeness vs brute force, closure monotonicity/idempotence,
LPT's approximation bound, fragmentation coverage, and the equality of
``Vio(Σ, G)`` across the sequential and parallel algorithms.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.core import det_vio, generate_gfds, is_satisfiable, build_model
from repro.core.closure import EqualityClosure
from repro.core.literals import ConstantLiteral, VariableLiteral
from repro.graph import PropertyGraph, hash_partition
from repro.matching import find_matches
from repro.parallel import (
    dis_val,
    lpt_partition,
    makespan,
    makespan_lower_bound,
    rep_val,
)
from repro.pattern import GraphPattern

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
NODE_LABELS = ("a", "b")
EDGE_LABELS = ("e", "f")


@st.composite
def small_graphs(draw, max_nodes=6, max_edges=8):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    g = PropertyGraph()
    for i in range(n):
        label = draw(st.sampled_from(NODE_LABELS))
        value = draw(st.integers(min_value=0, max_value=2))
        g.add_node(i, label, {"A": value})
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if src == dst:
            continue
        g.add_edge(src, dst, draw(st.sampled_from(EDGE_LABELS)))
    return g


@st.composite
def small_patterns(draw, max_nodes=3):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    q = GraphPattern()
    variables = [f"v{i}" for i in range(n)]
    for var in variables:
        q.add_node(var, draw(st.sampled_from(NODE_LABELS + ("_",))))
    num_edges = draw(st.integers(min_value=0, max_value=n))
    for _ in range(num_edges):
        src = draw(st.sampled_from(variables))
        dst = draw(st.sampled_from(variables))
        if src == dst:
            continue
        q.add_edge(src, dst, draw(st.sampled_from(EDGE_LABELS)))
    return q


def brute_force_matches(pattern, graph):
    """Reference matcher: try every injective variable→node mapping."""
    from repro.graph.graph import WILDCARD

    variables = pattern.variables
    nodes = list(graph.nodes())
    out = []
    for image in itertools.permutations(nodes, len(variables)):
        mapping = dict(zip(variables, image))
        ok = True
        for var in variables:
            label = pattern.label(var)
            if label != WILDCARD and graph.label(mapping[var]) != label:
                ok = False
                break
        if not ok:
            continue
        for src, dst, elabel in pattern.edges():
            if elabel == WILDCARD:
                if not graph.has_edge(mapping[src], mapping[dst]):
                    ok = False
                    break
            elif not graph.has_edge(mapping[src], mapping[dst], elabel):
                ok = False
                break
        if ok:
            out.append(mapping)
    return out


# ----------------------------------------------------------------------
# matcher properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(pattern=small_patterns(), graph=small_graphs())
def test_matcher_agrees_with_brute_force(pattern, graph):
    fast = sorted(
        tuple(sorted(m.items())) for m in find_matches(pattern, graph)
    )
    slow = sorted(
        tuple(sorted(m.items())) for m in brute_force_matches(pattern, graph)
    )
    assert fast == slow


@settings(max_examples=30, deadline=None)
@given(pattern=small_patterns(), graph=small_graphs())
def test_matches_are_injective_and_label_correct(pattern, graph):
    from repro.graph.graph import WILDCARD

    for match in find_matches(pattern, graph):
        assert len(set(match.values())) == len(match)
        for var, node in match.items():
            label = pattern.label(var)
            assert label == WILDCARD or graph.label(node) == label


# ----------------------------------------------------------------------
# closure properties
# ----------------------------------------------------------------------
literals = st.one_of(
    st.builds(
        ConstantLiteral,
        var=st.sampled_from(("x", "y", "z")),
        attr=st.sampled_from(("A", "B")),
        const=st.integers(min_value=0, max_value=2),
    ),
    st.builds(
        VariableLiteral,
        var1=st.sampled_from(("x", "y", "z")),
        attr1=st.sampled_from(("A", "B")),
        var2=st.sampled_from(("x", "y", "z")),
        attr2=st.sampled_from(("A", "B")),
    ),
)


@settings(max_examples=80, deadline=None)
@given(batch=st.lists(literals, max_size=8))
def test_closure_entails_everything_added(batch):
    closure = EqualityClosure()
    closure.add_all(batch)
    # A conflicting closure is contradictory — callers (implies,
    # is_satisfiable) branch on `conflicting` before consulting entails.
    assert closure.conflicting or all(closure.entails(l) for l in batch)


@settings(max_examples=80, deadline=None)
@given(batch=st.lists(literals, max_size=8), extra=literals)
def test_closure_monotone(batch, extra):
    base = EqualityClosure()
    base.add_all(batch)
    grown = base.copy()
    grown.add_literal(extra)
    if not grown.conflicting:
        for literal in batch:
            assert grown.entails(literal)
    if base.conflicting:
        assert grown.conflicting  # conflicts never disappear


@settings(max_examples=80, deadline=None)
@given(batch=st.lists(literals, max_size=8))
def test_closure_idempotent(batch):
    closure = EqualityClosure()
    closure.add_all(batch)
    again = closure.copy()
    again.add_all(batch)
    assert again.conflicting == closure.conflicting


# ----------------------------------------------------------------------
# balancing properties
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    weights=st.lists(
        st.integers(min_value=1, max_value=100), min_size=1, max_size=30
    ),
    n=st.integers(min_value=1, max_value=8),
)
def test_lpt_within_factor_two_of_lower_bound(weights, n):
    from tests.test_balancing_assignment import make_unit

    units = [make_unit(w) for w in weights]
    _, loads = lpt_partition(units, n)
    assert makespan(loads) <= 2 * makespan_lower_bound(units, n) + 1e-9
    assert sum(loads) == float(sum(weights))


# ----------------------------------------------------------------------
# fragmentation properties
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(graph=small_graphs(max_nodes=8, max_edges=12),
       n=st.integers(min_value=1, max_value=4))
def test_fragmentation_covers_graph(graph, n):
    fr = hash_partition(graph, n)
    assert sum(len(f.owned) for f in fr.fragments) == graph.num_nodes
    union_edges = set()
    for fragment in fr.fragments:
        union_edges |= set(fragment.graph.edges())
    assert union_edges == set(graph.edges())


# ----------------------------------------------------------------------
# end-to-end properties
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50),
       n=st.integers(min_value=2, max_value=6))
def test_parallel_algorithms_agree_with_sequential(seed, n):
    from repro.graph import power_law_graph

    graph = power_law_graph(120, 300, seed=seed, domain_size=8)
    sigma = generate_gfds(graph, count=3, pattern_edges=2, seed=seed)
    expected = det_vio(sigma, graph)
    assert rep_val(sigma, graph, n=n).violations == expected
    fr = hash_partition(graph, n)
    assert dis_val(sigma, fr).violations == expected


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_satisfiable_sets_admit_models(seed):
    """is_satisfiable ⇔ build_model returns a certified model."""
    import random

    from repro.core import parse_gfd

    rng = random.Random(seed)
    pool = [
        parse_gfd("x:tau", " => x.A = 'c'", name="c"),
        parse_gfd("x:tau", " => x.A = 'd'", name="d"),
        parse_gfd("x:tau", "x.A = 'c' => x.B = '1'", name="cb"),
        parse_gfd("x:tau -l-> y:tau", " => y.A = 'c'", name="edge"),
        parse_gfd("x:sigma", " => x.A = 'e'", name="sigma"),
        parse_gfd("x:tau; y:sigma", "x.A = 'c' => y.A = 'f'", name="cross"),
    ]
    sigma = rng.sample(pool, rng.randint(1, 4))
    satisfiable = is_satisfiable(sigma)
    model = build_model(sigma)
    if satisfiable:
        assert model is not None
        assert det_vio(sigma, model) == set()
        for gfd in sigma:
            assert next(find_matches(gfd.pattern, model), None) is not None
    else:
        assert model is None
