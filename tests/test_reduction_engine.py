"""Tests for workload reduction (Appendix) and the execution engine."""


from repro.core import det_vio, parse_gfd, satisfies
from repro.graph import power_law_graph
from repro.parallel import (
    build_shared_groups,
    estimate_workload,
    execute_unit,
    reduce_rules,
    reduction_ratio,
)
from repro.parallel.engine import UnitResult


class TestWorkloadReduction:
    def test_removes_implied(self):
        a = parse_gfd("x:R", "x.A = 1 => x.B = 2", name="a")
        b = parse_gfd("x:R", "x.B = 2 => x.C = 3", name="b")
        implied = parse_gfd("x:R", "x.A = 1 => x.C = 3", name="implied")
        kept, removed = reduce_rules([a, b, implied])
        assert len(kept) == 2
        assert [g.name for g in removed] == ["implied"]

    def test_validity_preserved(self):
        """G ⊨ Σ iff G ⊨ reduced(Σ) — the reduction's soundness."""
        a = parse_gfd("x:R", "x.A = 1 => x.B = 2", name="a")
        b = parse_gfd("x:R", "x.B = 2 => x.C = 3", name="b")
        implied = parse_gfd("x:R", "x.A = 1 => x.C = 3", name="implied")
        kept, _ = reduce_rules([a, b, implied])

        from repro.core import relation_to_graph

        clean = relation_to_graph("R", [{"A": 1, "B": 2, "C": 3}])
        dirty = relation_to_graph("R", [{"A": 1, "B": 2, "C": 99}])
        assert satisfies([a, b, implied], clean) == satisfies(kept, clean)
        assert satisfies([a, b, implied], dirty) == satisfies(kept, dirty)

    def test_ratio(self):
        a = parse_gfd("x:R", "x.A = 1 => x.B = 2", name="a")
        dup = parse_gfd("x:R", "x.A = 1 => x.B = 2", name="dup")
        assert reduction_ratio([a, dup]) == 0.5
        assert reduction_ratio([]) == 0.0


class TestExecuteUnit:
    def test_unit_finds_local_violations(self, phi2):
        from repro.graph import PropertyGraph

        graph = PropertyGraph()
        graph.add_node("au", "country", {"val": "Australia"})
        graph.add_node("c1", "city", {"val": "Canberra"})
        graph.add_node("c2", "city", {"val": "Melbourne"})
        graph.add_edge("au", "c1", "capital")
        graph.add_edge("au", "c2", "capital")

        sigma = [phi2]
        units = estimate_workload(
            sigma, graph, groups=build_shared_groups(sigma)
        )
        assert len(units) == 1
        result = execute_unit(sigma, graph, units[0])
        assert isinstance(result, UnitResult)
        assert result.violations == det_vio(sigma, graph)
        assert result.block_size == units[0].block_size

    def test_units_cover_all_violations(self):
        graph = power_law_graph(200, 500, seed=17, domain_size=5)
        from repro.core import generate_gfds

        sigma = generate_gfds(graph, count=4, pattern_edges=2, seed=17)
        units = estimate_workload(
            sigma, graph, groups=build_shared_groups(sigma)
        )
        collected = set()
        for unit in units:
            collected |= execute_unit(sigma, graph, unit).violations
        assert collected == det_vio(sigma, graph)

    def test_shared_unit_checks_all_members(self):
        """Two GFDs over one pattern: the shared unit reports both names."""
        from repro.core import relation_to_graph

        graph = relation_to_graph("R", [{"A": 1, "B": 2}, {"A": 1, "B": 3}])
        fd1 = parse_gfd("x:R; y:R", "x.A = y.A => x.B = y.B", name="fd1")
        fd2 = parse_gfd("u:R; v:R", "u.A = v.A => u.B = v.B", name="fd2")
        sigma = [fd1, fd2]
        groups = build_shared_groups(sigma)
        assert len(groups) == 1
        units = estimate_workload(sigma, graph, groups=groups)
        collected = set()
        for unit in units:
            collected |= execute_unit(sigma, graph, unit).violations
        assert {v.gfd_name for v in collected} == {"fd1", "fd2"}
        assert collected == det_vio(sigma, graph)


class TestBlockMaterialiser:
    def test_size_budget_and_reuse(self):
        from repro.parallel.engine import BlockMaterialiser
        from repro.graph import power_law_graph

        graph = power_law_graph(120, 240, seed=3, domain_size=10)
        mat = BlockMaterialiser(graph, budget=300)
        nodes = list(graph.nodes())
        # Repeated requests for the same block return the same object...
        first = mat.block(set(nodes[:10]))
        assert mat.block(set(nodes[:10])) is first
        # ...and retained size never outgrows the budget (except when a
        # single oversized block is all that remains).
        for start in range(0, 110):
            mat.block(set(nodes[start : start + 8]))
            assert mat._retained <= mat.budget or len(mat._cache) == 1
        assert len(mat._cache) >= 1
        # An evicted block is rebuilt, not lost.
        rebuilt = mat.block(set(nodes[:10]))
        assert rebuilt == first
